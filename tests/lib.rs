//! Cross-crate integration tests for the gRouting workspace.
//!
//! The tests live in this package's `tests/` directory and exercise the
//! complete pipeline through the public facade: generate → partition →
//! preprocess → route → execute → measure, across both runtimes.
