//! Chaos agreement: a cluster that loses a node of every type mid-run
//! must still produce the fault-free run's answers — byte for byte.
//!
//! The script kills and restarts one node of each type while a mixed BFS
//! workload streams through the cluster:
//!
//! - a **storage primary** (`s0`): fetches homed there fail over to the
//!   replica, and a later wave proves the restarted primary is recovered
//!   by the chain walk (its replica `s1` is dead by then);
//! - a **storage replica** (`s1`): fetches homed on `s1` fail over to
//!   `s2`, while `s0`-homed fetches can no longer lean on `s1`;
//! - a **processor**: killed and restarted between waves, with the
//!   harness waiting for the router's re-join acknowledgement so the
//!   next wave is routed exactly as the fault-free run routes it.
//!
//! Byte identity holds because every query is anchored in its own graph
//! component (no cross-query cache overlap — a cold restarted cache
//! re-misses exactly what the fault-free run missed), waves fully drain
//! before any kill (no resubmitted windows), and hash routing with
//! stealing off makes placement a pure function of the query. The
//! failover counters in the final snapshot must account for the
//! recoveries: redials and replica failovers strictly positive under
//! chaos, all four exactly zero in the fault-free run.

use std::sync::Arc;
use std::time::Duration;

use grouting_core::engine::{EngineAssets, EngineConfig};
use grouting_core::graph::{GraphBuilder, NodeId};
use grouting_core::partition::HashPartitioner;
use grouting_core::query::Query;
use grouting_core::route::RoutingKind;
use grouting_core::storage::StorageTier;
use grouting_core::wire::{
    launch_chaos_cluster, ChaosAction, ChaosScript, ClusterConfig, ClusterRun, FetchMode,
    RetryPolicy, TransportKind,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// Disjoint components — a 6-node star plus a 3-chain off one leaf — so a
/// 2-hop BFS from the hub touches a non-trivial frontier while sharing no
/// adjacency record with any other query's traversal.
fn disjoint_assets(components: u32, servers: usize, replication: usize) -> EngineAssets {
    let mut b = GraphBuilder::new();
    for c in 0..components {
        let base = c * 16;
        for leaf in 1..6 {
            b.add_edge(n(base), n(base + leaf));
        }
        b.add_edge(n(base + 1), n(base + 6));
        b.add_edge(n(base + 6), n(base + 7));
    }
    let g = b.build().unwrap();
    let tier = Arc::new(StorageTier::with_replication(
        Arc::new(HashPartitioner::new(servers)),
        grouting_core::storage::log::DEFAULT_SEGMENT_BYTES,
        replication,
    ));
    tier.load_graph(&g).unwrap();
    EngineAssets::new(tier)
}

/// A mixed wave: 2-hop neighborhood counts and reachability probes, all
/// anchored at distinct component hubs.
fn wave(components: std::ops::Range<u32>) -> Vec<Query> {
    components
        .map(|c| {
            let base = c * 16;
            if c % 3 == 2 {
                Query::Reachability {
                    source: n(base),
                    target: n(base + 7),
                    hops: 3,
                }
            } else {
                Query::NeighborAggregation {
                    node: n(base),
                    hops: 2,
                    label: None,
                }
            }
        })
        .collect()
}

/// One node of every type dies and comes back, across four waves.
fn everything_dies_once() -> ChaosScript {
    ChaosScript::new()
        .wave(wave(0..10))
        .then(ChaosAction::KillStorage(0))
        .wave(wave(10..20))
        .then(ChaosAction::RestartStorage(0))
        .then(ChaosAction::KillStorage(1))
        .wave(wave(20..30))
        .then(ChaosAction::RestartStorage(1))
        .then(ChaosAction::KillProcessor(1))
        .then(ChaosAction::RestartProcessor(1))
        .wave(wave(30..40))
}

fn chaos_config(transport: TransportKind, fetch: FetchMode) -> ClusterConfig {
    let engine = EngineConfig {
        stealing: false,
        cache_capacity: 8 << 20,
        ..EngineConfig::paper_default(2, RoutingKind::Hash)
    };
    ClusterConfig::new(engine, transport)
        .with_fetch(fetch)
        .with_retry(RetryPolicy::new(2, Duration::from_millis(1)))
}

/// Per-query processor assignments, in sequence order.
fn assignments(run: &ClusterRun, queries: usize) -> Vec<usize> {
    let mut by_seq = vec![usize::MAX; queries];
    for r in run.timeline.records() {
        assert_eq!(by_seq[r.seq as usize], usize::MAX, "duplicate completion");
        by_seq[r.seq as usize] = r.processor;
    }
    assert!(
        by_seq.iter().all(|&p| p != usize::MAX),
        "every query must complete"
    );
    by_seq
}

fn assert_chaos_agreement(transport: TransportKind, fetch: FetchMode) {
    let assets = disjoint_assets(40, 3, 2);
    let script = everything_dies_once();
    let config = chaos_config(transport, fetch);

    let chaos = launch_chaos_cluster(&assets, &script, &config).unwrap();
    let calm = launch_chaos_cluster(&assets, &script.fault_free(), &config).unwrap();
    let total = script.query_count();

    // Answers, demand accounting, and placement are byte-identical.
    assert_eq!(chaos.results, calm.results);
    assert_eq!(chaos.snapshot.queries, calm.snapshot.queries);
    assert_eq!(chaos.snapshot.cache_hits, calm.snapshot.cache_hits);
    assert_eq!(chaos.snapshot.cache_misses, calm.snapshot.cache_misses);
    assert_eq!(chaos.snapshot.stolen, calm.snapshot.stolen);
    assert_eq!(chaos.snapshot.per_processor, calm.snapshot.per_processor);
    assert_eq!(assignments(&chaos, total), assignments(&calm, total));

    // The counters account for the recoveries the script forced: dead
    // endpoints were redialed and fetches failed over to replicas. Waves
    // drain before every kill, so no dispatch window was ever resubmitted.
    assert!(chaos.snapshot.redials > 0, "kills must force redials");
    assert!(
        chaos.snapshot.replica_failovers > 0,
        "kills must force replica failovers"
    );
    assert_eq!(chaos.snapshot.windows_resubmitted, 0);

    // The fault-free run never touched a recovery path.
    assert_eq!(calm.snapshot.redials, 0);
    assert_eq!(calm.snapshot.replica_failovers, 0);
    assert_eq!(calm.snapshot.batches_resubmitted, 0);
    assert_eq!(calm.snapshot.windows_resubmitted, 0);
}

#[test]
fn chaos_agrees_inproc_batched() {
    assert_chaos_agreement(TransportKind::InProc, FetchMode::Batched);
}

#[test]
fn chaos_agrees_inproc_scalar() {
    assert_chaos_agreement(TransportKind::InProc, FetchMode::Scalar);
}

// `GROUTING_NO_SOCKETS=1` falls back to the in-proc fabric so the suite
// stays green in sandboxes without loopback sockets.
#[test]
fn chaos_agrees_tcp_batched() {
    assert_chaos_agreement(TransportKind::from_env(), FetchMode::Batched);
}

#[test]
fn chaos_agrees_tcp_scalar() {
    assert_chaos_agreement(TransportKind::from_env(), FetchMode::Scalar);
}
