//! Live scrape smoke test: one HTTP request to the router's metrics
//! endpoint mid-run must return series from all three tiers.
//!
//! The observability layer's deployment contract: the router binds
//! `GROUTING_METRICS_ADDR`, processors and storage servers push their
//! sampled registries to it (`ObsPush` frames), and a single scrape of
//! the router therefore reads the whole cluster — router dispatch
//! counters, per-processor cache and heat series, and per-storage served
//! tallies — while queries are still in flight. The smoke test runs the
//! same check under both readiness backends, since scrape polling rides
//! the service poll loops.

use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grouting_core::engine::EngineAssets;
use grouting_core::gen::{DatasetProfile, ProfileName};
use grouting_core::partition::HashPartitioner;
use grouting_core::query::Query;
use grouting_core::storage::{Preset, StorageTier};
use grouting_core::wire::{launch_cluster, ClusterConfig, ObsConfig, PollerKind, TransportKind};
use grouting_core::workload::{hotspot_workload, QueryMix, WorkloadConfig};

/// Binds an ephemeral loopback port and releases it, so the router can
/// re-bind the same address — the test needs to know the scrape address
/// before the cluster (which binds it internally) exists.
fn reserve_addr() -> Option<String> {
    let listener = TcpListener::bind("127.0.0.1:0").ok()?;
    let addr = listener.local_addr().ok()?;
    Some(addr.to_string())
}

/// One plain HTTP scrape; `None` until the endpoint accepts and serves.
fn scrape(addr: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok()?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    let (header, body) = response.split_once("\r\n\r\n")?;
    header
        .starts_with("HTTP/1.1 200 OK")
        .then(|| body.to_string())
}

fn setup() -> (Arc<StorageTier>, Vec<Query>) {
    let graph = DatasetProfile::tiny(ProfileName::WebGraph).generate();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let queries = hotspot_workload(
        &graph,
        &WorkloadConfig {
            hotspots: 8,
            per_hotspot: 60,
            radius: 2,
            hops: 2,
            mix: QueryMix::uniform(),
            restart_prob: 0.15,
            seed: 23,
        },
    )
    .queries;
    (tier, queries)
}

fn assert_scrape_covers_cluster(reactor: PollerKind) {
    let Some(metrics_addr) = reserve_addr() else {
        // No loopback in this sandbox — the scrape endpoint is a socket
        // feature; the byte-identity agreement test still covers sampling.
        return;
    };
    let (tier, queries) = setup();
    let assets = EngineAssets::new(Arc::clone(&tier));
    let mut config = ClusterConfig::new(
        grouting_core::live::LiveConfig {
            processors: 4,
            stealing: false,
            cache_capacity: 256 << 10,
            overlap: 2,
            ..grouting_core::live::LiveConfig::paper_default(
                4,
                grouting_core::route::RoutingKind::Hash,
            )
        }
        .engine_config(),
        TransportKind::Tcp,
    )
    .with_reactor(reactor)
    .with_obs(ObsConfig {
        metrics_addr: Some(metrics_addr.clone()),
        dump: false,
        // Sample fast so pushed registries reach the router well inside
        // the run, whatever the host's scheduling jitter.
        sample_every_ns: 1_000_000,
    });
    // The emulated cross-rack network stretches the run to a comfortably
    // scrapeable length without inflating the workload.
    config.net = Preset::Ethernet10G;

    let cluster = std::thread::spawn(move || launch_cluster(&assets, &queries, &config));

    // Poll the endpoint until ONE body carries all three tiers, including
    // the per-partition heat counters — the cluster-wide-scrape contract.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = String::new();
    let complete = loop {
        if let Some(body) = scrape(&metrics_addr) {
            last = body;
            if last.contains("node=\"router\"")
                && last.contains("node=\"proc-")
                && last.contains("node=\"storage-")
                && last.contains("grouting_partition_demand_total")
                && last.contains("grouting_storage_fetches_total")
            {
                break true;
            }
        }
        if cluster.is_finished() || Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    let run = cluster
        .join()
        .expect("cluster thread joins")
        .expect("observed cluster run completes");
    assert!(
        complete,
        "no single scrape covered all three tiers under {reactor:?}; last body:\n{last}"
    );
    // The same heat that was scrapeable mid-run lands in the final
    // snapshot, still in demand units (one count per fetched record).
    assert!(run.snapshot.partition_heat.total_demand() > 0);
    assert_eq!(
        run.snapshot.partition_heat.total_demand(),
        run.snapshot.cache_misses,
        "partition heat counts exactly the demand misses"
    );
}

#[test]
fn router_scrape_reads_whole_cluster_mid_run_sweep() {
    if TransportKind::from_env() == TransportKind::InProc {
        return; // GROUTING_NO_SOCKETS sandbox: no loopback to scrape over.
    }
    assert_scrape_covers_cluster(PollerKind::Sweep);
}

#[test]
fn router_scrape_reads_whole_cluster_mid_run_epoll() {
    if TransportKind::from_env() == TransportKind::InProc {
        return; // GROUTING_NO_SOCKETS sandbox: no loopback to scrape over.
    }
    assert_scrape_covers_cluster(PollerKind::Epoll);
}
