//! End-to-end pipeline tests over the public facade.

use grouting_core::graph::traversal::{h_hop_neighborhood, hop_distance, Direction};
use grouting_core::prelude::*;

fn tiny_cluster(name: ProfileName, routing: RoutingKind) -> GRouting {
    GRouting::builder()
        .graph(DatasetProfile::tiny(name).generate())
        .storage_servers(3)
        .processors(4)
        .routing(routing)
        .cache_capacity(8 << 20)
        .build()
}

#[test]
fn every_routing_scheme_answers_correctly() {
    // The same workload must produce identical, ground-truth-correct
    // results no matter how queries are routed — routing affects *where*
    // work happens, never *what* is computed.
    let cluster = tiny_cluster(ProfileName::WebGraph, RoutingKind::Hash);
    let queries = cluster.hotspot_workload(6, 5, 2, 2, 11);
    for routing in RoutingKind::ALL {
        let cfg = grouting_core::sim::SimConfig {
            cache_capacity: 8 << 20,
            ..grouting_core::sim::SimConfig::paper_default(4, routing)
        };
        let report = cluster.simulate_with(&queries, &cfg);
        assert_eq!(report.timeline.len(), queries.len(), "{routing}");
    }
    // Verify actual answers via the live runtime (it returns results).
    let live = cluster.run_live(&queries);
    for (q, r) in queries.iter().zip(&live.results) {
        match q {
            Query::NeighborAggregation {
                node,
                hops,
                label: None,
            } => {
                let truth =
                    h_hop_neighborhood(cluster.graph(), *node, *hops, Direction::Both).len() as u64;
                assert_eq!(r.count(), Some(truth));
            }
            Query::Reachability {
                source,
                target,
                hops,
            } => {
                let truth = match hop_distance(cluster.graph(), *source, *target, Direction::Out) {
                    Some(d) => d <= *hops,
                    None => false,
                };
                assert_eq!(r.reachable(), Some(truth));
            }
            _ => {}
        }
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let cluster = tiny_cluster(ProfileName::Memetracker, RoutingKind::Embed);
    let queries = cluster.hotspot_workload(5, 4, 2, 2, 3);
    let a = cluster.simulate(&queries);
    let b = cluster.simulate(&queries);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.cache_hits, b.cache_hits);
    assert_eq!(a.cache_misses, b.cache_misses);
    assert_eq!(a.stolen, b.stolen);
}

#[test]
fn labeled_queries_flow_through_the_stack() {
    let cluster = tiny_cluster(ProfileName::Freebase, RoutingKind::Landmark);
    let g = cluster.graph();
    assert!(g.has_node_labels());
    let anchor = g.nodes_by_degree_desc()[0];
    let label = g.node_label(anchor).unwrap();
    let queries = vec![
        Query::NeighborAggregation {
            node: anchor,
            hops: 2,
            label: Some(label),
        },
        Query::NeighborAggregation {
            node: anchor,
            hops: 2,
            label: None,
        },
    ];
    let live = cluster.run_live(&queries);
    let filtered = live.results[0].count().unwrap();
    let unfiltered = live.results[1].count().unwrap();
    assert!(filtered <= unfiltered);
}

#[test]
fn storage_tier_holds_every_record() {
    let cluster = tiny_cluster(ProfileName::WebGraph, RoutingKind::Hash);
    let g = cluster.graph();
    let total: usize = (0..cluster.assets.tier.server_count())
        .map(|s| cluster.assets.tier.server(s).len())
        .sum();
    assert_eq!(total, g.node_count());
    // Every record decodes back to the graph's adjacency.
    for v in g.nodes().take(50) {
        let (_, rec) = cluster.assets.tier.get_record(v).unwrap();
        assert_eq!(rec.out, g.out_neighbors(v).collect::<Vec<_>>());
        assert_eq!(rec.inc, g.in_neighbors(v).collect::<Vec<_>>());
    }
}

#[test]
fn preprocessing_assets_cover_the_graph() {
    let cluster = tiny_cluster(ProfileName::WebGraph, RoutingKind::Embed);
    let g = cluster.graph();
    assert!(!cluster.assets.landmarks.is_empty());
    assert_eq!(cluster.assets.embedding.node_count(), g.node_count());
    for row in &cluster.assets.landmarks.dist {
        assert_eq!(row.len(), g.node_count());
    }
}
