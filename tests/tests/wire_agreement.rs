//! A TCP socket cluster and the in-process engine must agree on routing.
//!
//! The wire deployment (`grouting-wire`) replaces every in-process hop —
//! dispatch, acknowledgement, adjacency fetch — with framed connections,
//! but it drives the *same* engine: same strategy, same admission window,
//! same caches, same byte accounting. With a deterministic scheme (hash
//! routing, stealing off) the two deployments must therefore make
//! identical per-query routing decisions and produce identical cache
//! statistics on the same seeded workload, regardless of socket timing.
//!
//! The agreement must hold in *both* fetch modes: scalar (one round trip
//! per frontier node) and batched (one pipelined batch per storage server
//! per hop) — frontier batching changes how many times the wire is
//! crossed, never what the caches count.

use std::sync::Arc;

use grouting_core::gen::{DatasetProfile, ProfileName};
use grouting_core::graph::CsrGraph;
use grouting_core::live::{run_cluster, run_live, LiveConfig, LiveReport};
use grouting_core::partition::HashPartitioner;
use grouting_core::query::Query;
use grouting_core::route::RoutingKind;
use grouting_core::storage::{Preset, StorageTier};
use grouting_core::wire::{FetchMode, TransportKind};
use grouting_core::workload::{hotspot_workload, QueryMix, WorkloadConfig};

fn seeded_setup() -> (Arc<StorageTier>, Vec<Query>) {
    let graph: CsrGraph = DatasetProfile::tiny(ProfileName::WebGraph).generate();
    let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(3))));
    tier.load_graph(&graph).unwrap();
    let queries = hotspot_workload(
        &graph,
        &WorkloadConfig {
            hotspots: 8,
            per_hotspot: 8,
            radius: 2,
            hops: 2,
            mix: QueryMix::uniform(),
            restart_prob: 0.15,
            seed: 41,
        },
    )
    .queries;
    (tier, queries)
}

/// Hash routing with stealing disabled is fully deterministic: the
/// assignment is a pure function of the query node, and each processor
/// serves its own queue in submission order. Both deployments must land on
/// byte-identical routing decisions and cache statistics.
///
/// `overlap: 1` pins the strictly serial processor path: with one query in
/// flight per processor, the staged wire executor replays the exact access
/// sequence of the in-process engine, making cache statistics
/// byte-comparable. (Overlap ≥ 2 interleaves queries over a shared cache,
/// which legally shifts the hit/miss split between them — covered by the
/// overlap-4 test below, which pins answers and routing instead.)
fn deterministic_config() -> LiveConfig {
    LiveConfig {
        processors: 4,
        stealing: false,
        cache_capacity: 8 << 20,
        overlap: 1,
        ..LiveConfig::paper_default(4, RoutingKind::Hash)
    }
}

/// Per-query processor assignments, in sequence order.
fn assignments(report: &LiveReport, queries: usize) -> Vec<usize> {
    let mut by_seq = vec![usize::MAX; queries];
    for r in report.timeline.records() {
        assert_eq!(by_seq[r.seq as usize], usize::MAX, "duplicate completion");
        by_seq[r.seq as usize] = r.processor;
    }
    assert!(
        by_seq.iter().all(|&p| p != usize::MAX),
        "every query must complete"
    );
    by_seq
}

fn assert_agreement(transport: TransportKind, fetch: FetchMode) {
    let (tier, queries) = seeded_setup();
    let cfg = deterministic_config();

    let inproc = run_live(Arc::clone(&tier), None, None, &queries, &cfg);
    let wired = run_cluster(
        Arc::clone(&tier),
        None,
        None,
        &queries,
        &cfg,
        transport,
        Preset::Local,
        fetch,
    )
    .expect("wire cluster completes");

    // Identical answers…
    assert_eq!(wired.results, inproc.results);
    // …identical per-query routing decisions…
    assert_eq!(
        assignments(&wired, queries.len()),
        assignments(&inproc, queries.len()),
        "routing assignments diverged over {transport}/{fetch}"
    );
    // …and identical cache statistics (hence identical hit rates).
    assert_eq!(
        wired.cache_hits, inproc.cache_hits,
        "hit counts diverged over {transport}/{fetch}"
    );
    assert_eq!(wired.cache_misses, inproc.cache_misses);
    assert_eq!(wired.stolen, 0);
    assert_eq!(inproc.stolen, 0);
    assert!(wired.hit_rate() > 0.0, "workload should produce hits");
}

#[test]
fn tcp_cluster_agrees_with_inproc_engine() {
    // `GROUTING_NO_SOCKETS=1` falls back to the in-proc fabric so
    // sandboxes without loopback still exercise the full protocol path.
    assert_agreement(TransportKind::from_env(), FetchMode::Scalar);
}

#[test]
fn inproc_fabric_agrees_with_inproc_engine() {
    assert_agreement(TransportKind::InProc, FetchMode::Scalar);
}

#[test]
fn batched_tcp_cluster_agrees_with_inproc_engine() {
    // The acceptance gate for `grouting-flow`: frontier-batched fetching
    // over real sockets lands on the same routing assignments and the
    // same hit/miss counts as the in-proc scalar engine.
    assert_agreement(TransportKind::from_env(), FetchMode::Batched);
}

#[test]
fn batched_inproc_fabric_agrees_with_inproc_engine() {
    assert_agreement(TransportKind::InProc, FetchMode::Batched);
}

#[test]
fn overlap4_cluster_matches_assignments_and_results() {
    // Cross-query fetch overlap must never change WHAT is computed or
    // WHERE: with hash routing and stealing off, the assignment is a pure
    // function of the query node, so even four queries in flight per
    // processor must reproduce the in-process engine's routing decisions
    // and answers exactly. (Cache-stat equality is deliberately not
    // asserted here — interleaved queries may split hits/misses between
    // themselves differently; total accesses are pinned by the
    // overlap-pipeline unit tests.)
    let (tier, queries) = seeded_setup();
    let cfg = LiveConfig {
        overlap: 4,
        ..deterministic_config()
    };
    let inproc = run_live(Arc::clone(&tier), None, None, &queries, &cfg);
    let wired = run_cluster(
        Arc::clone(&tier),
        None,
        None,
        &queries,
        &cfg,
        TransportKind::from_env(),
        Preset::Local,
        FetchMode::Batched,
    )
    .expect("overlap-4 wire cluster completes");
    assert_eq!(wired.results, inproc.results);
    assert_eq!(
        assignments(&wired, queries.len()),
        assignments(&inproc, queries.len()),
        "routing assignments diverged at overlap 4"
    );
    assert_eq!(wired.stolen, 0);
}

#[test]
fn prefetching_cluster_agrees_with_prefetch_off_engine() {
    // The speculative-prefetch acceptance gate: with `GROUTING_PREFETCH`
    // semantics on (hotspot policy, default budget) the wire cluster must
    // produce identical answers, identical per-query routing assignments,
    // and identical *demand* cache statistics to the in-process engine
    // running with prefetch off — speculation moves bytes earlier, never
    // what Eq. 8/9 count. The run must also actually speculate (a vacuous
    // pass with zero issued prefetches would prove nothing).
    let (tier, queries) = seeded_setup();
    let off_cfg = deterministic_config();
    let on_cfg = LiveConfig {
        prefetch: grouting_core::query::PrefetchConfig::with_policy(
            grouting_core::query::PrefetchPolicy::Hotspot,
        ),
        // A cache too small to retain the hotspot region: repeat traffic
        // keeps missing, which is exactly where speculation fires.
        cache_capacity: 64 << 10,
        ..off_cfg
    };
    let small_cache_off = LiveConfig {
        cache_capacity: 64 << 10,
        ..off_cfg
    };

    let inproc = run_live(Arc::clone(&tier), None, None, &queries, &small_cache_off);
    let wired = run_cluster(
        Arc::clone(&tier),
        None,
        None,
        &queries,
        &on_cfg,
        TransportKind::from_env(),
        Preset::Local,
        FetchMode::Batched,
    )
    .expect("prefetching wire cluster completes");

    assert_eq!(wired.results, inproc.results);
    assert_eq!(
        assignments(&wired, queries.len()),
        assignments(&inproc, queries.len()),
        "routing assignments diverged under prefetch"
    );
    assert_eq!(
        wired.cache_hits, inproc.cache_hits,
        "demand hit counts diverged under prefetch"
    );
    assert_eq!(wired.cache_misses, inproc.cache_misses);
    assert!(
        wired.prefetch_issued > 0,
        "the run must actually speculate to pin anything"
    );
    assert!(
        wired.prefetch_hits > 0,
        "hotspot repeats must be served from the staging buffer"
    );
    assert_eq!(
        inproc.prefetch_issued, 0,
        "the reference must not speculate"
    );
}

#[test]
fn epoll_and_sweep_backends_agree_byte_for_byte() {
    // The readiness backend (`GROUTING_REACTOR`) decides how the service
    // poll loops *idle* — blocking `epoll_wait` on Linux vs the portable
    // yield/sleep sweep — and must never change what a run computes or
    // counts. Same seeded workload under both backends: identical
    // answers, identical per-query routing assignments, identical demand
    // cache statistics, and (at overlap 1, where execution is strictly
    // serial) an identical speculative-prefetch tally. On non-Linux hosts
    // `epoll` falls back to the sweep backend, making this vacuously true
    // there and a real two-backend comparison on Linux.
    let (tier, queries) = seeded_setup();
    let cfg = LiveConfig {
        prefetch: grouting_core::query::PrefetchConfig::with_policy(
            grouting_core::query::PrefetchPolicy::Hotspot,
        ),
        // Small enough that the hotspot region keeps missing, so the run
        // actually speculates and the prefetch comparison pins something.
        cache_capacity: 64 << 10,
        ..deterministic_config()
    };
    let run_with_backend = |backend: &str| {
        std::env::set_var("GROUTING_REACTOR", backend);
        let report = run_cluster(
            Arc::clone(&tier),
            None,
            None,
            &queries,
            &cfg,
            TransportKind::from_env(),
            Preset::Local,
            FetchMode::Batched,
        )
        .expect("wire cluster completes");
        std::env::remove_var("GROUTING_REACTOR");
        report
    };
    let sweep = run_with_backend("sweep");
    let epoll = run_with_backend("epoll");

    assert_eq!(epoll.results, sweep.results);
    assert_eq!(
        assignments(&epoll, queries.len()),
        assignments(&sweep, queries.len()),
        "routing assignments diverged between reactor backends"
    );
    assert_eq!(
        epoll.cache_hits, sweep.cache_hits,
        "hit counts diverged between reactor backends"
    );
    assert_eq!(epoll.cache_misses, sweep.cache_misses);
    assert_eq!(epoll.stolen, sweep.stolen);
    assert_eq!(
        epoll.prefetch_issued, sweep.prefetch_issued,
        "speculation tallies diverged between reactor backends"
    );
    assert_eq!(epoll.prefetch_hits, sweep.prefetch_hits);
    assert_eq!(epoll.prefetch_wasted_bytes, sweep.prefetch_wasted_bytes);
    assert!(
        sweep.prefetch_issued > 0,
        "the run must actually speculate to pin anything"
    );
}

#[test]
fn tracing_levels_pin_byte_identical_statistics() {
    // The tracing layer is strictly observational: the same seeded
    // workload run with `cfg.trace` at off, stats, and spans must produce
    // identical answers, identical per-query routing assignments, and
    // identical cache and prefetch statistics — tracing watches the run,
    // it never steers it. The traced runs must also actually deliver a
    // trace (non-empty per-stage histograms covering every query, reactor
    // frame counts, and — at spans level — a non-empty span ring), while
    // the untraced run carries none at all, keeping its frames
    // byte-identical to the pre-tracing protocol.
    use grouting_core::trace::{Stage, TraceLevel};
    let (tier, queries) = seeded_setup();
    let run_at = |level: TraceLevel| {
        let cfg = LiveConfig {
            trace: level,
            prefetch: grouting_core::query::PrefetchConfig::with_policy(
                grouting_core::query::PrefetchPolicy::Hotspot,
            ),
            // Small enough that the run actually speculates, so the
            // prefetch-tally comparison pins something real.
            cache_capacity: 64 << 10,
            ..deterministic_config()
        };
        run_cluster(
            Arc::clone(&tier),
            None,
            None,
            &queries,
            &cfg,
            TransportKind::from_env(),
            Preset::Local,
            FetchMode::Batched,
        )
        .expect("traced wire cluster completes")
    };
    let off = run_at(TraceLevel::Off);
    let stats = run_at(TraceLevel::Stats);
    let spans = run_at(TraceLevel::Spans);

    for (level, traced) in [("stats", &stats), ("spans", &spans)] {
        assert_eq!(traced.results, off.results, "answers diverged at {level}");
        assert_eq!(
            assignments(traced, queries.len()),
            assignments(&off, queries.len()),
            "routing assignments diverged at {level}"
        );
        assert_eq!(
            traced.cache_hits, off.cache_hits,
            "hit counts diverged at {level}"
        );
        assert_eq!(traced.cache_misses, off.cache_misses);
        assert_eq!(traced.stolen, off.stolen);
        assert_eq!(
            traced.prefetch_issued, off.prefetch_issued,
            "speculation tallies diverged at {level}"
        );
        assert_eq!(traced.prefetch_hits, off.prefetch_hits);
        assert_eq!(traced.prefetch_wasted_bytes, off.prefetch_wasted_bytes);
    }
    assert!(
        off.prefetch_issued > 0,
        "the run must actually speculate to pin anything"
    );

    assert!(off.trace.is_none(), "untraced run must carry no trace");
    let st = stats.trace.as_ref().expect("stats run returns a trace");
    assert_eq!(st.level, TraceLevel::Stats);
    for stage in [Stage::RouterQueue, Stage::DispatchRtt, Stage::Completion] {
        assert_eq!(
            st.stages.stage(stage).count(),
            queries.len() as u64,
            "{stage} histogram must cover every query"
        );
    }
    assert!(st.spans.is_empty(), "stats level records no spans");
    assert!(
        st.reactor.frames_in > 0,
        "reactor telemetry must tally frames"
    );
    assert!(st.reactor.frames_out > 0);
    let sp = spans.trace.as_ref().expect("spans run returns a trace");
    assert_eq!(sp.level, TraceLevel::Spans);
    assert!(!sp.spans.is_empty(), "spans level captures query spans");
    assert!(!sp.stages.is_empty());
}

#[test]
fn observability_pins_byte_identical_statistics() {
    // The observability layer is strictly observational: the same seeded
    // workload with the sampler hammering every poll round (plus a live
    // scrape endpoint where the sandbox has sockets) must produce a
    // byte-identical run — same answers, same routing assignments, same
    // full `RunSnapshot` including the workload heatmaps — as a run with
    // observability off. Heat counters are deterministic demand
    // accounting, NOT sampling artifacts, so they too must match exactly.
    use grouting_core::engine::EngineAssets;
    use grouting_core::wire::{launch_cluster, ClusterConfig, ClusterRun, ObsConfig};
    let (tier, queries) = seeded_setup();
    let cfg = deterministic_config();
    let run_with = |transport: TransportKind, obs: ObsConfig| -> ClusterRun {
        let assets = EngineAssets::new(Arc::clone(&tier));
        let cluster_cfg = ClusterConfig::new(cfg.engine_config(), transport)
            .with_fetch(FetchMode::Batched)
            .with_obs(obs);
        launch_cluster(&assets, &queries, &cluster_cfg).expect("observed cluster completes")
    };
    // `sample_every_ns: 1` makes every service poll round a sampling
    // tick — the most intrusive cadence possible. The dump flag enables
    // the sampler even where no socket endpoint can bind; on a
    // socket-capable host the router additionally serves a live scrape
    // endpoint on an ephemeral port while the run executes.
    let sampled = ObsConfig {
        metrics_addr: (TransportKind::from_env() == TransportKind::Tcp)
            .then(|| "127.0.0.1:0".to_string()),
        dump: true,
        sample_every_ns: 1,
    };

    for transport in [TransportKind::from_env(), TransportKind::InProc] {
        let off = run_with(transport, ObsConfig::disabled());
        let on = run_with(transport, sampled.clone());
        assert_eq!(
            on.results, off.results,
            "answers diverged under observability over {transport}"
        );
        assert_eq!(
            on.snapshot, off.snapshot,
            "run snapshot diverged under observability over {transport}"
        );
        // Completion order is wall-clock timing; the per-seq assignment is
        // the deterministic contract.
        let by_seq = |run: &ClusterRun| {
            let mut assigned = vec![usize::MAX; queries.len()];
            for r in run.timeline.records() {
                assigned[r.seq as usize] = r.processor;
            }
            assigned
        };
        assert_eq!(
            by_seq(&on),
            by_seq(&off),
            "routing assignments diverged under observability over {transport}"
        );
        // The pinned snapshot must carry real heat, or the heat half of
        // the equality proves nothing.
        assert!(
            off.snapshot.partition_heat.total_demand() > 0,
            "workload must produce demand heat"
        );
        assert_eq!(
            off.snapshot.partition_heat.total_demand(),
            off.snapshot.cache_misses,
            "partition heat counts exactly the demand misses"
        );
    }
}

#[test]
fn no_cache_scheme_has_zero_hits_over_the_wire() {
    let (tier, queries) = seeded_setup();
    let cfg = LiveConfig {
        stealing: false,
        ..LiveConfig::paper_default(3, RoutingKind::NoCache)
    };
    let wired = run_cluster(
        Arc::clone(&tier),
        None,
        None,
        &queries,
        &cfg,
        TransportKind::from_env(),
        Preset::Local,
        FetchMode::Batched,
    )
    .expect("wire cluster completes");
    let inproc = run_live(tier, None, None, &queries, &cfg);
    assert_eq!(wired.cache_hits, 0);
    assert_eq!(inproc.cache_hits, 0);
    assert_eq!(wired.cache_misses, inproc.cache_misses);
    assert_eq!(wired.results, inproc.results);
}

#[test]
fn stealing_over_the_wire_still_answers_identically() {
    // With stealing on, *assignments* may legally differ between
    // deployments (they depend on real-time idleness), but answers and
    // total work conservation may not.
    let (tier, queries) = seeded_setup();
    let cfg = LiveConfig {
        cache_capacity: 8 << 20,
        ..LiveConfig::paper_default(4, RoutingKind::Hash)
    };
    let wired = run_cluster(
        Arc::clone(&tier),
        None,
        None,
        &queries,
        &cfg,
        TransportKind::from_env(),
        Preset::Local,
        FetchMode::Batched,
    )
    .expect("wire cluster completes");
    let inproc = run_live(tier, None, None, &queries, &cfg);
    assert_eq!(wired.results, inproc.results);
    assert_eq!(wired.timeline.len(), queries.len());
}
