//! Shape assertions: the paper's qualitative results must hold at test
//! scale. These are the regression guards for the whole reproduction —
//! if a change breaks one of these, a figure has stopped reproducing.

use grouting_core::prelude::*;
use grouting_core::sim::{simulate, SimConfig};

fn cluster() -> GRouting {
    GRouting::builder()
        .graph(DatasetProfile::at_scale(ProfileName::WebGraph, 0.1).generate())
        .storage_servers(4)
        .processors(7)
        .cache_capacity(4 << 20)
        .build()
}

fn paper_cfg(cluster: &GRouting, p: usize, routing: RoutingKind) -> SimConfig {
    let stored: usize = cluster.assets.tier.bytes_per_server().iter().sum();
    SimConfig {
        cache_capacity: (stored / 12).max(1 << 20),
        ..SimConfig::paper_default(p, routing)
    }
}

#[test]
fn smart_routing_beats_baselines_on_cache_hits() {
    // The paper's central claim (Figures 7/14): landmark and embed routing
    // capture topology-aware locality that hash and next-ready cannot.
    let c = cluster();
    let queries = c.hotspot_workload(40, 10, 2, 2, 77);
    let hit = |routing| simulate(&c.assets, &queries, &paper_cfg(&c, 7, routing)).hit_rate();
    let next_ready = hit(RoutingKind::NextReady);
    let hash = hit(RoutingKind::Hash);
    let landmark = hit(RoutingKind::Landmark);
    let embed = hit(RoutingKind::Embed);
    assert!(
        landmark > 1.5 * hash,
        "landmark {landmark:.3} vs hash {hash:.3}"
    );
    assert!(embed > 1.5 * hash, "embed {embed:.3} vs hash {hash:.3}");
    assert!(
        hash >= next_ready * 0.9,
        "hash {hash:.3} vs next-ready {next_ready:.3}"
    );
}

#[test]
fn smart_routing_sustains_hits_as_processors_grow() {
    // Figure 8(b): baselines shed hits as P grows; smart routing keeps most
    // of the P=1 level.
    let c = cluster();
    let queries = c.hotspot_workload(40, 10, 2, 2, 78);
    let hit = |p, routing| simulate(&c.assets, &queries, &paper_cfg(&c, p, routing)).hit_rate();
    let embed_1 = hit(1, RoutingKind::Embed);
    let embed_7 = hit(7, RoutingKind::Embed);
    let next_1 = hit(1, RoutingKind::NextReady);
    let next_7 = hit(7, RoutingKind::NextReady);
    // Embed retains more of its single-processor hit rate than next-ready.
    let embed_retention = embed_7 / embed_1.max(1e-9);
    let next_retention = next_7 / next_1.max(1e-9);
    assert!(
        embed_retention > 1.5 * next_retention,
        "embed retains {embed_retention:.2}, next-ready {next_retention:.2}"
    );
}

#[test]
fn throughput_scales_with_processors_for_smart_routing() {
    // Figure 8(a): embed throughput grows with processors; next-ready
    // saturates early.
    let c = cluster();
    let queries = c.hotspot_workload(40, 10, 2, 2, 79);
    let qps =
        |p, routing| simulate(&c.assets, &queries, &paper_cfg(&c, p, routing)).throughput_qps();
    let embed_gain = qps(7, RoutingKind::Embed) / qps(1, RoutingKind::Embed);
    let next_gain = qps(7, RoutingKind::NextReady) / qps(1, RoutingKind::NextReady);
    assert!(embed_gain > 1.2, "embed gain {embed_gain:.2}");
    assert!(
        embed_gain > next_gain,
        "embed {embed_gain:.2} vs next-ready {next_gain:.2}"
    );
}

#[test]
fn storage_tier_saturates_but_never_hurts() {
    // Figure 8(c): more storage servers help until the processors become
    // the bottleneck.
    let c = cluster();
    let queries = c.hotspot_workload(30, 10, 2, 2, 80);
    let mut prev = 0.0;
    for s in [1usize, 2, 4] {
        let assets = c.assets.with_storage_servers(s);
        let r = simulate(&assets, &queries, &paper_cfg(&c, 4, RoutingKind::NoCache));
        let qps = r.throughput_qps();
        assert!(
            qps >= prev * 0.95,
            "throughput regressed at {s} servers: {qps:.0} vs {prev:.0}"
        );
        prev = qps;
    }
}

#[test]
fn no_cache_is_the_floor() {
    // Every caching configuration must beat the no-cache control.
    let c = cluster();
    let queries = c.hotspot_workload(30, 10, 2, 2, 81);
    let nc = simulate(&c.assets, &queries, &paper_cfg(&c, 7, RoutingKind::NoCache));
    for routing in [RoutingKind::Hash, RoutingKind::Landmark, RoutingKind::Embed] {
        let r = simulate(&c.assets, &queries, &paper_cfg(&c, 7, routing));
        assert!(
            r.mean_response_ms() <= nc.mean_response_ms(),
            "{routing} response {:.2} vs no-cache {:.2}",
            r.mean_response_ms(),
            nc.mean_response_ms()
        );
    }
}

#[test]
fn stealing_rescues_skewed_workloads() {
    // Requirement 2: one hot node must not serialise the cluster.
    let c = cluster();
    let anchor = c.graph().nodes_by_degree_desc()[0];
    let skew: Vec<Query> = (0..100)
        .map(|_| Query::NeighborAggregation {
            node: anchor,
            hops: 2,
            label: None,
        })
        .collect();
    let with = simulate(&c.assets, &skew, &paper_cfg(&c, 7, RoutingKind::Hash));
    let without = simulate(
        &c.assets,
        &skew,
        &SimConfig {
            stealing: false,
            ..paper_cfg(&c, 7, RoutingKind::Hash)
        },
    );
    assert!(with.stolen > 0);
    assert!(
        with.throughput_qps() > 2.0 * without.throughput_qps(),
        "stealing {:.0} qps vs no stealing {:.0} qps",
        with.throughput_qps(),
        without.throughput_qps()
    );
}

#[test]
fn ethernet_is_slower_than_infiniband() {
    // The gRouting vs gRouting-E gap of Figure 7.
    let c = cluster();
    let queries = c.hotspot_workload(30, 10, 2, 2, 82);
    let ib = simulate(&c.assets, &queries, &paper_cfg(&c, 7, RoutingKind::Embed));
    let eth = simulate(
        &c.assets,
        &queries,
        &SimConfig {
            cost: grouting_core::sim::CostModel::ethernet(),
            ..paper_cfg(&c, 7, RoutingKind::Embed)
        },
    );
    assert!(
        ib.throughput_qps() > 1.5 * eth.throughput_qps(),
        "IB {:.0} vs Eth {:.0}",
        ib.throughput_qps(),
        eth.throughput_qps()
    );
}
