//! End-to-end graph updates: storage, landmark tables, and embeddings all
//! stay consistent while the topology mutates (§3.4's update model).

use grouting_core::embed::updates::{
    landmark_distances_from, refresh_embedding, refresh_landmark_table,
};
use grouting_core::embed::{EmbeddingConfig, ProcessorDistanceTable, UNREACHED_U16};
use grouting_core::graph::dynamic::{DynamicGraph, GraphUpdate};
use grouting_core::prelude::*;

fn cluster() -> GRouting {
    GRouting::builder()
        .graph(DatasetProfile::tiny(ProfileName::Memetracker).generate())
        .storage_servers(2)
        .processors(3)
        .routing(RoutingKind::Embed)
        .cache_capacity(8 << 20)
        .build()
}

#[test]
fn added_nodes_become_queryable_and_routable() {
    let c = cluster();
    let n0 = c.graph().node_count() as u32;
    let mut dynamic = DynamicGraph::from_csr(c.graph());
    let mut table = ProcessorDistanceTable::build(&c.assets.landmarks, 3);
    let mut embedding = (*c.assets.embedding).clone();
    let cfg = EmbeddingConfig {
        node_iters: 30,
        ..EmbeddingConfig::default()
    };

    // Attach 10 fresh nodes to well-connected existing ones.
    let hubs = c.graph().nodes_by_degree_desc();
    for i in 0..10u32 {
        let fresh = NodeId::new(n0 + i);
        let attach = hubs[i as usize];
        dynamic.add_edge(fresh, attach);
        let update = GraphUpdate::AddEdge(fresh, attach);
        c.assets.tier.apply_update(&dynamic, update).unwrap();
        refresh_landmark_table(&mut table, &dynamic, &c.assets.landmarks.nodes, update, 1);
        refresh_embedding(&mut embedding, &dynamic, update, 1, &cfg);
    }
    assert_eq!(table.nodes(), (n0 + 10) as usize);
    assert_eq!(embedding.node_count(), (n0 + 10) as usize);

    for i in 0..10u32 {
        let fresh = NodeId::new(n0 + i);
        // Stored record exists and mentions the attachment.
        let (_, rec) = c.assets.tier.get_record(fresh).unwrap();
        assert_eq!(rec.out.len() + rec.inc.len(), 1);
        // Routing rows exist and are finite (reachable via the hub).
        let row = table.row(fresh);
        assert!(
            row.iter().any(|&d| d != UNREACHED_U16),
            "fresh node {fresh} unroutable: {row:?}"
        );
        assert!(table.best_processor(fresh) < 3);
    }
}

#[test]
fn edge_removal_updates_storage_and_distances() {
    let c = cluster();
    let mut dynamic = DynamicGraph::from_csr(c.graph());
    // Find an existing edge to remove.
    let v = c
        .graph()
        .nodes()
        .find(|&v| c.graph().out_degree(v) > 0)
        .unwrap();
    let w = c.graph().out_neighbors(v).next().unwrap();
    dynamic.remove_edge(v, w).unwrap();
    c.assets
        .tier
        .apply_update(&dynamic, GraphUpdate::RemoveEdge(v, w))
        .unwrap();
    let (_, rec) = c.assets.tier.get_record(v).unwrap();
    assert!(!rec.out.contains(&w));
    let (_, rec_w) = c.assets.tier.get_record(w).unwrap();
    assert!(!rec_w.inc.contains(&v));

    // Distances recomputed from the dynamic graph reflect the removal.
    let d = landmark_distances_from(&dynamic, v, &c.assets.landmarks.nodes);
    assert_eq!(d.len(), c.assets.landmarks.len());
}

#[test]
fn queries_stay_correct_after_updates() {
    let c = cluster();
    let n0 = c.graph().node_count() as u32;
    let mut dynamic = DynamicGraph::from_csr(c.graph());
    let hub = c.graph().nodes_by_degree_desc()[0];
    dynamic.add_edge(NodeId::new(n0), hub);
    c.assets
        .tier
        .apply_update(&dynamic, GraphUpdate::AddEdge(NodeId::new(n0), hub))
        .unwrap();

    // A 1-hop aggregation from the new node must see exactly the hub, and a
    // 2-hop one the hub's bi-directed neighbourhood.
    let queries = vec![
        Query::NeighborAggregation {
            node: NodeId::new(n0),
            hops: 1,
            label: None,
        },
        Query::Reachability {
            source: NodeId::new(n0),
            target: hub,
            hops: 1,
        },
    ];
    let live = c.run_live(&queries);
    assert_eq!(live.results[0].count(), Some(1));
    assert_eq!(live.results[1].reachable(), Some(true));
}
