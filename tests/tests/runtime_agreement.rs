//! The two runtimes (deterministic simulator, live threads) must agree on
//! everything that is not timing: query results and total access counts.

use grouting_core::prelude::*;

#[test]
fn sim_and_live_agree_on_access_totals_per_processor_count() {
    let cluster = GRouting::builder()
        .graph(DatasetProfile::tiny(ProfileName::WebGraph).generate())
        .storage_servers(2)
        .processors(1)
        .routing(RoutingKind::Hash)
        .cache_capacity(32 << 20)
        .build();
    let queries = cluster.hotspot_workload(5, 5, 2, 2, 21);

    // With one processor there is no scheduling nondeterminism: the two
    // runtimes execute identical access sequences.
    let sim = cluster.simulate(&queries);
    let live = cluster.run_live(&queries);
    assert_eq!(sim.cache_hits, live.cache_hits);
    assert_eq!(sim.cache_misses, live.cache_misses);
}

#[test]
fn live_results_match_across_routings() {
    // Results must be routing-independent in the live runtime too.
    let cluster = GRouting::builder()
        .graph(DatasetProfile::tiny(ProfileName::Memetracker).generate())
        .storage_servers(2)
        .processors(4)
        .routing(RoutingKind::Hash)
        .cache_capacity(16 << 20)
        .build();
    let queries = cluster.hotspot_workload(5, 5, 2, 2, 22);
    let baseline = cluster.run_live(&queries);
    for routing in [
        RoutingKind::NextReady,
        RoutingKind::Landmark,
        RoutingKind::Embed,
    ] {
        let other = GRouting::builder()
            .graph(DatasetProfile::tiny(ProfileName::Memetracker).generate())
            .storage_servers(2)
            .processors(4)
            .routing(routing)
            .cache_capacity(16 << 20)
            .build();
        let r = other.run_live(&queries);
        assert_eq!(r.results, baseline.results, "{routing}");
    }
}

#[test]
fn live_runtime_uses_all_processors() {
    let cluster = GRouting::builder()
        .graph(DatasetProfile::tiny(ProfileName::WebGraph).generate())
        .storage_servers(2)
        .processors(4)
        .routing(RoutingKind::NextReady)
        .cache_capacity(16 << 20)
        .build();
    let queries = cluster.hotspot_workload(10, 10, 2, 2, 23);
    let live = cluster.run_live(&queries);
    let counts = live.timeline.per_processor_counts(4);
    let active = counts.iter().filter(|&&c| c > 0).count();
    assert!(active >= 3, "only {active} processors did work: {counts:?}");
}
