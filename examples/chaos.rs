//! Chaos demo: the cluster keeps answering while nodes die around it.
//!
//! Deploys the full wire topology — router, processors, replicated
//! storage endpoints — and replays a four-wave BFS workload twice: once
//! on a chaos script that kills and restarts one node of every type
//! (storage primary, storage replica, query processor) between waves,
//! and once fault-free. The two runs must agree byte-for-byte on answers
//! and demand cache statistics — the paper's continuous-availability
//! argument (§4.1): processors are stateless routable caches and storage
//! replicates, so no single death loses the graph or changes a result.
//! The failover counters tell the story of the recoveries.
//!
//! ```bash
//! cargo run --release --example chaos
//! GROUTING_BATCH=0 cargo run --release --example chaos
//! GROUTING_NO_SOCKETS=1 cargo run --release --example chaos
//! ```

use std::sync::Arc;
use std::time::Duration;

use grouting_core::engine::{EngineAssets, EngineConfig};
use grouting_core::graph::{GraphBuilder, NodeId};
use grouting_core::partition::HashPartitioner;
use grouting_core::prelude::*;
use grouting_core::storage::StorageTier;
use grouting_core::wire::{
    launch_chaos_cluster, ChaosAction, ChaosScript, ClusterConfig, FetchMode, RetryPolicy,
};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn main() {
    let transport = TransportKind::from_env();
    let fetch = FetchMode::from_env();

    // Disjoint star-and-tail components, one per query: no two queries
    // share an adjacency record, so a restarted (cold) cache re-misses
    // exactly what the fault-free run missed.
    let components = 48u32;
    let mut b = GraphBuilder::new();
    for c in 0..components {
        let base = c * 16;
        for leaf in 1..6 {
            b.add_edge(n(base), n(base + leaf));
        }
        b.add_edge(n(base + 1), n(base + 6));
        b.add_edge(n(base + 6), n(base + 7));
    }
    let graph = b.build().expect("valid graph");

    // Three storage endpoints, every partition replicated on two of them.
    let tier = Arc::new(StorageTier::with_replication(
        Arc::new(HashPartitioner::new(3)),
        grouting_core::storage::log::DEFAULT_SEGMENT_BYTES,
        2,
    ));
    tier.load_graph(&graph).unwrap();
    let assets = EngineAssets::new(tier);

    let wave = |range: std::ops::Range<u32>| -> Vec<Query> {
        range
            .map(|c| Query::NeighborAggregation {
                node: n(c * 16),
                hops: 2,
                label: None,
            })
            .collect()
    };
    let script = ChaosScript::new()
        .wave(wave(0..12))
        .then(ChaosAction::KillStorage(0))
        .wave(wave(12..24))
        .then(ChaosAction::RestartStorage(0))
        .then(ChaosAction::KillStorage(1))
        .wave(wave(24..36))
        .then(ChaosAction::RestartStorage(1))
        .then(ChaosAction::KillProcessor(1))
        .then(ChaosAction::RestartProcessor(1))
        .wave(wave(36..48));

    let engine = EngineConfig {
        stealing: false,
        cache_capacity: 8 << 20,
        ..EngineConfig::paper_default(2, RoutingKind::Hash)
    };
    let config = ClusterConfig::new(engine, transport)
        .with_fetch(fetch)
        .with_retry(RetryPolicy::new(4, Duration::from_millis(2)));

    println!(
        "Topology: 1 router + 2 processors + 3 storage endpoints (replication 2); \
         transport: {transport}; fetch: {fetch}"
    );
    println!(
        "Script: {} queries in 4 waves; between waves we kill the storage \
         primary, then its replica (primary re-joins), then a processor.\n",
        script.query_count()
    );

    let chaos = launch_chaos_cluster(&assets, &script, &config).expect("chaos run");
    let calm = launch_chaos_cluster(&assets, &script.fault_free(), &config).expect("calm run");

    assert_eq!(chaos.results, calm.results, "answers must survive chaos");
    assert_eq!(chaos.snapshot.cache_hits, calm.snapshot.cache_hits);
    assert_eq!(chaos.snapshot.cache_misses, calm.snapshot.cache_misses);
    assert_eq!(chaos.snapshot.per_processor, calm.snapshot.per_processor);

    for (label, run) in [("chaos", &chaos), ("fault-free", &calm)] {
        let s = &run.snapshot;
        println!(
            "{label:>10}: {} queries, {} hits / {} misses, wall {:.1} ms | \
             {} redials, {} replica failovers, {} batches resubmitted, {} windows resubmitted",
            s.queries,
            s.cache_hits,
            s.cache_misses,
            run.wall_ns as f64 / 1e6,
            s.redials,
            s.replica_failovers,
            s.batches_resubmitted,
            s.windows_resubmitted,
        );
    }
    assert!(chaos.snapshot.redials > 0, "kills must force redials");
    assert!(chaos.snapshot.replica_failovers > 0);
    println!(
        "\nThree nodes died and came back; every answer and every demand-miss \
         byte matched the fault-free run."
    );
}
