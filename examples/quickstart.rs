//! Quickstart: build a cluster, run a hotspot workload, read the numbers.
//!
//! ```bash
//! cargo run --release -p grouting-examples --bin quickstart
//! ```

use grouting_core::prelude::*;

fn main() {
    // 1. A graph. Dataset profiles mimic the paper's Table 1 datasets at
    //    reduced scale; any `CsrGraph` (e.g. loaded from your own edges via
    //    `GraphBuilder`) works the same way.
    let graph = DatasetProfile::tiny(ProfileName::WebGraph).generate();
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. A cluster: 4 storage servers, 7 processors, embed routing (the
    //    paper's best). `build()` runs the whole preprocessing pipeline —
    //    hash-partitioned storage load, landmark BFS, graph embedding.
    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(4)
        .processors(7)
        .routing(RoutingKind::Embed)
        .cache_capacity(64 << 20)
        .build();
    println!(
        "preprocessing: landmarks {:.1} ms, embedding {:.1} ms",
        cluster.assets.timings.landmark_ns as f64 / 1e6,
        (cluster.assets.timings.embed_landmarks_ns + cluster.assets.timings.embed_nodes_ns) as f64
            / 1e6,
    );

    // 3. The paper's workload: queries clustered around hotspots, sent
    //    hotspot-by-hotspot (100 hotspots × 10 queries in the paper).
    let queries = cluster.hotspot_workload(50, 10, 2, 2, 42);

    // 4. Simulate: deterministic virtual-time run of the full cluster.
    let report = cluster.simulate(&queries);
    println!("--- simulated (Infiniband cost model) ---");
    println!("queries:        {}", report.timeline.len());
    println!("throughput:     {:.1} queries/s", report.throughput_qps());
    println!("mean response:  {:.2} ms", report.mean_response_ms());
    println!(
        "cache hits:     {} ({:.1}% hit rate)",
        report.cache_hits,
        report.hit_rate() * 100.0
    );
    println!("stolen queries: {}", report.stolen);

    // 5. Or run it for real on OS threads.
    let live = cluster.run_live(&queries);
    println!("--- live (threads on this machine) ---");
    println!("wall time:      {:.1} ms", live.wall_ns as f64 / 1e6);
    println!("throughput:     {:.0} queries/s", live.throughput_qps());
    println!("hit rate:       {:.1}%", live.hit_rate() * 100.0);
}
