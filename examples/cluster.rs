//! Distributed deployment: the cluster as real socket peers on one machine.
//!
//! Launches the paper's full topology over `grouting-wire` — one router,
//! `P` query processors, `M` storage servers, every hop a framed
//! connection on TCP loopback — and replays the hotspot workload through
//! it under each routing scheme, comparing against the in-process live
//! runtime on the same queries. The decoupling stops being simulated
//! here: each cache miss is an adjacency fetch crossing a socket.
//!
//! Sandboxes without loopback networking can set `GROUTING_NO_SOCKETS=1`
//! to fall back to the hermetic in-process transport (same services, same
//! frames, same encoded bytes). Adjacency fetches are frontier-batched and
//! pipelined by default (`grouting-flow`); `GROUTING_BATCH=0` forces the
//! scalar one-round-trip-per-node path for comparison.
//! `GROUTING_PREFETCH=degree|hotspot` piggybacks speculative next-hop
//! nodes onto the frontier batches (demand statistics stay identical; the
//! speculative tally is reported from the final snapshot).
//! `GROUTING_TRACE=stats|spans` turns on the query-tracing layer: the wire
//! runs then print a per-stage latency breakdown (router queue, dispatch
//! RTT, fetch wait, compute, completion) and the reactor's busy/idle and
//! buffer-pool telemetry.
//! `GROUTING_METRICS_ADDR=host:port` additionally serves a live
//! Prometheus-style scrape endpoint on the router covering the whole
//! cluster, and `GROUTING_OBS_DUMP=1` replays each node's sampled counter
//! history at teardown; neither changes a single statistic (pinned by
//! wire_agreement). The per-partition workload heat is printed from the
//! final snapshot either way.
//!
//! ```bash
//! cargo run --release --example cluster
//! GROUTING_BATCH=0 cargo run --release --example cluster
//! GROUTING_PREFETCH=hotspot cargo run --release --example cluster
//! GROUTING_TRACE=stats cargo run --release --example cluster
//! GROUTING_METRICS_ADDR=127.0.0.1:9464 cargo run --release --example cluster
//! GROUTING_NO_SOCKETS=1 cargo run --release --example cluster
//! ```

use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;

fn main() {
    let transport = TransportKind::from_env();
    let fetch = grouting_core::wire::FetchMode::from_env();
    let overlap = grouting_core::wire::overlap_from_env(2);
    let prefetch = grouting_core::query::PrefetchConfig::from_env();
    let graph = DatasetProfile::at_scale(ProfileName::WebGraph, 0.1).generate();
    println!(
        "WebGraph-profile graph: {} nodes, {} edges; transport: {transport}; fetch: {fetch}; \
         overlap: {overlap}; prefetch: {}",
        graph.node_count(),
        graph.edge_count(),
        prefetch.policy,
    );

    let processors = 4;
    let storage_servers = 3;
    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(storage_servers)
        .processors(processors)
        .cache_capacity(8 << 20)
        .build();
    let queries = cluster.hotspot_workload(40, 10, 2, 2, 77);
    println!(
        "Topology: 1 router + {processors} processors + {storage_servers} storage servers; \
         {} hotspot queries\n",
        queries.len()
    );

    let mut table = TableReport::new(
        "Socket cluster vs in-process live runtime (same workload)",
        &[
            "routing",
            "deployment",
            "throughput_qps",
            "hit_rate_%",
            "stolen",
            "wall_ms",
        ],
    );
    let mut prefetch_lines: Vec<String> = Vec::new();
    let mut failover_lines: Vec<String> = Vec::new();
    let mut heat_lines: Vec<String> = Vec::new();
    let mut traces: Vec<(RoutingKind, grouting_core::trace::TraceSnapshot)> = Vec::new();
    for routing in [RoutingKind::Hash, RoutingKind::Embed] {
        let cluster = cluster.with_routing(routing);
        let wire = cluster
            .run_cluster(&queries, transport)
            .expect("wire cluster run");
        let live = cluster.run_live(&queries);
        assert_eq!(
            wire.results, live.results,
            "socket and in-process deployments must agree on answers"
        );
        if prefetch.enabled() {
            // The final snapshot's speculative tally — strictly separate
            // from the demand hit rate in the table. Zero issuance is a
            // real signal: every hot node was already cached or in
            // flight, so the predictor had nothing worth piggybacking.
            prefetch_lines.push(format!(
                "{routing}: prefetch issued {} nodes, {} demanded ({:.1}% hit rate), \
                 {} B fetched in vain",
                wire.prefetch_issued,
                wire.prefetch_hits,
                wire.prefetch_hit_rate() * 100.0,
                wire.prefetch_wasted_bytes,
            ));
        }
        // Recovery accounting from the final snapshot — all zeros in a
        // healthy run; the chaos example (`cargo run --example chaos`)
        // kills real nodes and shows these spent on recoveries instead.
        failover_lines.push(format!(
            "{routing}: {} redials, {} replica failovers, {} batches resubmitted, \
             {} windows resubmitted",
            wire.redials,
            wire.replica_failovers,
            wire.batches_resubmitted,
            wire.windows_resubmitted,
        ));
        // The workload heatmap from the final snapshot: cumulative
        // demand (cache-miss fetches) and speculative (prefetched)
        // accesses per storage partition, plus the per-landmark-region
        // dispatch tallies when the routing scheme placed landmarks.
        let cells = wire.partition_heat.cells();
        let hottest = cells
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.total())
            .map_or_else(|| "-".to_string(), |(p, _)| format!("p{p}"));
        heat_lines.push(format!(
            "{routing}: [{}] (hottest {hottest}); {} regions touched",
            cells
                .iter()
                .enumerate()
                .map(|(p, c)| format!("p{p} {}+{}", c.demand, c.speculative))
                .collect::<Vec<_>>()
                .join(", "),
            wire.region_heat.len(),
        ));
        if let Some(trace) = wire.trace.clone() {
            traces.push((routing, trace));
        }
        for (deployment, report) in [(transport.to_string(), &wire), ("threads".into(), &live)] {
            table.row(vec![
                routing.to_string().into(),
                deployment.into(),
                format!("{:.0}", report.throughput_qps()).into(),
                format!("{:.1}", report.hit_rate() * 100.0).into(),
                report.stolen.to_string().into(),
                format!("{:.1}", report.wall_ns as f64 / 1e6).into(),
            ]);
        }
    }
    table.print();
    for line in &prefetch_lines {
        println!("{line}");
    }
    println!("\nFailover counters:");
    for line in &failover_lines {
        println!("  {line}");
    }
    println!("\nWorkload heat per partition (demand+speculative accesses):");
    for line in &heat_lines {
        println!("  {line}");
    }
    for (routing, trace) in &traces {
        println!("\nTrace ({routing} routing, level {}):", trace.level);
        trace.stages.table().print();
        let r = &trace.reactor;
        println!(
            "reactor: {:.1}% busy ({:.2} ms busy / {:.2} ms idle), \
             {} frames in / {} out ({} B / {} B), \
             batch depth peak {}, pool reuse {:.1}% (peak {} free buffers)",
            r.busy_ratio() * 100.0,
            r.busy_ns as f64 / 1e6,
            r.idle_ns as f64 / 1e6,
            r.frames_in,
            r.frames_out,
            r.bytes_in,
            r.bytes_out,
            r.batch_depth_peak,
            r.pool_reuse_rate() * 100.0,
            r.pool_peak_free,
        );
        if !trace.spans.is_empty() {
            println!("captured {} query spans (spans level)", trace.spans.len());
        }
    }
    if traces.is_empty() {
        println!("\n(set GROUTING_TRACE=stats for per-stage latency and reactor telemetry)");
    }
    println!("\nBoth deployments answered every query identically.");
}
