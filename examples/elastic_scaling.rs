//! Deployment flexibility: scale each tier independently, survive failures.
//!
//! The decoupled architecture's selling points (paper §1, §4.3):
//!
//! 1. processors scale independently of storage — preprocessing is done
//!    once and reused across every cluster shape;
//! 2. storage scales independently of processors;
//! 3. a processor failure only requires the router to skip it — the
//!    remaining processors can serve any query (no partition is lost).
//!
//! ```bash
//! cargo run --release -p grouting-examples --bin elastic_scaling
//! ```

use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::route::{Router, RouterConfig, Strategy};
use grouting_core::sim::simulate;

fn main() {
    let graph = DatasetProfile::tiny(ProfileName::WebGraph).generate();
    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(4)
        .processors(7)
        .routing(RoutingKind::Embed)
        .cache_capacity(32 << 20)
        .build();
    let queries = cluster.hotspot_workload(30, 10, 2, 2, 11);

    // --- 1. Scale the processing tier (Figure 8(a) shape). ---
    let mut proc_table = TableReport::new(
        "Processing tier scale-up (storage fixed at 4 servers)",
        &["processors", "throughput_qps", "hit_rate_%"],
    );
    for p in 1..=7 {
        let cfg = SimConfig {
            cache_capacity: 32 << 20,
            ..SimConfig::paper_default(p, RoutingKind::Embed)
        };
        let r = simulate(&cluster.assets, &queries, &cfg);
        proc_table.row(vec![
            p.into(),
            r.throughput_qps().into(),
            (r.hit_rate() * 100.0).into(),
        ]);
    }
    proc_table.print();
    println!("(one preprocessing pass served all seven cluster shapes)\n");

    // --- 2. Scale the storage tier (Figure 8(c) shape). ---
    let mut st_table = TableReport::new(
        "Storage tier scale-up (4 processors, no-cache to stress storage)",
        &["storage_servers", "throughput_qps"],
    );
    for s in 1..=7 {
        let assets = cluster.assets.with_storage_servers(s);
        let cfg = SimConfig {
            cache_capacity: 32 << 20,
            ..SimConfig::paper_default(4, RoutingKind::NoCache)
        };
        let r = simulate(&assets, &queries, &cfg);
        st_table.row(vec![s.into(), r.throughput_qps().into()]);
    }
    st_table.print();
    println!();

    // --- 3. Fault tolerance at the router. ---
    // Landmark routing keeps a distance to *every* processor, so when the
    // closest one dies the router transparently picks the next best.
    let table = grouting_core::embed::ProcessorDistanceTable::build(&cluster.assets.landmarks, 4);
    let mut router = Router::new(Strategy::Landmark(table), 4, RouterConfig::default());
    for (i, q) in queries.iter().take(8).enumerate() {
        router.submit(i as u64, *q);
    }
    let loads_before = router.loads();
    router.mark_down(0);
    let loads_after = router.loads();
    println!("processor 0 fails:");
    println!("  queue lengths before: {loads_before:?}");
    println!("  queue lengths after:  {loads_after:?} (its work re-routed)");
    let mut served = 0;
    for p in 1..4 {
        while router.next_for(p).is_some() {
            served += 1;
        }
    }
    println!("  remaining processors served all {served} queued queries");
}
