//! Social-network hotspot study: all five routing schemes head-to-head.
//!
//! Mirrors the paper's Figure 14 setting — a Friendster-like social graph,
//! r-hop hotspot workload, 2-hop traversals — and prints response time and
//! cache hits/misses per routing scheme. Smart routing (landmark, embed)
//! should post visibly higher hit rates than the baselines.
//!
//! ```bash
//! cargo run --release -p grouting-examples --bin social_hotspot
//! ```

use grouting_core::metrics::TableReport;
use grouting_core::prelude::*;
use grouting_core::sim::simulate;

fn main() {
    // Locality only matters when a 2-hop neighbourhood is a small fraction
    // of the graph (as in the paper, where it is ~0.5%), so this example
    // uses a mid-scale profile rather than a toy one.
    let graph = DatasetProfile::at_scale(ProfileName::Friendster, 0.2).generate();
    println!(
        "Friendster-profile graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // Per-processor cache sized well below the graph so eviction pressure
    // is real (the paper: 4 GB cache vs a 60 GB graph).
    let cache = 1 << 20;

    // One cluster build (preprocessing is routing-agnostic), then the same
    // workload replayed under every routing scheme.
    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(4)
        .processors(7)
        .cache_capacity(cache)
        .build();
    let queries = cluster.hotspot_workload(60, 10, 2, 2, 2024);

    let mut table = TableReport::new(
        "Social hotspot workload, 7 processors (Figure 14 setting)",
        &[
            "routing",
            "response_ms",
            "throughput_qps",
            "hits",
            "misses",
            "hit_rate_%",
            "stolen",
        ],
    );
    for routing in RoutingKind::ALL {
        let cfg = SimConfig {
            cache_capacity: cache,
            ..SimConfig::paper_default(7, routing)
        };
        let report = simulate(&cluster.assets, &queries, &cfg);
        table.row(vec![
            routing.to_string().into(),
            report.mean_response_ms().into(),
            report.throughput_qps().into(),
            report.cache_hits.into(),
            report.cache_misses.into(),
            (report.hit_rate() * 100.0).into(),
            report.stolen.into(),
        ]);
    }
    table.print();

    println!();
    println!("Reading the table: the two smart schemes route queries from the");
    println!("same hotspot to the same processor, so their caches keep the");
    println!("hotspot's neighbourhood resident — more hits, lower response time.");
}
