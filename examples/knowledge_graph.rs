//! Knowledge-graph queries: labels, ego-centric filters, reachability.
//!
//! Uses the Freebase-like labelled profile to run the paper's §2.2 query
//! menu with label constraints — "find Alice's 2-hop connections employed
//! by Google" style — through the live threaded runtime, printing actual
//! answers.
//!
//! ```bash
//! cargo run --release -p grouting-examples --bin knowledge_graph
//! ```

use grouting_core::gen::labels::label_histogram;
use grouting_core::prelude::*;

fn main() {
    let graph = DatasetProfile::tiny(ProfileName::Freebase).generate();
    println!(
        "Freebase-profile graph: {} nodes, {} edges, labelled: {}",
        graph.node_count(),
        graph.edge_count(),
        graph.has_node_labels()
    );

    // The three most common entity types, as label-constrained targets.
    let mut hist = label_histogram(&graph);
    hist.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let top: Vec<(NodeLabelId, usize)> = hist.into_iter().take(3).collect();
    for (label, count) in &top {
        println!("label {:?}: {count} entities", label);
    }

    // Pick well-connected query nodes.
    let anchors: Vec<NodeId> = graph.nodes_by_degree_desc().into_iter().take(4).collect();

    let mut queries = Vec::new();
    // Ego-centric: count 2-hop neighbours of each anchor of each top type.
    for &anchor in &anchors {
        queries.push(Query::NeighborAggregation {
            node: anchor,
            hops: 2,
            label: None,
        });
        for &(label, _) in &top {
            queries.push(Query::NeighborAggregation {
                node: anchor,
                hops: 2,
                label: Some(label),
            });
        }
    }
    // Reachability between the anchors within 4 hops — plain, and
    // label-constrained ("reachable only through <top type> entities",
    // the paper's §2.2 label-constrained variant).
    for w in anchors.windows(2) {
        queries.push(Query::Reachability {
            source: w[0],
            target: w[1],
            hops: 4,
        });
        queries.push(Query::ConstrainedReachability {
            source: w[0],
            target: w[1],
            hops: 4,
            via_label: top[0].0,
        });
    }
    // And a random-walk exploration from the top anchor.
    queries.push(Query::RandomWalk {
        node: anchors[0],
        steps: 8,
        restart_prob: 0.15,
        seed: 7,
    });

    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(2)
        .processors(4)
        .routing(RoutingKind::Landmark)
        .cache_capacity(16 << 20)
        .build();

    let report = cluster.run_live(&queries);
    println!("--- answers ({} queries, live run) ---", queries.len());
    for (q, r) in queries.iter().zip(&report.results) {
        match (q, r) {
            (
                Query::NeighborAggregation {
                    node, label: None, ..
                },
                QueryResult::Count(c),
            ) => {
                println!("  |N_2({node})| = {c}");
            }
            (
                Query::NeighborAggregation {
                    node,
                    label: Some(l),
                    ..
                },
                QueryResult::Count(c),
            ) => {
                println!("  |N_2({node}) with label {l:?}| = {c}");
            }
            (
                Query::Reachability {
                    source,
                    target,
                    hops,
                },
                QueryResult::Reachable(ok),
            ) => {
                println!("  {source} -> {target} within {hops} hops: {ok}");
            }
            (
                Query::ConstrainedReachability {
                    source,
                    target,
                    hops,
                    via_label,
                },
                QueryResult::Reachable(ok),
            ) => {
                println!("  {source} -> {target} within {hops} hops via {via_label:?} only: {ok}");
            }
            (Query::RandomWalk { node, steps, .. }, QueryResult::Walk { end, visited }) => {
                println!("  walk({node}, {steps} steps) ended at {end}, visited {visited}");
            }
            _ => unreachable!("result kind matches query kind"),
        }
    }
    println!(
        "hit rate {:.1}% over {} record accesses",
        report.hit_rate() * 100.0,
        report.cache_hits + report.cache_misses
    );
}
