//! Online graph updates with incremental preprocessing maintenance (§3.4).
//!
//! Streams edge/node updates into the dynamic graph, keeps the storage
//! tier and both smart-routing preprocessing structures fresh with the
//! paper's incremental rules, and shows queries staying correct throughout —
//! plus the staleness tracker deciding when a full offline re-preprocess is
//! due.
//!
//! ```bash
//! cargo run --release -p grouting-examples --bin online_updates
//! ```

use grouting_core::embed::updates::{
    landmark_distances_from, refresh_embedding, refresh_landmark_table, StalenessTracker,
};
use grouting_core::embed::{EmbeddingConfig, ProcessorDistanceTable};
use grouting_core::graph::dynamic::DynamicGraph;
use grouting_core::prelude::*;

fn main() {
    let graph = DatasetProfile::tiny(ProfileName::Memetracker).generate();
    let n0 = graph.node_count();
    println!("initial graph: {} nodes, {} edges", n0, graph.edge_count());

    let cluster = GRouting::builder()
        .graph(graph)
        .storage_servers(2)
        .processors(4)
        .routing(RoutingKind::Embed)
        .cache_capacity(16 << 20)
        .build();

    // Mutable state next to the immutable preprocessing.
    let mut dynamic = DynamicGraph::from_csr(&cluster.assets.graph);
    let mut table = ProcessorDistanceTable::build(&cluster.assets.landmarks, 4);
    let mut embedding = (*cluster.assets.embedding).clone();
    let mut tracker = StalenessTracker::new(50);
    let landmark_ids = cluster.assets.landmarks.nodes.clone();
    let embed_cfg = EmbeddingConfig {
        node_iters: 40,
        ..EmbeddingConfig::default()
    };

    // Stream updates: attach a chain of new nodes to existing ones, with a
    // few deletions mixed in.
    let mut refreshed = 0usize;
    for i in 0..30u32 {
        let fresh = NodeId::new((n0 as u32) + i);
        let attach = NodeId::new((i * 37) % n0 as u32);
        dynamic.add_edge(fresh, attach);
        let update = grouting_core::graph::dynamic::GraphUpdate::AddEdge(fresh, attach);
        cluster
            .assets
            .tier
            .apply_update(&dynamic, update)
            .expect("records fit");
        // Incremental maintenance per §3.4: endpoints + 1-hop neighbours.
        refresh_landmark_table(&mut table, &dynamic, &landmark_ids, update, 1);
        refresh_embedding(&mut embedding, &dynamic, update, 1, &embed_cfg);
        refreshed += 1;
        if tracker.record() {
            println!(
                "after {} updates: staleness threshold hit — a full offline \
                 re-preprocess would be scheduled here",
                tracker.pending()
            );
            tracker.reset();
        }
    }
    println!(
        "applied {refreshed} updates; table now covers {} nodes, embedding {}",
        table.nodes(),
        embedding.node_count()
    );

    // New nodes are queryable immediately: their records are in storage and
    // their routing rows exist.
    let fresh = NodeId::new(n0 as u32);
    let dists = landmark_distances_from(&dynamic, fresh, &landmark_ids);
    let reachable_landmarks = dists
        .iter()
        .filter(|&&d| d != grouting_core::embed::UNREACHED_U16)
        .count();
    println!(
        "new node {fresh}: reaches {reachable_landmarks}/{} landmarks, \
         routed to processor {}",
        landmark_ids.len(),
        table.best_processor(fresh)
    );

    // Run queries against the updated storage through the live runtime.
    let queries: Vec<Query> = (0..10)
        .map(|i| Query::NeighborAggregation {
            node: NodeId::new((n0 as u32) + i),
            hops: 2,
            label: None,
        })
        .collect();
    let report = cluster.run_live(&queries);
    println!("--- queries on freshly added nodes ---");
    for (q, r) in queries.iter().zip(&report.results) {
        println!("  |N_2({})| = {:?}", q.anchor(), r.count().unwrap_or(0));
    }
    println!(
        "all {} answered from the updated storage tier",
        queries.len()
    );
}
