//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface this workspace's unit tests
//! use: the [`proptest!`] macro (with both `arg in strategy` and `arg: Type`
//! parameters), range strategies over integers and floats, tuple strategies,
//! [`collection::vec`], [`bool::ANY`], [`num`]`::*::ANY`, [`option::of`],
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the normal assert formatting) but is not
//!   minimised.
//! * **Deterministic.** Each test runs [`CASES`] cases seeded purely by the
//!   case index, so failures reproduce without a persistence file. Set
//!   `PROPTEST_CASES` to override the count.

pub use rand::rngs::StdRng as TestRngCore;
use rand::{Rng as _, RngCore, SeedableRng};

/// Default number of generated cases per property.
pub const CASES: u64 = 64;

/// Cases to run, honouring the `PROPTEST_CASES` environment variable.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CASES)
}

/// Per-case deterministic generator.
pub struct TestRng(TestRngCore);

impl TestRng {
    /// The generator for case `case` (stable across runs).
    pub fn for_case(case: u64) -> Self {
        Self(TestRngCore::seed_from_u64(
            0x5EED_CAFE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of values for one `proptest!` parameter.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

/// A fixed value as a degenerate strategy (proptest's `Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Full-range strategies for plainly-typed `proptest!` parameters.
pub trait Arbitrary: Sized {
    /// The strategy drawing any value of the type.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn any_strategy() -> Self::Strategy;
}

/// Draws any value of an integer-like type.
#[derive(Debug, Clone, Copy)]
pub struct FullRange<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;
            fn any_strategy() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for FullRange<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;
    fn any_strategy() -> Self::Strategy {
        FullRange(core::marker::PhantomData)
    }
}

/// `proptest::bool`.
pub mod bool {
    /// Strategy for either boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Draws `true` or `false` uniformly.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut super::TestRng) -> core::primitive::bool {
            rng.next() & 1 == 1
        }
    }
}

/// `proptest::num`: full-range strategies per primitive.
pub mod num {
    macro_rules! num_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// Full-range strategy module for the primitive of the same name.
            pub mod $m {
                /// Strategy over the whole value range.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// Draws any value of the type.
                pub const ANY: Any = Any;

                impl crate::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::TestRng) -> $t {
                        crate::TestRng::next(rng) as $t
                    }
                }
            }
        )*};
    }
    num_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);
}

/// Length specification for [`collection::vec`].
///
/// Mirrors proptest's `SizeRange`: conversion from `Range<usize>` (and a
/// bare `usize`) pins unsuffixed length literals like `1..80` to `usize`
/// during inference.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_exclusive - self.lo) as u64;
        self.lo + (rng.next() % span) as usize
    }
}

/// `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `vec(element, length_range)`: a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s (50% `None`).
    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: `Some(inner draw)` half the time, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Asserts a condition inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn` runs [`cases`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__proptest_case! { [$(#[$meta])*] $name [] [$($params)*] $body }
        $crate::proptest! { $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ([$(#[$meta:meta])*] $name:ident [$(($id:ident, $strat:expr))*] [] $body:block) => {
        $(#[$meta])*
        fn $name() {
            for __case in 0..$crate::cases() {
                let mut __rng = $crate::TestRng::for_case(__case);
                $(let $id = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
    };
    ([$(#[$meta:meta])*] $name:ident [$($acc:tt)*] [$id:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! { [$(#[$meta])*] $name [$($acc)* ($id, $strat)] [$($rest)*] $body }
    };
    ([$(#[$meta:meta])*] $name:ident [$($acc:tt)*] [$id:ident in $strat:expr] $body:block) => {
        $crate::__proptest_case! { [$(#[$meta])*] $name [$($acc)* ($id, $strat)] [] $body }
    };
    ([$(#[$meta:meta])*] $name:ident [$($acc:tt)*] [$id:ident : $t:ty, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! { [$(#[$meta])*] $name [$($acc)* ($id, <$t as $crate::Arbitrary>::any_strategy())] [$($rest)*] $body }
    };
    ([$(#[$meta:meta])*] $name:ident [$($acc:tt)*] [$id:ident : $t:ty] $body:block) => {
        $crate::__proptest_case! { [$(#[$meta])*] $name [$($acc)* ($id, <$t as $crate::Arbitrary>::any_strategy())] [] $body }
    };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        /// Mixed `in`-strategy and plainly-typed parameters, trailing type.
        #[test]
        fn mixed_params(v in crate::collection::vec((0u8..3, 10u32..20), 0..16), seed: u32) {
            let _ = seed;
            assert!(v.len() < 16);
            for (a, b) in v {
                assert!(a < 3);
                assert!((10..20).contains(&b));
            }
        }

        #[test]
        fn options_and_bools(flag in crate::bool::ANY, label in crate::option::of(0u16..100)) {
            let _ = flag;
            if let Some(l) = label {
                assert!(l < 100);
            }
        }

        #[test]
        fn full_range_bytes(data in crate::collection::vec(crate::num::u8::ANY, 0..64)) {
            assert!(data.len() < 64);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_case(3);
            (0..4).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_case(3);
            (0..4).map(|_| r.next()).collect()
        };
        assert_eq!(a, b);
    }
}
