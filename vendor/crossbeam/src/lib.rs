//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded, Sender, Receiver}`
//! over `std::sync::mpsc`. Multi-producer/single-consumer covers every use
//! in this workspace (per-processor job channels, fan-in ack channel); the
//! one crossbeam feature std lacks — cloneable receivers — is deliberately
//! not offered, so misuse fails at compile time rather than changing
//! semantics silently.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// Sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                Tx::Bounded(s) => Sender(Tx::Bounded(s.clone())),
                Tx::Unbounded(s) => Sender(Tx::Unbounded(s.clone())),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value),
                Tx::Unbounded(s) => s.send(value),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next value.
        ///
        /// # Errors
        ///
        /// Errors when the channel is empty and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// Errors when empty, or disconnected and drained.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with a deadline.
        ///
        /// # Errors
        ///
        /// Errors on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A rendezvous-or-buffered channel holding at most `cap` queued values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// A channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            drop(tx);
            let mut got: Vec<u64> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            for h in handles {
                h.join().unwrap();
            }
        }

        #[test]
        fn bounded_capacity_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
            assert!(rx.recv().is_err(), "sender dropped");
        }
    }
}
