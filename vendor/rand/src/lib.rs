//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the slice of the `rand 0.8` API the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). The core generator is xoshiro256** seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for the
//! simulation and test workloads here. It is **not** the same stream as the
//! real `StdRng` (ChaCha12), which only matters if seeds are expected to
//! reproduce upstream outputs; nothing in this workspace does.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait RandValue: Sized {
    /// Draws one uniformly distributed value.
    fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_rand_int {
    ($($t:ty),*) => {$(
        impl RandValue for $t {
            fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_rand_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandValue for u128 {
    fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl RandValue for bool {
    fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandValue for f64 {
    fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandValue for f32 {
    fn rand_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::rand_from(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: RandValue>(&mut self) -> T {
        T::rand_from(self)
    }

    /// Uniform value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]: {p}");
        f64::rand_from(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_distinct_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
