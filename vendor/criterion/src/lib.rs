//! Offline stand-in for `criterion`.
//!
//! Implements the macro/struct surface `benches/micro.rs` uses —
//! [`Criterion::benchmark_group`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`criterion_group!`], [`criterion_main!`] — as a plain wall-clock timer:
//! a short warm-up, then a fixed measurement window, then one `name … mean`
//! line per benchmark on stdout. No statistics, HTML reports, or comparison
//! baselines; the goal is that `cargo bench` runs and prints sane numbers
//! without crates.io access.

use std::time::{Duration, Instant};

/// How batched setup outputs are grouped (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One state per batch.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    fn measure<F: FnMut()>(&mut self, mut pass: F) {
        // Warm-up, then time iterations until the window closes.
        for _ in 0..3 {
            pass();
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < window {
            let t = Instant::now();
            pass();
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            std::hint::black_box(routine());
        });
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < window {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, name: &str) {
        if self.iters == 0 {
            println!("{group}/{name}: no iterations");
            return;
        }
        let mean = self.total.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if mean >= 1e9 {
            (mean / 1e9, "s")
        } else if mean >= 1e6 {
            (mean / 1e6, "ms")
        } else if mean >= 1e3 {
            (mean / 1e3, "µs")
        } else {
            (mean, "ns")
        };
        println!(
            "{group}/{name}: {value:.2} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is time-window based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&self.name, name);
        self
    }

    /// Ends the group (no-op; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report("bench", name);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0);
    }
}
