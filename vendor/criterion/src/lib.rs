//! Offline stand-in for `criterion`.
//!
//! Implements the macro/struct surface the repo's benches use —
//! [`Criterion::benchmark_group`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`criterion_group!`], [`criterion_main!`] — as a plain wall-clock timer:
//! a short warm-up, then a fixed measurement window sliced into samples,
//! then one `group/name … median` line per benchmark on stdout. No HTML
//! reports or comparison baselines; the goal is that `cargo bench` runs
//! and prints sane numbers without crates.io access.
//!
//! Two extras the real criterion also offers, used by CI:
//!
//! * **Name filtering** — the first non-flag CLI argument restricts which
//!   benchmarks run (`cargo bench --bench micro -- reactor` runs only
//!   benchmarks whose `group/name` contains `reactor`), so the perf gate
//!   can sample one group without paying for the whole suite;
//! * **Machine-readable results** — when `GROUTING_BENCH_JSON` names a
//!   path, `criterion_main!` writes `{"group/name": median_ns, …}` there
//!   on exit, which CI uploads as an artifact and feeds to the
//!   `bench_gate` regression check.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How batched setup outputs are grouped (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One state per batch.
    PerIteration,
}

/// Collected medians (`group/name` → nanoseconds), written out on exit.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());
/// The CLI benchmark-name filter, if any.
static FILTER: Mutex<Option<String>> = Mutex::new(None);

/// Captures the benchmark name filter from the CLI arguments (the first
/// argument not starting with `-`). Called by `criterion_main!`.
pub fn init_from_args() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    *FILTER.lock().unwrap() = filter;
}

fn filter_matches(full_name: &str) -> bool {
    match FILTER.lock().unwrap().as_deref() {
        Some(f) => full_name.contains(f),
        None => true,
    }
}

/// Whether any benchmark of `group` could match the CLI filter — lets a
/// bench target skip a group's (possibly expensive, thread-spawning)
/// setup entirely when a filter excludes it. The filter's group part
/// (everything before a `/`, or the whole filter) is compared both ways,
/// so `reactor_dispatch_latency/inproc` enables exactly that group. A
/// filter naming only a benchmark (`inproc`) matches no group and runs
/// nothing — [`write_results_json`] warns when a filtered run measured
/// zero benchmarks.
pub fn group_enabled(group: &str) -> bool {
    match FILTER.lock().unwrap().as_deref() {
        Some(f) => {
            let group_part = f.split('/').next().unwrap_or(f);
            group.contains(group_part) || group_part.contains(group)
        }
        None => true,
    }
}

fn record_result(full_name: &str, median_ns: f64) {
    RESULTS
        .lock()
        .unwrap()
        .push((full_name.to_string(), median_ns));
}

/// Records an arbitrary named value into the results JSON alongside the
/// timing medians — benches use this to publish companion counters (e.g.
/// prefetch hit totals) into the same machine-readable artifact CI
/// uploads. Honours the CLI name filter like a benchmark would.
pub fn record_metric(full_name: &str, value: f64) {
    if !filter_matches(full_name) {
        return;
    }
    record_result(full_name, value);
}

/// Parses the shim's own flat `{"name": number, …}` output (the same
/// grammar `bench_gate` reads) so re-runs can merge into an existing file.
fn parse_results_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = rest[..end].to_string();
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let value: String = rest
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.push((key, v));
        }
    }
    out
}

/// Writes the collected medians as JSON to `$GROUTING_BENCH_JSON`, if set.
/// Called by `criterion_main!` after every group has run. Also warns when
/// a filtered run measured nothing (a filter that names a benchmark
/// without its group skips every group's setup).
///
/// An existing results file is *merged into*, fresh values winning per
/// key — so several filtered bench invocations (as CI runs) accumulate
/// one combined artifact instead of the last overwriting the rest.
pub fn write_results_json() {
    if RESULTS.lock().unwrap().is_empty() {
        if let Some(f) = FILTER.lock().unwrap().as_deref() {
            eprintln!("warning: filter {f:?} matched no benchmarks (use group or group/name)");
        }
    }
    let Ok(path) = std::env::var("GROUTING_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let results = RESULTS.lock().unwrap();
    let mut merged: Vec<(String, f64)> = std::fs::read_to_string(&path)
        .map(|text| parse_results_json(&text))
        .unwrap_or_default();
    for (name, median) in results.iter() {
        match merged.iter_mut().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = *median,
            None => merged.push((name.clone(), *median)),
        }
    }
    let mut out = String::from("{\n");
    for (i, (name, median)) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        // Bench names are plain ASCII identifiers; escape the JSON
        // specials anyway for safety.
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!("  \"{escaped}\": {median:.1}{comma}\n"));
    }
    out.push_str("}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench results written to {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Per-sample mean nanoseconds (each sample times a small batch of
    /// passes, so fast benchmarks aren't dominated by clock overhead).
    samples: Vec<f64>,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            iters: 0,
        }
    }

    fn measure<F: FnMut()>(&mut self, mut pass: F) {
        // Warm-up.
        for _ in 0..3 {
            pass();
        }
        // Calibrate: size sample batches to ~2 ms so the 200 ms window
        // yields ~100 samples whatever the per-pass cost.
        let t = Instant::now();
        pass();
        let once = t.elapsed().max(Duration::from_nanos(1));
        self.iters += 1;
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).max(1) as u64;
        let window = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < window {
            let t = Instant::now();
            for _ in 0..per_sample {
                pass();
            }
            let elapsed = t.elapsed();
            self.samples
                .push(elapsed.as_nanos() as f64 / per_sample as f64);
            self.iters += per_sample;
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            std::hint::black_box(routine());
        });
    }

    /// Times `routine` over fresh `setup` outputs, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < window {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        Some(sorted[sorted.len() / 2])
    }

    fn report(&self, group: &str, name: &str) {
        let full = format!("{group}/{name}");
        let Some(median) = self.median_ns() else {
            println!("{full}: no iterations");
            return;
        };
        record_result(&full, median);
        let (value, unit) = if median >= 1e9 {
            (median / 1e9, "s")
        } else if median >= 1e6 {
            (median / 1e6, "ms")
        } else if median >= 1e3 {
            (median / 1e3, "µs")
        } else {
            (median, "ns")
        };
        println!(
            "{full}: {value:.2} {unit}/iter (median of {} samples, {} iters)",
            self.samples.len(),
            self.iters
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; sampling is time-window based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group (skipped when a CLI filter was
    /// given and does not match `group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !filter_matches(&format!("{}/{name}", self.name)) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&self.name, name);
        self
    }

    /// Ends the group (no-op; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !filter_matches(&format!("bench/{name}")) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        b.report("bench", name);
        self
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, honouring the CLI name filter
/// and writing the JSON results file on exit when configured.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $($group();)+
            $crate::write_results_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn median_is_computed() {
        let mut b = Bencher::new();
        b.samples = vec![5.0, 1.0, 3.0];
        assert_eq!(b.median_ns(), Some(3.0));
        assert_eq!(Bencher::new().median_ns(), None);
    }
}
