//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the `bytes 1.x` API this workspace uses:
//! [`Bytes`] (cheaply cloneable, sliceable, consumable view over shared
//! bytes), [`BytesMut`] (growable buffer that freezes into `Bytes`), and the
//! [`Buf`]/[`BufMut`] cursor traits with the little-endian accessors the
//! codecs call. Zero-copy semantics are preserved: `Bytes::slice` and
//! `clone` share one allocation via `Arc`.
//!
//! One deliberate extension over the upstream API: [`BufferPool`], a
//! bounded free-list of receive buffers for the wire data plane. Buffers
//! are checked out as [`BytesMut`], frozen into [`Bytes`] once a frame's
//! bytes have landed, sliced zero-copy into payload views, and checked
//! back in when the transport is done with the frame. Reclamation goes
//! through `Arc::try_unwrap`, so a buffer can only re-enter the free list
//! once **no** live [`Bytes`] view references it — pool reuse can never
//! alias payload bytes still held elsewhere.

use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    /// Consumes a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let v = u128::from_le_bytes(self.chunk()[..16].try_into().unwrap());
        self.advance(16);
        v
    }

    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Immutable, cheaply cloneable view over shared bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `src` into a fresh buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// View length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of 0..{len}");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self::copy_from_slice(src)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(src: [u8; N]) -> Self {
        Self::from(src.to_vec())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance {n} past {}", self.len());
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total capacity of the underlying allocation.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// A bounded free-list of reusable byte buffers.
///
/// The lifecycle is `checkout → fill → freeze → slice → checkin`:
/// [`BufferPool::checkout`] hands out an empty [`BytesMut`] (reusing a
/// previously reclaimed allocation when one is available), the caller
/// fills it with received bytes and freezes it, decoders take zero-copy
/// [`Bytes::slice`] views into it, and [`BufferPool::checkin`] offers the
/// buffer back. A buffer is reclaimed **only** when the checked-in view
/// holds the allocation's last reference (`Arc::try_unwrap`); while any
/// payload view is still alive the allocation simply stays out of the
/// pool and is freed by the last view's drop, exactly as without a pool.
/// Reuse therefore can never scribble over bytes a live view can read.
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    buffer_capacity: usize,
    reclaimed: u64,
    checkouts: u64,
    reused: u64,
}

impl BufferPool {
    /// A pool handing out buffers with at least `buffer_capacity` bytes
    /// reserved, retaining at most `max_buffers` free allocations.
    pub fn new(buffer_capacity: usize, max_buffers: usize) -> Self {
        Self {
            free: Vec::new(),
            max_buffers,
            buffer_capacity,
            reclaimed: 0,
            checkouts: 0,
            reused: 0,
        }
    }

    /// An empty buffer, reusing a reclaimed allocation when available.
    pub fn checkout(&mut self) -> BytesMut {
        self.checkouts += 1;
        let data = match self.free.pop() {
            Some(data) => {
                self.reused += 1;
                data
            }
            None => Vec::with_capacity(self.buffer_capacity),
        };
        BytesMut { data }
    }

    /// Offers a frozen buffer back to the pool. Returns `true` when the
    /// allocation was reclaimed into the free list — i.e. `bytes` was its
    /// last live view and the allocation is worth keeping.
    pub fn checkin(&mut self, bytes: Bytes) -> bool {
        match Arc::try_unwrap(bytes.data) {
            Ok(data) => self.retain(data),
            Err(_) => false,
        }
    }

    /// Returns an unfrozen buffer (e.g. one that never filled a complete
    /// frame) straight to the pool.
    pub fn checkin_mut(&mut self, buf: BytesMut) {
        self.retain(buf.data);
    }

    fn retain(&mut self, mut data: Vec<u8>) -> bool {
        // Undersized allocations (notably the empty placeholder a consumer
        // swaps in while it owns no frame bytes) would poison the free
        // list with useless buffers; only full-size allocations re-enter.
        if data.capacity() < self.buffer_capacity || self.free.len() >= self.max_buffers {
            return false;
        }
        data.clear();
        self.free.push(data);
        self.reclaimed += 1;
        true
    }

    /// Free buffers currently pooled.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Total successful reclamations over the pool's lifetime.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Total buffers handed out over the pool's lifetime.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Checkouts served from the free list rather than a fresh allocation.
    pub fn reused(&self) -> u64 {
        self.reused
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let again = mid.slice(1..);
        assert_eq!(&again[..], &[3, 4]);
        assert_eq!(b.len(), 5, "parent view unaffected");
    }

    #[test]
    #[should_panic(expected = "advance")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.advance(2);
    }

    #[test]
    fn pool_reuses_reclaimed_allocations() {
        let mut pool = BufferPool::new(64, 4);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"hello");
        let frozen = buf.freeze();
        assert!(pool.checkin(frozen), "sole view must reclaim");
        assert_eq!(pool.available(), 1);
        let again = pool.checkout();
        assert!(again.is_empty(), "reclaimed buffers come back cleared");
        assert!(again.capacity() >= 64);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn pool_never_reclaims_while_a_view_is_alive() {
        let mut pool = BufferPool::new(64, 4);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"payload bytes here");
        let frozen = buf.freeze();
        let view = frozen.slice(8..13);
        assert_eq!(&view[..], b"bytes");
        // The frame buffer goes back while a payload view is still live:
        // reclamation must refuse, and the view must stay intact even
        // after further checkouts.
        assert!(!pool.checkin(frozen), "live view must block reclaim");
        assert_eq!(pool.available(), 0);
        let mut other = pool.checkout();
        other.extend_from_slice(b"XXXXXXXXXXXXXXXXXXXXXX");
        assert_eq!(&view[..], b"bytes", "view survives pool churn");
    }

    #[test]
    fn pool_rejects_undersized_buffers() {
        let mut pool = BufferPool::new(64, 4);
        assert!(!pool.checkin(Bytes::new()), "placeholder must not pollute");
        pool.checkin_mut(BytesMut::new());
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = BufferPool::new(16, 2);
        let bufs: Vec<BytesMut> = (0..5).map(|_| pool.checkout()).collect();
        for buf in bufs {
            pool.checkin_mut(buf);
        }
        assert_eq!(pool.available(), 2, "free list is capped at max_buffers");
    }
}
