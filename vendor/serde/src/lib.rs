//! Offline no-op stand-in for `serde`'s derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! on plain data types — nothing calls a serializer (there is no
//! `serde_json`/`bincode` in the tree; the graph codecs are hand-rolled in
//! `grouting-graph`). These derives therefore expand to nothing, keeping the
//! source annotations intact so swapping in real serde later is a manifest
//! change only.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
