//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind the poison-free `parking_lot` API shape
//! (`lock()`/`read()`/`write()` return guards directly). A poisoned std lock
//! — a panic while holding the guard — aborts the wrapping call with a
//! panic, which matches how this workspace treats worker panics (fatal).

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

/// Readers-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquires an exclusive write guard, blocking.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(*rw.read(), vec![1, 2, 3]);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
