//! The shared engine layer: one builder for the whole routing stack.
//!
//! Both execution frontends — the deterministic discrete-event simulator
//! (`grouting-sim`) and the threaded runtime (`grouting-live`) — drive the
//! *same* cluster: a [`Router`](grouting_route::Router) wrapping one of the
//! paper's routing strategies, a shared storage tier, one byte-capacity
//! cache per query processor, and a metrics timeline. This crate owns that
//! assembly so a routing or storage change lands in exactly one place:
//!
//! * [`EngineConfig`] — the cluster-shape knobs common to every frontend
//!   (processors, routing scheme, cache policy/capacity, EMA α, load
//!   factor, stealing, admission window, seed);
//! * [`EngineAssets`] — the preprocessing products the smart strategies
//!   need (storage tier, landmarks, embedding);
//! * [`Engine::new`] — builds the router (strategy chosen from
//!   [`RoutingKind`]) and one [`Worker`] per processor, then mediates
//!   admission, dispatch, and completion accounting;
//! * [`Worker`] — a processor's executable half (cache + tier handle),
//!   detachable via [`Engine::take_workers`] so the live runtime can move
//!   each one onto its own thread while the simulator keeps them inline.
//!
//! What stays frontend-specific is *time*: the simulator charges virtual
//! nanoseconds from its cost model, the live runtime reads wall clocks.
//! Everything else — who serves a query, what its cache holds, what the
//! metrics count — is decided here, which is why the two frontends agree
//! (see the `runtime_agreement` integration tests).

use std::sync::Arc;

use grouting_cache::{NullCache, Policy};
use grouting_embed::embedding::Embedding;
use grouting_embed::landmarks::Landmarks;
use grouting_embed::ProcessorDistanceTable;
use grouting_metrics::timeline::QueryRecord;
use grouting_metrics::RunSnapshot;
use grouting_metrics::Timeline;
use grouting_query::{
    AccessStats, BatchSource, ExecOutcome, Executor, MissEvent, PrefetchConfig, PrefetchState,
    PrefetchStats, ProcessorCache, Query,
};
use grouting_route::{EmbedRouter, Router, RouterConfig, RoutingKind, Strategy};
use grouting_storage::StorageTier;

/// Cluster-shape configuration shared by every execution frontend.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Query processors P.
    pub processors: usize,
    /// Routing scheme.
    pub routing: RoutingKind,
    /// Per-processor cache capacity in bytes (ignored for
    /// [`RoutingKind::NoCache`]).
    pub cache_capacity: usize,
    /// Cache eviction policy (the paper uses LRU).
    pub cache_policy: Policy,
    /// EMA smoothing α for embed routing (Eq. 5).
    pub alpha: f64,
    /// Load factor for the load-balanced distance d_LB (Eq. 3/7).
    pub load_factor: f64,
    /// Whether query stealing is enabled (Requirement 2).
    pub stealing: bool,
    /// Queries admitted into router queues ahead of dispatch
    /// (0 = `16 × processors`).
    pub admission_window: usize,
    /// Queries a *wire* processor may hold in flight at once (clamped to
    /// ≥ 1). At 2+ the router dispatches ahead of acknowledgements and the
    /// processor overlaps one query's frontier fetch with another's
    /// compute stage (double-buffered frontiers); at 1 execution is
    /// strictly serial and cache statistics are byte-identical to the
    /// in-process engine. The in-process frontends execute serially
    /// regardless — overlap only changes behaviour where fetches actually
    /// cross a wire.
    pub overlap: usize,
    /// Speculative frontier prefetching: policy plus per-batch/staging
    /// budgets (default [`PrefetchConfig::OFF`]). When enabled, frontier
    /// batches piggyback predicted next-hop nodes; demand-side Eq. 8/9
    /// statistics stay byte-identical either way.
    pub prefetch: PrefetchConfig,
    /// Seed for EMA mean initialisation.
    pub seed: u64,
}

impl EngineConfig {
    /// The paper's standard shape for `processors` and a routing scheme:
    /// 4 GB LRU cache, α 0.9, load factor 20, stealing on.
    pub fn paper_default(processors: usize, routing: RoutingKind) -> Self {
        Self {
            processors,
            routing,
            cache_capacity: 4 << 30,
            cache_policy: Policy::Lru,
            alpha: 0.9,
            load_factor: 20.0,
            stealing: true,
            admission_window: 0,
            overlap: 2,
            prefetch: PrefetchConfig::OFF,
            seed: 0x5EED,
        }
    }

    /// Effective admission window (`0` means `16 × processors`).
    pub fn window(&self) -> usize {
        if self.admission_window == 0 {
            16 * self.processors
        } else {
            self.admission_window
        }
    }

    /// Builds one processor's cache per this configuration (a null cache
    /// for [`RoutingKind::NoCache`]).
    pub fn build_cache(&self) -> ProcessorCache {
        if self.routing.uses_cache() {
            self.cache_policy.build(self.cache_capacity)
        } else {
            Box::new(NullCache::new())
        }
    }
}

/// Preprocessing products the engine wires into the routing strategies.
///
/// The smart schemes need their assets — [`RoutingKind::Landmark`] the
/// landmark set, [`RoutingKind::Embed`] the embedding; the baselines need
/// none. Construction panics (not errors) on a missing asset, matching the
/// long-standing runtime contract.
#[derive(Clone)]
pub struct EngineAssets {
    /// The loaded storage tier every processor fetches from.
    pub tier: Arc<StorageTier>,
    /// Landmark set + distance maps (landmark routing).
    pub landmarks: Option<Arc<Landmarks>>,
    /// The graph embedding (embed routing).
    pub embedding: Option<Arc<Embedding>>,
}

impl EngineAssets {
    /// Assets with only a storage tier (baseline routings).
    pub fn new(tier: Arc<StorageTier>) -> Self {
        Self {
            tier,
            landmarks: None,
            embedding: None,
        }
    }

    /// Adds the landmark set.
    #[must_use]
    pub fn with_landmarks(mut self, landmarks: Option<Arc<Landmarks>>) -> Self {
        self.landmarks = landmarks;
        self
    }

    /// Adds the embedding.
    #[must_use]
    pub fn with_embedding(mut self, embedding: Option<Arc<Embedding>>) -> Self {
        self.embedding = embedding;
        self
    }
}

/// A query processor's executable half: its cache plus a record source
/// (the miss path behind the cache).
///
/// Detached from the [`Engine`] with [`Engine::take_workers`] so each
/// frontend can place it where execution happens — inline for the
/// simulator, on a dedicated thread for the live runtime, or inside a
/// socket service loop for a wire deployment (`Worker: Send`). The engine
/// builds workers whose source is a direct [`StorageTier`] handle; a wire
/// deployment builds them with [`Worker::from_parts`] around a
/// transport-backed [`RecordSource`], so the same execution code drives
/// bytes over real connections.
pub struct Worker {
    id: usize,
    source: Box<dyn BatchSource + Send>,
    cache: ProcessorCache,
    /// Per-processor speculation state (inert unless configured): the
    /// predictor, the staged-payload buffer, and the speculative tally —
    /// persistent across queries exactly like the cache.
    prefetch: PrefetchState,
}

impl Worker {
    /// Assembles a worker from explicit parts: a processor id, the miss
    /// path the cache falls back to, and the cache itself (usually
    /// [`EngineConfig::build_cache`]). The source's
    /// [`BatchSource::fetch_batch`] is what the frontier-batched traversal
    /// drives — in-process tier handles serve it directly, wire sources
    /// turn it into one pipelined batch frame per storage server.
    /// Prefetching starts off; see [`Worker::with_prefetch`].
    pub fn from_parts(
        id: usize,
        source: Box<dyn BatchSource + Send>,
        cache: ProcessorCache,
    ) -> Self {
        Self {
            id,
            source,
            cache,
            prefetch: PrefetchState::new(PrefetchConfig::OFF),
        }
    }

    /// Equips the worker with speculative frontier prefetching per
    /// `config` ([`PrefetchConfig::OFF`] keeps it inert).
    #[must_use]
    pub fn with_prefetch(mut self, config: PrefetchConfig) -> Self {
        self.prefetch = PrefetchState::new(config);
        self
    }

    /// The processor id this worker serves.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Executes one query against this processor's cache and its record
    /// source, returning the outcome plus the ordered storage-miss log
    /// (the simulator replays it through its contention model).
    pub fn run(&mut self, query: &Query) -> (ExecOutcome, Vec<MissEvent>) {
        let mut ex =
            Executor::with_prefetch(self.source.as_mut(), &mut self.cache, &mut self.prefetch);
        let out = ex.run(query);
        let miss_log = ex.take_miss_log();
        (out, miss_log)
    }

    /// The speculative-traffic tally accumulated over everything this
    /// worker ran (zeros while prefetching is off).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch.stats()
    }

    /// Resident bytes in this worker's cache.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }
}

/// Totals accumulated across every completion the engine records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Cache hits across processors (Eq. 8 numerator).
    pub cache_hits: u64,
    /// Cache misses across processors (Eq. 9 numerator).
    pub cache_misses: u64,
    /// Cache evictions observed.
    pub evictions: u64,
}

/// Everything the engine measured over one run.
pub struct EngineRun {
    /// Per-query lifecycle records.
    pub timeline: Timeline,
    /// Hit/miss/eviction totals.
    pub totals: EngineTotals,
    /// Queries served by a non-preferred processor.
    pub stolen: u64,
}

/// The assembled routing stack both frontends drive.
pub struct Engine {
    config: EngineConfig,
    router: Router,
    workers: Vec<Worker>,
    timeline: Timeline,
    totals: EngineTotals,
}

impl Engine {
    /// Builds the full stack for `config`: the strategy from
    /// [`EngineConfig::routing`], the router around it, and one cache-owning
    /// [`Worker`] per processor.
    ///
    /// # Panics
    ///
    /// Panics if `config.processors == 0`, or if a smart scheme is
    /// requested without its preprocessing asset.
    pub fn new(assets: &EngineAssets, config: &EngineConfig) -> Self {
        Self::build(assets, config, true)
    }

    /// Builds only the router half — strategy, queues, admission, and
    /// completion accounting — with no local workers. This is the engine a
    /// wire deployment's router node runs: the processors (and their
    /// caches) live behind connections, so building local cache-owning
    /// workers would waste memory on state nobody drives.
    ///
    /// [`Engine::take_workers`] must not be called on a router-only
    /// engine.
    ///
    /// # Panics
    ///
    /// Same contract as [`Engine::new`].
    pub fn new_router_only(assets: &EngineAssets, config: &EngineConfig) -> Self {
        Self::build(assets, config, false)
    }

    fn build(assets: &EngineAssets, config: &EngineConfig, with_workers: bool) -> Self {
        assert!(config.processors > 0, "zero processors");
        let p = config.processors;

        let strategy = match config.routing {
            RoutingKind::NoCache => Strategy::NextReady { no_cache: true },
            RoutingKind::NextReady => Strategy::NextReady { no_cache: false },
            RoutingKind::Hash => Strategy::Hash,
            RoutingKind::Landmark => Strategy::Landmark(ProcessorDistanceTable::build(
                assets
                    .landmarks
                    .as_ref()
                    .expect("landmark routing needs landmarks"),
                p,
            )),
            RoutingKind::Embed => Strategy::Embed(EmbedRouter::new(
                Arc::clone(
                    assets
                        .embedding
                        .as_ref()
                        .expect("embed routing needs an embedding"),
                ),
                p,
                config.alpha,
                config.seed,
            )),
        };
        let router = Router::new(
            strategy,
            p,
            RouterConfig {
                load_factor: config.load_factor,
                stealing: config.stealing,
            },
        );

        let workers = if with_workers {
            (0..p)
                .map(|id| {
                    Worker::from_parts(id, Box::new(Arc::clone(&assets.tier)), config.build_cache())
                        .with_prefetch(config.prefetch)
                })
                .collect()
        } else {
            Vec::new()
        };

        Self {
            config: *config,
            router,
            workers,
            timeline: Timeline::new(),
            totals: EngineTotals::default(),
        }
    }

    /// The configuration this engine was built from.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of query processors.
    pub fn processors(&self) -> usize {
        self.config.processors
    }

    /// Detaches the per-processor workers (index = processor id) so the
    /// frontend can drive them inline or move them onto threads.
    ///
    /// # Panics
    ///
    /// Panics if called twice — each engine builds exactly one worker set.
    pub fn take_workers(&mut self) -> Vec<Worker> {
        assert!(
            !self.workers.is_empty(),
            "workers already taken from this engine"
        );
        std::mem::take(&mut self.workers)
    }

    /// Keeps the router's queues topped up to the admission window,
    /// invoking `on_admit` with each admitted sequence number (the frontend
    /// stamps its notion of arrival time there).
    pub fn admit<I>(&mut self, backlog: &mut I, mut on_admit: impl FnMut(usize))
    where
        I: Iterator<Item = (usize, Query)>,
    {
        let window = self.config.window();
        while self.router.pending() < window {
            match backlog.next() {
                Some((seq, q)) => {
                    on_admit(seq);
                    self.router.submit(seq as u64, q);
                }
                None => break,
            }
        }
    }

    /// Queries waiting in the router.
    pub fn pending(&self) -> usize {
        self.router.pending()
    }

    /// Next query for an idle processor: own queue → global queue → steal.
    pub fn next_for(&mut self, processor: usize) -> Option<(u64, Query)> {
        self.router.next_for(processor)
    }

    /// Records one completed query into the timeline and totals.
    pub fn complete(&mut self, record: QueryRecord, stats: &AccessStats) {
        self.totals.cache_hits += stats.cache_hits;
        self.totals.cache_misses += stats.cache_misses;
        self.totals.evictions += stats.evictions;
        self.timeline.push(record);
    }

    /// Takes a processor out of rotation: its queued work is redistributed
    /// through the strategy, and no further queries are routed to it. Used
    /// by the wire router to mask a processor that died mid-run.
    pub fn mark_down(&mut self, processor: usize) {
        self.router.mark_down(processor);
    }

    /// Brings a processor back into rotation after a [`Engine::mark_down`]
    /// — the re-join path: a restarted processor re-dialling with its old
    /// id starts receiving routed work again. A no-op when the processor
    /// was never down.
    pub fn mark_up(&mut self, processor: usize) {
        self.router.mark_up(processor);
    }

    /// Whether `processor` is currently routed to.
    pub fn is_up(&self, processor: usize) -> bool {
        self.router.is_up(processor)
    }

    /// Re-enqueues a query that was dispatched but never acknowledged
    /// (its processor died); routing sees it as a fresh submission under
    /// its original sequence number.
    pub fn resubmit(&mut self, seq: u64, query: Query) {
        self.router.submit(seq, query);
    }

    /// The measurements accumulated *so far*, as a wire-encodable
    /// snapshot — the router answers mid-run [`RunSnapshot`] requests with
    /// this without finishing the run.
    ///
    /// Prefetch counters are zero here: speculation state lives with the
    /// processors (local [`Worker`]s or remote pipeline services), so the
    /// owner of those processors fills the counters in — the wire router
    /// from the cumulative tallies its completions carry, the in-process
    /// frontends from [`Worker::prefetch_stats`].
    pub fn snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            queries: self.timeline.len() as u64,
            cache_hits: self.totals.cache_hits,
            cache_misses: self.totals.cache_misses,
            evictions: self.totals.evictions,
            stolen: self.router.stolen(),
            prefetch_issued: 0,
            prefetch_hits: 0,
            prefetch_wasted_bytes: 0,
            redials: 0,
            replica_failovers: 0,
            batches_resubmitted: 0,
            windows_resubmitted: 0,
            per_processor: self.timeline.per_processor_counts(self.config.processors),
            // Heat lives with the processors too (miss logs / pipeline
            // tallies); the owner folds it in alongside the prefetch
            // counters above.
            partition_heat: grouting_metrics::HeatMap::new(),
            region_heat: grouting_metrics::HeatMap::new(),
        }
    }

    /// Finishes the run, yielding the accumulated measurements.
    pub fn finish(self) -> EngineRun {
        EngineRun {
            timeline: self.timeline,
            totals: self.totals,
            stolen: self.router.stolen(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loaded_assets(servers: usize) -> EngineAssets {
        let mut b = GraphBuilder::new();
        for i in 0..32 {
            b.add_edge(n(i), n((i + 1) % 32));
            b.add_edge(n(i), n((i + 2) % 32));
        }
        let g = b.build().unwrap();
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(&g).unwrap();
        EngineAssets::new(tier)
    }

    fn q(node: u32) -> Query {
        Query::NeighborAggregation {
            node: n(node),
            hops: 1,
            label: None,
        }
    }

    #[test]
    fn builds_workers_and_runs_queries() {
        let assets = loaded_assets(2);
        let cfg = EngineConfig {
            cache_capacity: 1 << 20,
            ..EngineConfig::paper_default(3, RoutingKind::Hash)
        };
        let mut engine = Engine::new(&assets, &cfg);
        assert_eq!(engine.processors(), 3);
        let mut workers = engine.take_workers();
        assert_eq!(workers.len(), 3);
        assert_eq!(workers[2].id(), 2);

        let (out, misses) = workers[0].run(&q(0));
        assert!(out.stats.cache_misses > 0);
        assert_eq!(misses.len(), out.stats.cache_misses as usize);
        // Second run over the same node hits the worker's cache.
        let (out2, misses2) = workers[0].run(&q(0));
        assert!(out2.stats.cache_hits > 0);
        assert!(misses2.len() < misses.len());
    }

    #[test]
    fn no_cache_routing_gets_null_caches() {
        let assets = loaded_assets(2);
        let cfg = EngineConfig {
            cache_capacity: 1 << 20,
            ..EngineConfig::paper_default(2, RoutingKind::NoCache)
        };
        let mut engine = Engine::new(&assets, &cfg);
        let mut workers = engine.take_workers();
        let (first, _) = workers[0].run(&q(0));
        let (second, _) = workers[0].run(&q(0));
        assert_eq!(first.stats.cache_hits, 0);
        assert_eq!(second.stats.cache_hits, 0, "null cache never hits");
        assert_eq!(workers[0].cache_bytes(), 0);
    }

    #[test]
    fn admit_fills_to_window_and_dispatch_drains() {
        let assets = loaded_assets(2);
        let cfg = EngineConfig {
            admission_window: 4,
            ..EngineConfig::paper_default(2, RoutingKind::Hash)
        };
        let mut engine = Engine::new(&assets, &cfg);
        let queries: Vec<Query> = (0..10u32).map(q).collect();
        let mut backlog = queries.iter().copied().enumerate();
        let mut admitted = Vec::new();
        engine.admit(&mut backlog, |seq| admitted.push(seq));
        assert_eq!(admitted, vec![0, 1, 2, 3], "window of 4");
        assert_eq!(engine.pending(), 4);

        let (seq, _) = engine.next_for(0).expect("work queued");
        engine.complete(
            QueryRecord {
                seq,
                arrived: 0,
                started: 1,
                completed: 2,
                processor: 0,
            },
            &AccessStats {
                cache_hits: 3,
                cache_misses: 1,
                miss_bytes: 64,
                evictions: 0,
            },
        );
        engine.admit(&mut backlog, |_| {});
        assert_eq!(engine.pending(), 4, "refilled after dispatch");

        let run = engine.finish();
        assert_eq!(run.timeline.len(), 1);
        assert_eq!(run.totals.cache_hits, 3);
        assert_eq!(run.totals.cache_misses, 1);
    }

    #[test]
    fn window_defaults_to_sixteen_per_processor() {
        assert_eq!(
            EngineConfig::paper_default(3, RoutingKind::Hash).window(),
            48
        );
        let explicit = EngineConfig {
            admission_window: 5,
            ..EngineConfig::paper_default(3, RoutingKind::Hash)
        };
        assert_eq!(explicit.window(), 5);
    }

    #[test]
    #[should_panic(expected = "embed routing needs an embedding")]
    fn embed_without_embedding_panics() {
        let assets = loaded_assets(1);
        let _ = Engine::new(&assets, &EngineConfig::paper_default(1, RoutingKind::Embed));
    }

    #[test]
    #[should_panic(expected = "landmark routing needs landmarks")]
    fn landmark_without_landmarks_panics() {
        let assets = loaded_assets(1);
        let _ = Engine::new(
            &assets,
            &EngineConfig::paper_default(1, RoutingKind::Landmark),
        );
    }

    #[test]
    #[should_panic(expected = "zero processors")]
    fn zero_processors_rejected() {
        let assets = loaded_assets(1);
        let _ = Engine::new(&assets, &EngineConfig::paper_default(0, RoutingKind::Hash));
    }

    #[test]
    fn workers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Worker>();
    }

    #[test]
    fn router_only_engine_routes_without_workers() {
        let assets = loaded_assets(2);
        let cfg = EngineConfig {
            admission_window: 4,
            ..EngineConfig::paper_default(2, RoutingKind::Hash)
        };
        let mut engine = Engine::new_router_only(&assets, &cfg);
        let queries: Vec<Query> = (0..6u32).map(q).collect();
        let mut backlog = queries.iter().copied().enumerate();
        engine.admit(&mut backlog, |_| {});
        assert_eq!(engine.pending(), 4);
        assert!(engine.next_for(0).is_some(), "routing works workerless");
    }
}
