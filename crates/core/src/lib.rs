//! # gRouting — smart query routing for decoupled distributed graph querying
//!
//! A from-scratch Rust reproduction of *"On Smart Query Routing: For
//! Distributed Graph Querying with Decoupled Storage"* (Khan, Segovia,
//! Kossmann). The system answers online h-hop traversal queries over large
//! directed graphs on a cluster that **decouples** stateless query
//! processors (each with an LRU cache) from a sharded in-memory storage
//! tier, and routes queries so that *nearby* query nodes land on the *same*
//! processor — turning the processors' caches into an adaptive, workload-
//! driven replication layer that makes expensive graph partitioning
//! unnecessary.
//!
//! ## Quick start
//!
//! ```
//! use grouting_core::prelude::*;
//!
//! // A small scale-free graph, stored across 2 storage servers.
//! let graph = DatasetProfile::tiny(ProfileName::Freebase).generate();
//! let cluster = GRouting::builder()
//!     .graph(graph)
//!     .storage_servers(2)
//!     .processors(3)
//!     .routing(RoutingKind::Embed)
//!     .build();
//!
//! // The paper's hotspot workload, then a simulated run.
//! let queries = cluster.hotspot_workload(8, 4, 2, 2, 7);
//! let report = cluster.simulate(&queries);
//! assert_eq!(report.timeline.len(), queries.len());
//! assert!(report.hit_rate() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`graph`] | `grouting-graph` | CSR graph, labels, traversal, updates |
//! | [`gen`] | `grouting-gen` | R-MAT/BA/ER/WS generators, dataset profiles |
//! | [`partition`] | `grouting-partition` | MurmurHash3, multilevel, vertex-cut |
//! | [`storage`] | `grouting-storage` | log-structured KV tier, network models |
//! | [`cache`] | `grouting-cache` | LRU/FIFO/LFU/unbounded/null caches |
//! | [`embed`] | `grouting-embed` | landmarks, pivots, simplex embedding |
//! | [`route`] | `grouting-route` | the router and all routing strategies |
//! | [`query`] | `grouting-query` | queries + executors + fetch layer |
//! | [`workload`] | `grouting-workload` | hotspot workload generation |
//! | [`engine`] | `grouting-engine` | the shared engine builder both runtimes drive |
//! | [`sim`] | `grouting-sim` | deterministic discrete-event cluster |
//! | [`live`] | `grouting-live` | real multi-threaded cluster |
//! | [`wire`] | `grouting-wire` | framed RPC: transports, services, socket cluster |
//! | [`baseline`] | `grouting-baseline` | SEDGE/Giraph-style BSP, PowerGraph-style GAS |
//! | [`metrics`] | `grouting-metrics` | histograms, timelines, heatmaps, reporters |
//! | [`obs`] | `grouting-obs` | metrics registry, scrape endpoint, flight recorder |

pub use grouting_baseline as baseline;
pub use grouting_cache as cache;
pub use grouting_embed as embed;
pub use grouting_engine as engine;
pub use grouting_gen as gen;
pub use grouting_graph as graph;
pub use grouting_live as live;
pub use grouting_metrics as metrics;
pub use grouting_obs as obs;
pub use grouting_partition as partition;
pub use grouting_query as query;
pub use grouting_route as route;
pub use grouting_sim as sim;
pub use grouting_storage as storage;
pub use grouting_trace as trace;
pub use grouting_wire as wire;
pub use grouting_workload as workload;

pub mod cluster;

pub use cluster::{GRouting, GRoutingBuilder};

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::cluster::{GRouting, GRoutingBuilder};
    pub use grouting_cache::Policy;
    pub use grouting_gen::{DatasetProfile, ProfileName};
    pub use grouting_graph::{CsrGraph, GraphBuilder, NodeId, NodeLabelId};
    pub use grouting_query::{Query, QueryResult};
    pub use grouting_route::RoutingKind;
    pub use grouting_sim::{SimConfig, SimReport};
    pub use grouting_wire::TransportKind;
    pub use grouting_workload::{hotspot_workload, QueryMix, WorkloadConfig};
}
