//! The `GRouting` facade: build a cluster once, run workloads against it.

use std::sync::Arc;

use grouting_cache::Policy;
use grouting_embed::embedding::EmbeddingConfig;
use grouting_embed::landmarks::LandmarkConfig;
use grouting_gen::profiles::env_scale;
use grouting_graph::CsrGraph;
use grouting_live::{run_live, LiveConfig, LiveReport};
use grouting_query::Query;
use grouting_route::RoutingKind;
use grouting_sim::{simulate, SimAssets, SimConfig, SimReport};
use grouting_wire::TransportKind;
use grouting_workload::{hotspot_workload, QueryMix, WorkloadConfig};

/// Builder for a [`GRouting`] cluster.
///
/// Performs the full preprocessing pipeline on
/// [`build`](GRoutingBuilder::build): loads the storage tier (hash
/// partitioning), selects landmarks, runs the BFS distance maps, and embeds
/// the graph.
#[derive(Debug)]
pub struct GRoutingBuilder {
    graph: Option<CsrGraph>,
    storage_servers: usize,
    processors: usize,
    routing: RoutingKind,
    cache_capacity: usize,
    cache_policy: Policy,
    alpha: f64,
    load_factor: f64,
    landmarks: Option<LandmarkConfig>,
    embedding: Option<EmbeddingConfig>,
}

impl Default for GRoutingBuilder {
    fn default() -> Self {
        Self {
            graph: None,
            storage_servers: 4,
            processors: 7,
            routing: RoutingKind::Embed,
            cache_capacity: 4 << 30,
            cache_policy: Policy::Lru,
            alpha: 0.9,
            load_factor: 20.0,
            landmarks: None,
            embedding: None,
        }
    }
}

impl GRoutingBuilder {
    /// Sets the graph to serve (required).
    pub fn graph(mut self, graph: CsrGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Number of storage servers (default 4, as in the paper).
    pub fn storage_servers(mut self, n: usize) -> Self {
        self.storage_servers = n;
        self
    }

    /// Number of query processors (default 7, as in the paper).
    pub fn processors(mut self, n: usize) -> Self {
        self.processors = n;
        self
    }

    /// Routing scheme (default embed, the paper's best).
    pub fn routing(mut self, routing: RoutingKind) -> Self {
        self.routing = routing;
        self
    }

    /// Per-processor cache capacity in bytes (default 4 GB).
    pub fn cache_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity = bytes;
        self
    }

    /// Cache eviction policy (default LRU).
    pub fn cache_policy(mut self, policy: Policy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// EMA smoothing α for embed routing (default 0.5).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Load factor for the load-balanced distance (default 20).
    pub fn load_factor(mut self, lf: f64) -> Self {
        self.load_factor = lf;
        self
    }

    /// Overrides landmark selection parameters.
    pub fn landmark_config(mut self, cfg: LandmarkConfig) -> Self {
        self.landmarks = Some(cfg);
        self
    }

    /// Overrides embedding parameters.
    pub fn embedding_config(mut self, cfg: EmbeddingConfig) -> Self {
        self.embedding = Some(cfg);
        self
    }

    /// Runs preprocessing and assembles the cluster handle.
    ///
    /// # Panics
    ///
    /// Panics if no graph was supplied or it has no edges.
    pub fn build(self) -> GRouting {
        let graph = Arc::new(self.graph.expect("GRoutingBuilder requires a graph"));
        assert!(graph.edge_count() > 0, "cannot serve an empty graph");
        let n = graph.node_count();
        let landmark_config = self.landmarks.unwrap_or(LandmarkConfig {
            count: 96.min(((n as f64).sqrt() as usize).max(4)),
            min_separation: 3,
        });
        let embedding_config = self.embedding.unwrap_or_default();
        let assets = SimAssets::build(
            graph,
            self.storage_servers.max(1),
            &landmark_config,
            &embedding_config,
        );
        GRouting {
            assets,
            processors: self.processors.max(1),
            routing: self.routing,
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
        }
    }
}

/// A preprocessed gRouting cluster, ready to serve workloads in either the
/// deterministic simulator or the live threaded runtime.
pub struct GRouting {
    /// Preprocessing assets (graph, storage tier, landmarks, embedding).
    pub assets: SimAssets,
    processors: usize,
    routing: RoutingKind,
    cache_capacity: usize,
    cache_policy: Policy,
    alpha: f64,
    load_factor: f64,
}

impl GRouting {
    /// Starts a builder.
    pub fn builder() -> GRoutingBuilder {
        GRoutingBuilder::default()
    }

    /// The graph being served.
    pub fn graph(&self) -> &CsrGraph {
        &self.assets.graph
    }

    /// Configured processor count.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Configured routing scheme.
    pub fn routing(&self) -> RoutingKind {
        self.routing
    }

    /// A handle over the same preprocessed assets with a different routing
    /// scheme — preprocessing is routing-agnostic, so scheme sweeps build
    /// once and reconfigure cheaply (the assets are shared `Arc`s).
    #[must_use]
    pub fn with_routing(&self, routing: RoutingKind) -> GRouting {
        GRouting {
            assets: self.assets.clone(),
            processors: self.processors,
            routing,
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
        }
    }

    /// Generates a paper-style hotspot workload over this cluster's graph.
    pub fn hotspot_workload(
        &self,
        hotspots: usize,
        per_hotspot: usize,
        radius: u32,
        hops: u32,
        seed: u64,
    ) -> Vec<Query> {
        hotspot_workload(
            &self.assets.graph,
            &WorkloadConfig {
                hotspots,
                per_hotspot,
                radius,
                hops,
                mix: QueryMix::uniform(),
                restart_prob: 0.15,
                seed,
            },
        )
        .queries
    }

    /// The simulation config equivalent to this cluster's settings.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
            ..SimConfig::paper_default(self.processors, self.routing)
        }
    }

    /// Runs the queries in the deterministic discrete-event simulator.
    pub fn simulate(&self, queries: &[Query]) -> SimReport {
        simulate(&self.assets, queries, &self.sim_config())
    }

    /// Runs the queries in a simulator configured by the caller (sweeps).
    pub fn simulate_with(&self, queries: &[Query], config: &SimConfig) -> SimReport {
        simulate(&self.assets, queries, config)
    }

    /// The live-runtime config equivalent to this cluster's settings.
    /// Wire deployments honour `GROUTING_OVERLAP` for the per-processor
    /// in-flight window (default 2, cross-query fetch overlap on) and
    /// `GROUTING_PREFETCH` for speculative frontier prefetching (default
    /// off; `degree` or `hotspot`, optionally `policy:max_nodes`), and
    /// `GROUTING_TRACE` for the query-tracing level (default off;
    /// `stats` or `spans`).
    fn live_config(&self) -> LiveConfig {
        LiveConfig {
            processors: self.processors,
            routing: self.routing,
            cache_capacity: self.cache_capacity,
            cache_policy: self.cache_policy,
            alpha: self.alpha,
            load_factor: self.load_factor,
            stealing: true,
            admission_window: 0,
            overlap: grouting_wire::overlap_from_env(2),
            prefetch: grouting_query::PrefetchConfig::from_env(),
            trace: grouting_trace::TraceLevel::from_env(),
            seed: 0x11FE,
        }
    }

    /// Runs the queries on real threads (wall-clock measurements).
    pub fn run_live(&self, queries: &[Query]) -> LiveReport {
        run_live(
            Arc::clone(&self.assets.tier),
            Some(Arc::clone(&self.assets.landmarks)),
            Some(Arc::clone(&self.assets.embedding)),
            queries,
            &self.live_config(),
        )
    }

    /// Runs the queries on a wire cluster: the router, every processor,
    /// and every storage server deployed as framed-transport peers
    /// (real loopback sockets for [`TransportKind::Tcp`]), with all
    /// dispatches, acknowledgements, and adjacency fetches crossing
    /// connections. The fetch path follows `GROUTING_BATCH` (pipelined
    /// frontier batches by default, `GROUTING_BATCH=0` for scalar
    /// per-node round trips).
    ///
    /// # Errors
    ///
    /// Propagates wire-layer failures (bind/dial errors, peers dying
    /// mid-run).
    pub fn run_cluster(
        &self,
        queries: &[Query],
        transport: TransportKind,
    ) -> Result<LiveReport, grouting_wire::WireError> {
        grouting_live::run_cluster(
            Arc::clone(&self.assets.tier),
            Some(Arc::clone(&self.assets.landmarks)),
            Some(Arc::clone(&self.assets.embedding)),
            queries,
            &self.live_config(),
            transport,
            grouting_storage::Preset::Local,
            grouting_wire::FetchMode::from_env(),
        )
    }

    /// The `GROUTING_SCALE`-aware scale factor (re-exported convenience for
    /// examples and benches).
    pub fn env_scale() -> f64 {
        env_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_gen::{DatasetProfile, ProfileName};

    fn tiny_cluster(routing: RoutingKind) -> GRouting {
        let graph = DatasetProfile::tiny(ProfileName::Freebase).generate();
        GRouting::builder()
            .graph(graph)
            .storage_servers(2)
            .processors(3)
            .routing(routing)
            .cache_capacity(16 << 20)
            .embedding_config(EmbeddingConfig {
                dimensions: 5,
                landmark_sweeps: 1,
                landmark_iters: 100,
                node_iters: 30,
                nearest_landmarks: 8,
                seed: 1,
            })
            .build()
    }

    #[test]
    fn build_and_simulate_every_routing() {
        for routing in grouting_route::RoutingKind::ALL {
            let cluster = tiny_cluster(routing);
            let queries = cluster.hotspot_workload(6, 4, 2, 2, 3);
            let report = cluster.simulate(&queries);
            assert_eq!(report.timeline.len(), queries.len(), "{routing}");
            if routing == RoutingKind::NoCache {
                assert_eq!(report.cache_hits, 0);
            }
        }
    }

    #[test]
    fn live_and_sim_agree_on_results() {
        let cluster = tiny_cluster(RoutingKind::Hash);
        let queries = cluster.hotspot_workload(4, 4, 2, 2, 9);
        let live = cluster.run_live(&queries);
        assert_eq!(live.results.len(), queries.len());
        // The simulator executes the same queries over the same data;
        // check a few counts against ground truth.
        for (q, r) in queries.iter().zip(&live.results) {
            if let grouting_query::Query::NeighborAggregation { node, hops, .. } = q {
                let truth = grouting_graph::traversal::h_hop_neighborhood(
                    cluster.graph(),
                    *node,
                    *hops,
                    grouting_graph::traversal::Direction::Both,
                )
                .len() as u64;
                assert_eq!(r.count(), Some(truth));
            }
        }
    }

    #[test]
    fn socket_cluster_matches_live_results() {
        let cluster = tiny_cluster(RoutingKind::Hash);
        let queries = cluster.hotspot_workload(4, 4, 2, 2, 11);
        let wire = cluster
            .run_cluster(&queries, TransportKind::InProc)
            .expect("cluster runs");
        let live = cluster.run_live(&queries);
        assert_eq!(wire.results, live.results);
        assert_eq!(wire.results.len(), queries.len());
    }

    #[test]
    #[should_panic(expected = "requires a graph")]
    fn builder_requires_graph() {
        let _ = GRouting::builder().build();
    }
}
