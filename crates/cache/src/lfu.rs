//! LFU cache for the eviction-policy ablation.
//!
//! Evicts the least-frequently-used entry (ties broken by age). Implemented
//! with a lazy binary heap: each access pushes a fresh `(freq, tick, key)`
//! marker and eviction skips stale markers, giving amortised O(log n) ops
//! without an intrusive frequency list.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;

use crate::Cache;

#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    freq: u64,
    tick: u64,
}

/// Least-frequently-used byte-capacity cache.
#[derive(Debug)]
pub struct LfuCache<K: Ord, V> {
    map: HashMap<K, Slot<V>>,
    heap: BinaryHeap<Reverse<(u64, u64, K)>>,
    bytes: usize,
    capacity: usize,
    clock: u64,
}

impl<K: Eq + Hash + Clone + Ord, V> LfuCache<K, V> {
    /// Creates a cache bounded by `capacity` payload bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            heap: BinaryHeap::new(),
            bytes: 0,
            capacity,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn pop_least_frequent(&mut self) -> Option<(K, V)> {
        while let Some(Reverse((freq, tick, key))) = self.heap.pop() {
            let stale = match self.map.get(&key) {
                Some(slot) => slot.freq != freq || slot.tick != tick,
                None => true,
            };
            if stale {
                continue;
            }
            let slot = self.map.remove(&key).expect("checked above");
            self.bytes -= slot.bytes;
            return Some((key, slot.value));
        }
        None
    }
}

impl<K: Eq + Hash + Clone + Ord + Send, V: Send> Cache<K, V> for LfuCache<K, V> {
    fn get(&mut self, key: &K) -> Option<&V> {
        let t = self.tick();
        let slot = self.map.get_mut(key)?;
        slot.freq += 1;
        slot.tick = t;
        self.heap.push(Reverse((slot.freq, slot.tick, key.clone())));
        self.map.get(key).map(|s| &s.value)
    }

    fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
            evicted.push((key.clone(), old.value));
        }
        if bytes > self.capacity {
            evicted.push((key, value));
            return evicted;
        }
        while self.bytes + bytes > self.capacity {
            match self.pop_least_frequent() {
                Some(pair) => evicted.push(pair),
                None => break,
            }
        }
        let t = self.tick();
        self.heap.push(Reverse((1, t, key.clone())));
        self.map.insert(
            key,
            Slot {
                value,
                bytes,
                freq: 1,
                tick: t,
            },
        );
        self.bytes += bytes;
        evicted
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.heap.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(30);
        c.insert("a", 1, 10);
        c.insert("b", 2, 10);
        c.insert("c", 3, 10);
        // "a" becomes hot; "b" and "c" each have freq 1 — "b" is older.
        c.get(&"a");
        c.get(&"a");
        let ev = c.insert("d", 4, 10);
        assert_eq!(ev, vec![("b", 2)]);
        assert!(c.contains(&"a"));
    }

    #[test]
    fn frequency_survives_pressure() {
        let mut c = LfuCache::new(20);
        c.insert(1u32, (), 10);
        for _ in 0..10 {
            c.get(&1);
        }
        // Stream of one-shot entries never displaces the hot one.
        for i in 2..20u32 {
            c.insert(i, (), 10);
            assert!(c.contains(&1), "hot entry evicted at {i}");
        }
    }

    #[test]
    fn replace_resets_frequency() {
        let mut c = LfuCache::new(30);
        c.insert(1u32, "x", 10);
        c.get(&1);
        c.get(&1);
        c.insert(1u32, "y", 10); // Replacement is a new life: freq 1.
        c.insert(2u32, "z", 10);
        c.get(&2);
        c.insert(3u32, "w", 10);
        let ev = c.insert(4u32, "v", 10);
        // Entry 1 (freq 1, oldest) should fall out before entry 2 (freq 2).
        assert!(ev.iter().any(|(k, _)| *k == 1), "evicted {ev:?}");
        assert!(c.contains(&2));
    }

    #[test]
    fn oversized_rejected() {
        let mut c = LfuCache::new(3);
        let ev = c.insert(1u32, (), 10);
        assert_eq!(ev.len(), 1);
        assert!(c.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_accounting(ops in proptest::collection::vec((0u8..2, 0u32..15, 1usize..40), 1..200)) {
            let mut c = LfuCache::new(80);
            for (op, key, size) in ops {
                match op {
                    0 => { c.insert(key, (), size); }
                    _ => { c.get(&key); }
                }
                proptest::prop_assert!(c.bytes() <= 80);
                let real: usize = c.map.values().map(|s| s.bytes).sum();
                proptest::prop_assert_eq!(real, c.bytes());
            }
        }
    }
}
