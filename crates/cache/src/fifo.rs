//! FIFO cache for the eviction-policy ablation.
//!
//! Identical byte accounting to [`crate::LruCache`] but eviction ignores
//! recency: the oldest *inserted* entry goes first, and `get` does not
//! promote. Under the paper's hotspot workloads FIFO should trail LRU
//! because repeated hits inside a hotspot no longer protect its records.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::Cache;

/// First-in-first-out byte-capacity cache.
#[derive(Debug)]
pub struct FifoCache<K, V> {
    map: HashMap<K, (V, usize)>,
    order: VecDeque<K>,
    bytes: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> FifoCache<K, V> {
    /// Creates a cache bounded by `capacity` payload bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            capacity,
        }
    }

    fn pop_oldest(&mut self) -> Option<(K, V)> {
        while let Some(key) = self.order.pop_front() {
            if let Some((value, size)) = self.map.remove(&key) {
                self.bytes -= size;
                return Some((key, value));
            }
            // Stale queue entry from a replace: skip.
        }
        None
    }
}

impl<K: Eq + Hash + Clone + Send, V: Send> Cache<K, V> for FifoCache<K, V> {
    fn get(&mut self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        if let Some((old, size)) = self.map.remove(&key) {
            self.bytes -= size;
            evicted.push((key.clone(), old));
            // The stale queue slot is skipped lazily by pop_oldest.
        }
        if bytes > self.capacity {
            evicted.push((key, value));
            return evicted;
        }
        while self.bytes + bytes > self.capacity {
            match self.pop_oldest() {
                Some(pair) => evicted.push(pair),
                None => break,
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, (value, bytes));
        self.bytes += bytes;
        evicted
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_insertion_order_despite_gets() {
        let mut c = FifoCache::new(30);
        c.insert("a", 1, 10);
        c.insert("b", 2, 10);
        c.insert("c", 3, 10);
        // Touching "a" does NOT protect it under FIFO.
        assert_eq!(c.get(&"a"), Some(&1));
        let ev = c.insert("d", 4, 10);
        assert_eq!(ev, vec![("a", 1)]);
    }

    #[test]
    fn replace_is_not_double_counted() {
        let mut c = FifoCache::new(100);
        c.insert(1u32, "x", 40);
        c.insert(1u32, "y", 20);
        assert_eq!(c.bytes(), 20);
        assert_eq!(c.len(), 1);
        // Fill to force eviction; the stale queue slot must be skipped.
        c.insert(2u32, "z", 70);
        assert_eq!(c.bytes(), 90);
        let ev = c.insert(3u32, "w", 30);
        assert!(!ev.is_empty());
        assert!(c.bytes() <= 100);
    }

    #[test]
    fn oversized_rejected() {
        let mut c = FifoCache::new(5);
        let ev = c.insert(9u32, (), 6);
        assert_eq!(ev.len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut c = FifoCache::new(50);
        c.insert(1u32, (), 10);
        c.clear();
        assert_eq!(c.bytes(), 0);
        assert!(c.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_never_over_capacity(ops in proptest::collection::vec((0u32..20, 1usize..40), 1..200)) {
            let mut c = FifoCache::new(100);
            for (key, size) in ops {
                c.insert(key, (), size);
                proptest::prop_assert!(c.bytes() <= 100);
            }
        }
    }
}
