//! Byte-capacity LRU cache with an intrusive index-linked list.
//!
//! All operations are O(1): a `HashMap` keys into a slab of entries that
//! form a doubly-linked recency list via `usize` indices (no pointer
//! juggling, no unsafe). The head is most-recently-used; eviction pops the
//! tail while over capacity.

use std::collections::HashMap;
use std::hash::Hash;

use crate::Cache;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// The paper's default processor cache (§2.3).
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache bounded by `capacity` payload bytes.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            capacity,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = {
            let e = self.slab[idx].as_ref().expect("detached live entry");
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev].as_mut().expect("prev live").next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].as_mut().expect("next live").prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        {
            let e = self.slab[idx].as_mut().expect("attached live entry");
            e.prev = NIL;
            e.next = self.head;
        }
        if self.head != NIL {
            self.slab[self.head].as_mut().expect("head live").prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn pop_tail(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.detach(idx);
        let e = self.slab[idx].take().expect("tail live");
        self.free.push(idx);
        self.map.remove(&e.key);
        self.bytes -= e.bytes;
        Some((e.key, e.value))
    }

    /// Iterates over resident keys from most- to least-recently used.
    pub fn keys_mru(&self) -> impl Iterator<Item = &K> + '_ {
        let mut cursor = self.head;
        std::iter::from_fn(move || {
            if cursor == NIL {
                return None;
            }
            let e = self.slab[cursor].as_ref().expect("list entry live");
            cursor = e.next;
            Some(&e.key)
        })
    }
}

impl<K: Eq + Hash + Clone + Send, V: Send> Cache<K, V> for LruCache<K, V> {
    fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slab[idx].as_ref().map(|e| &e.value)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.slab[idx].as_ref().map(|e| &e.value)
    }

    fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();

        // Replace an existing entry in place.
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            let e = self.slab[idx].take().expect("replaced entry live");
            self.free.push(idx);
            self.map.remove(&e.key);
            self.bytes -= e.bytes;
            evicted.push((e.key, e.value));
        }

        if bytes > self.capacity {
            // Cannot ever fit: reject, handing the value back.
            evicted.push((key, value));
            return evicted;
        }

        while self.bytes + bytes > self.capacity {
            match self.pop_tail() {
                Some(pair) => evicted.push(pair),
                None => break,
            }
        }

        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.slab[idx] = Some(Entry {
            key: key.clone(),
            value,
            bytes,
            prev: NIL,
            next: NIL,
        });
        self.attach_front(idx);
        self.map.insert(key, idx);
        self.bytes += bytes;
        evicted
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert("a", 1, 10);
        c.insert("b", 2, 10);
        c.insert("c", 3, 10);
        // Touch "a" so "b" becomes LRU.
        assert_eq!(c.get(&"a"), Some(&1));
        let ev = c.insert("d", 4, 10);
        assert_eq!(ev, vec![("b", 2)]);
        assert!(c.contains(&"a"));
        assert!(c.contains(&"c"));
        assert!(c.contains(&"d"));
    }

    #[test]
    fn byte_accounting() {
        let mut c = LruCache::new(100);
        c.insert(1u32, (), 60);
        c.insert(2u32, (), 30);
        assert_eq!(c.bytes(), 90);
        let ev = c.insert(3u32, (), 20);
        assert_eq!(ev.len(), 1); // 60-byte entry 1 evicted
        assert_eq!(c.bytes(), 50);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = LruCache::new(10);
        let ev = c.insert(1u32, "big", 11);
        assert_eq!(ev, vec![(1u32, "big")]);
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut c = LruCache::new(100);
        c.insert(1u32, "x", 40);
        let ev = c.insert(1u32, "y", 10);
        assert_eq!(ev, vec![(1u32, "x")]);
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(&"y"));
    }

    #[test]
    fn mru_order_iteration() {
        let mut c = LruCache::new(1000);
        c.insert(1u32, (), 1);
        c.insert(2u32, (), 1);
        c.insert(3u32, (), 1);
        c.get(&1);
        let order: Vec<u32> = c.keys_mru().copied().collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(50);
        c.insert(1u32, (), 20);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert!(!c.contains(&1));
        c.insert(2u32, (), 20);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        let ev = c.insert(1u32, (), 1);
        assert_eq!(ev.len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuses_slots() {
        let mut c = LruCache::new(20);
        for i in 0..100u32 {
            c.insert(i, (), 10);
        }
        // Only 2 entries fit at a time, so the slab should stay tiny.
        assert!(c.slab.len() <= 3, "slab grew to {}", c.slab.len());
    }

    proptest::proptest! {
        /// Random workloads never exceed capacity, never lose accounting,
        /// and the map/list stay consistent.
        #[test]
        fn prop_invariants(ops in proptest::collection::vec((0u8..2, 0u32..20, 1usize..40), 1..300)) {
            let mut c = LruCache::new(100);
            for (op, key, size) in ops {
                match op {
                    0 => { c.insert(key, key, size); }
                    _ => { c.get(&key); }
                }
                proptest::prop_assert!(c.bytes() <= 100);
                let walked = c.keys_mru().count();
                proptest::prop_assert_eq!(walked, c.len());
                // Every key reachable via the list is in the map.
                let keys: Vec<u32> = c.keys_mru().copied().collect();
                for k in keys {
                    proptest::prop_assert!(c.contains(&k));
                }
            }
        }
    }
}
