//! Unbounded cache modelling "sufficient capacity" experiments.
//!
//! §4.3 of the paper assumes "each query processor has sufficient cache
//! capacity (4GB) to store the results of all 1000 queries" — i.e. no
//! eviction ever happens. This cache never evicts and reports
//! `usize::MAX` capacity, which keeps accounting code uniform.

use std::collections::HashMap;
use std::hash::Hash;

use crate::Cache;

/// A cache that never evicts.
#[derive(Debug, Default)]
pub struct UnboundedCache<K, V> {
    map: HashMap<K, (V, usize)>,
    bytes: usize,
}

impl<K: Eq + Hash + Clone, V> UnboundedCache<K, V> {
    /// Creates an empty unbounded cache.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            bytes: 0,
        }
    }
}

impl<K: Eq + Hash + Clone + Send, V: Send> Cache<K, V> for UnboundedCache<K, V> {
    fn get(&mut self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        let mut evicted = Vec::new();
        if let Some((old, size)) = self.map.insert(key.clone(), (value, bytes)) {
            self.bytes -= size;
            evicted.push((key, old));
        }
        self.bytes += bytes;
        evicted
    }

    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    fn bytes(&self) -> usize {
        self.bytes
    }

    fn capacity(&self) -> usize {
        usize::MAX
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_evicts() {
        let mut c = UnboundedCache::new();
        for i in 0..10_000u32 {
            assert!(c.insert(i, i, 1000).is_empty());
        }
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.bytes(), 10_000_000);
        assert_eq!(c.get(&0), Some(&0));
    }

    #[test]
    fn replace_returns_old() {
        let mut c = UnboundedCache::new();
        c.insert(1u32, "a", 5);
        let ev = c.insert(1u32, "b", 7);
        assert_eq!(ev, vec![(1u32, "a")]);
        assert_eq!(c.bytes(), 7);
    }
}
