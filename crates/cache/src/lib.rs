//! Query-processor caches.
//!
//! Each query processor in the decoupled architecture owns a byte-capacity
//! cache of adjacency records fetched from the storage tier (§2.3 "Query
//! Processing Tier"). The paper uses LRU ("we chose the LRU eviction policy
//! because of its simplicity … it favors recent queries, thus it performs
//! well with our smart routing schemes"); [`LruCache`] is the default used
//! everywhere. [`FifoCache`] and [`LfuCache`] exist for the cache-policy
//! ablation bench, and [`UnboundedCache`] models the "sufficient capacity"
//! configuration of §4.3.
//!
//! All caches implement [`Cache`] and account capacity in *bytes*, not
//! entries, because adjacency records vary enormously in size on power-law
//! graphs (a hub's record can be megabytes).

pub mod fifo;
pub mod lfu;
pub mod lru;
pub mod null;
pub mod unbounded;

pub use fifo::FifoCache;
pub use lfu::LfuCache;
pub use lru::LruCache;
pub use null::NullCache;
pub use unbounded::UnboundedCache;

use std::hash::Hash;

/// A byte-capacity cache with pluggable eviction.
///
/// `insert` returns the entries evicted to make room; if the new entry
/// itself exceeds the whole capacity it is rejected and returned instead
/// (callers treat both uniformly as "no longer cached").
pub trait Cache<K: Eq + Hash + Clone, V>: Send {
    /// Looks up `key`, promoting it per the policy; `None` on miss.
    fn get(&mut self, key: &K) -> Option<&V>;

    /// Inserts an entry of `bytes` size, returning evicted entries.
    fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)>;

    /// Whether `key` is resident (no promotion side effects).
    fn contains(&self, key: &K) -> bool;

    /// Looks up `key` *without* promotion side effects: recency, frequency,
    /// and eviction state stay untouched. Speculative readers (the prefetch
    /// predictors) use this so inspecting cache contents can never perturb
    /// the demand path's Eq. 8/9 accounting.
    fn peek(&self, key: &K) -> Option<&V>;

    /// Resident payload bytes.
    fn bytes(&self) -> usize;

    /// Capacity in bytes.
    fn capacity(&self) -> usize;

    /// Number of resident entries.
    fn len(&self) -> usize;

    /// Whether the cache holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries.
    fn clear(&mut self);
}

/// Eviction policy selector used by configuration layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Least-recently-used (the paper's choice).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Least-frequently-used.
    Lfu,
}

impl Policy {
    /// Instantiates the chosen policy with a byte capacity.
    pub fn build<K, V>(&self, capacity: usize) -> Box<dyn Cache<K, V>>
    where
        K: Eq + Hash + Clone + Ord + Send + 'static,
        V: Send + 'static,
    {
        match self {
            Policy::Lru => Box::new(LruCache::new(capacity)),
            Policy::Fifo => Box::new(FifoCache::new(capacity)),
            Policy::Lfu => Box::new(LfuCache::new(capacity)),
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Policy::Lru => write!(f, "LRU"),
            Policy::Fifo => write!(f, "FIFO"),
            Policy::Lfu => write!(f, "LFU"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_builds_each_kind() {
        for p in [Policy::Lru, Policy::Fifo, Policy::Lfu] {
            let mut c: Box<dyn Cache<u32, u32>> = p.build(100);
            assert!(c.insert(1, 10, 4).is_empty());
            assert_eq!(c.get(&1), Some(&10));
            assert_eq!(c.capacity(), 100);
        }
    }

    #[test]
    fn policy_display() {
        assert_eq!(Policy::Lru.to_string(), "LRU");
        assert_eq!(Policy::Fifo.to_string(), "FIFO");
        assert_eq!(Policy::Lfu.to_string(), "LFU");
    }
}
