//! The no-cache mode of the paper's evaluation.
//!
//! §4.1: "we consider an additional *no-cache* scheme … as there is no cache
//! in query processors, there will be no overhead due to cache lookup and
//! maintenance." [`NullCache`] stores nothing and hits never, so every fetch
//! goes to the storage tier; runtimes detect it via `capacity() == 0` to
//! skip charging cache-probe costs.

use std::hash::Hash;
use std::marker::PhantomData;

use crate::Cache;

/// A cache that never stores anything.
#[derive(Debug, Default)]
pub struct NullCache<K, V> {
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> NullCache<K, V> {
    /// Creates the null cache.
    pub fn new() -> Self {
        Self {
            _marker: PhantomData,
        }
    }
}

impl<K: Eq + Hash + Clone + Send, V: Send> Cache<K, V> for NullCache<K, V> {
    fn get(&mut self, _key: &K) -> Option<&V> {
        None
    }

    fn insert(&mut self, key: K, value: V, _bytes: usize) -> Vec<(K, V)> {
        vec![(key, value)]
    }

    fn contains(&self, _key: &K) -> bool {
        false
    }

    fn peek(&self, _key: &K) -> Option<&V> {
        None
    }

    fn bytes(&self) -> usize {
        0
    }

    fn capacity(&self) -> usize {
        0
    }

    fn len(&self) -> usize {
        0
    }

    fn clear(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_stores() {
        let mut c: NullCache<u32, &str> = NullCache::new();
        let ev = c.insert(1, "x", 4);
        assert_eq!(ev, vec![(1, "x")]);
        assert_eq!(c.get(&1), None);
        assert!(!c.contains(&1));
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
        c.clear();
    }
}
