//! The pipeline stages a query crosses, and their latency histograms.

use bytes::{Bytes, BytesMut};
use grouting_metrics::report::Cell;
use grouting_metrics::{nanos_to_millis, Histogram, TableReport};

/// Number of traced stages.
pub const STAGE_COUNT: usize = 5;

/// One stage of a query's end-to-end path through the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Client submit → router dispatch: time spent queued at the router
    /// behind the admission/overlap window.
    RouterQueue,
    /// Router dispatch → completion received back at the router — the
    /// full processor round trip (transit, queueing, execution).
    DispatchRtt,
    /// Inside the processor: time a query spent waiting on frontier
    /// fetches (summed across BFS levels).
    FetchWait,
    /// Inside the processor: time spent advancing the query between
    /// fetches (summed across resume calls).
    Compute,
    /// Processor completion stamp → completion frame reaching the
    /// client.
    Completion,
}

impl Stage {
    /// Every stage, in wire/index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::RouterQueue,
        Stage::DispatchRtt,
        Stage::FetchWait,
        Stage::Compute,
        Stage::Completion,
    ];

    /// Stable index into [`StageStats`] and the wire encoding.
    pub fn index(self) -> usize {
        match self {
            Stage::RouterQueue => 0,
            Stage::DispatchRtt => 1,
            Stage::FetchWait => 2,
            Stage::Compute => 3,
            Stage::Completion => 4,
        }
    }

    /// The snake_case name used in tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::RouterQueue => "router_queue",
            Stage::DispatchRtt => "dispatch_rtt",
            Stage::FetchWait => "fetch_wait",
            Stage::Compute => "compute",
            Stage::Completion => "completion",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One latency histogram per [`Stage`], aggregated by the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    hists: [Histogram; STAGE_COUNT],
}

impl Default for StageStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StageStats {
    /// Empty histograms for every stage.
    pub fn new() -> Self {
        Self {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// Records one observation (nanoseconds) into a stage's histogram.
    #[inline]
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        self.hists[stage.index()].record(nanos);
    }

    /// The histogram backing one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.hists[stage.index()]
    }

    /// Total observations across all stages.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(Histogram::count).sum()
    }

    /// Whether nothing has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Merges another set of stage histograms into this one.
    pub fn merge(&mut self, other: &StageStats) {
        for (mine, theirs) in self.hists.iter_mut().zip(&other.hists) {
            mine.merge(theirs);
        }
    }

    /// Appends the wire layout: each stage's histogram in index order.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        for h in &self.hists {
            h.encode_into(buf);
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.hists.iter().map(Histogram::encoded_len).sum()
    }

    /// Decodes stage histograms from the front of `data`, consuming
    /// exactly their bytes.
    ///
    /// # Errors
    ///
    /// Propagates histogram malformations.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        let mut hists = Vec::with_capacity(STAGE_COUNT);
        for stage in Stage::ALL {
            hists.push(
                Histogram::decode_prefix(data)
                    .map_err(|e| format!("stage {}: {e}", stage.name()))?,
            );
        }
        Ok(Self {
            hists: hists.try_into().expect("exactly STAGE_COUNT decoded"),
        })
    }

    /// The per-stage latency breakdown as a paper-style table
    /// (milliseconds). Stages with no observations render as `-`.
    pub fn table(&self) -> TableReport {
        let mut t = TableReport::new(
            "Per-stage latency breakdown (ms)",
            &["stage", "count", "p50", "p99", "p999", "mean", "max"],
        );
        for stage in Stage::ALL {
            let h = self.stage(stage);
            let ms = |v: Option<u64>| v.map_or(Cell::Na, |n| Cell::Float(nanos_to_millis(n)));
            t.row(vec![
                stage.name().into(),
                h.count().into(),
                ms(h.p50()),
                ms(h.p99()),
                ms(h.p999()),
                h.mean().map_or(Cell::Na, |m| Cell::Float(m / 1e6)),
                ms(h.max()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_stable_and_exhaustive() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }

    #[test]
    fn record_and_merge_by_stage() {
        let mut a = StageStats::new();
        let mut b = StageStats::new();
        a.record(Stage::FetchWait, 1_000);
        b.record(Stage::FetchWait, 3_000);
        b.record(Stage::Compute, 500);
        a.merge(&b);
        assert_eq!(a.stage(Stage::FetchWait).count(), 2);
        assert_eq!(a.stage(Stage::Compute).count(), 1);
        assert_eq!(a.stage(Stage::RouterQueue).count(), 0);
        assert_eq!(a.total_count(), 3);
        assert!(!a.is_empty());
        assert!(StageStats::new().is_empty());
    }

    #[test]
    fn encode_round_trips() {
        let mut s = StageStats::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            for k in 0..=i as u64 {
                s.record(*stage, 1_000 * (k + 1));
            }
        }
        let mut buf = BytesMut::new();
        s.encode_into(&mut buf);
        assert_eq!(buf.len(), s.encoded_len());
        let mut data = buf.freeze();
        let decoded = StageStats::decode_prefix(&mut data).unwrap();
        assert_eq!(decoded, s);
        assert!(!data.has_remaining());
    }

    #[test]
    fn table_has_one_row_per_stage() {
        let mut s = StageStats::new();
        s.record(Stage::DispatchRtt, 2_000_000);
        let t = s.table();
        assert_eq!(t.len(), STAGE_COUNT);
        let rendered = t.render();
        assert!(rendered.contains("dispatch_rtt"));
        assert!(rendered.contains("router_queue"));
        assert!(rendered.contains("p999"));
    }

    use bytes::Buf as _;
}
