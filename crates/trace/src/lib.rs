//! End-to-end query tracing and runtime telemetry for gRouting.
//!
//! The wire cluster (PR 6) has a fast data plane but, until this layer,
//! only end-of-run aggregate counters: nothing said *where* a query's
//! time went — router queue vs dispatch vs fetch vs compute — or what the
//! tail looked like. This crate is the observability layer the adaptive
//! features (overlap windows, hybrid prefetch policies, workload-aware
//! placement) feed on:
//!
//! * [`TraceLevel`] — the `GROUTING_TRACE=off|stats|spans` switch. `off`
//!   is byte-identical to an untraced build on the wire; `stats` records
//!   per-stage histograms and reactor telemetry; `spans` additionally
//!   keeps a bounded ring of per-query spans for debugging stuck
//!   pipelines.
//! * [`Stage`] / [`StageStats`] — the five pipeline stages every query
//!   crosses, each measured into a log-linear
//!   [`grouting_metrics::Histogram`] with `p50/p99/p999` extraction and a
//!   wire encoding, so the router can aggregate them and serve them
//!   mid-run.
//! * [`QueryTrace`] / [`QuerySpan`] / [`SpanRing`] — the per-query trace
//!   context: the processor-side span block that piggybacks on
//!   `Completion` frames, and the router-side assembled span.
//! * [`TelemetryCounters`] / [`ReactorStats`] — relaxed-atomic
//!   reactor/connection telemetry: poll-loop busy vs parked time, frames
//!   and bytes in/out, outstanding batch depth, buffer-pool reuse.
//! * [`TraceSnapshot`] — everything above in one mergeable, encodable
//!   bundle, carried next to `RunSnapshot` in `Metrics` frames and
//!   surfaced through `ClusterRun`/`LiveReport`.
//!
//! Tracing **observes**; it never steers. Routing decisions, cache
//! statistics, and prefetch accounting are identical at every level —
//! the `wire_agreement` suite pins that.

pub mod snapshot;
pub mod span;
pub mod stage;
pub mod telemetry;

pub use snapshot::TraceSnapshot;
pub use span::{span_ring_from_env, QuerySpan, QueryTrace, SpanRing, DEFAULT_SPAN_RING};
pub use stage::{Stage, StageStats, STAGE_COUNT};
pub use telemetry::{ReactorStats, TelemetryCounters};

/// How much observation the cluster performs, `GROUTING_TRACE`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// No tracing: frames, snapshots, and hot paths are byte-identical
    /// to a build without this layer.
    #[default]
    Off,
    /// Per-stage histograms plus reactor telemetry (cheap: a few clock
    /// reads per query and relaxed counter bumps per frame).
    Stats,
    /// Everything in `Stats`, plus per-level fetch/compute spans and a
    /// bounded in-memory ring of recent query spans.
    Spans,
}

impl TraceLevel {
    /// Reads `GROUTING_TRACE` (`off`, `stats`, `spans`, `spans:N`;
    /// default `off`). Unknown values warn through the logger and fall
    /// back to `off`.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_TRACE") {
            Ok(v) => match Self::parse(&v) {
                Some(level) => level,
                None => {
                    grouting_metrics::log_warn!(
                        "unknown GROUTING_TRACE value {v:?}; tracing stays off"
                    );
                    TraceLevel::Off
                }
            },
            Err(_) => TraceLevel::Off,
        }
    }

    /// Parses a `GROUTING_TRACE` spelling; `None` when unknown. The
    /// `spans:N` form also sets the router's span-ring capacity (see
    /// [`span_ring_from_env`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "stats" | "1" => Some(TraceLevel::Stats),
            "spans" | "2" => Some(TraceLevel::Spans),
            _ => match s.strip_prefix("spans:") {
                Some(n) if n.parse::<usize>().is_ok() => Some(TraceLevel::Spans),
                _ => None,
            },
        }
    }

    /// Whether any tracing is active.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Whether per-query spans (the ring, per-level breakdowns) are kept.
    pub fn spans(self) -> bool {
        self == TraceLevel::Spans
    }

    /// The lowercase spelling (`off`/`stats`/`spans`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Stats => "stats",
            TraceLevel::Spans => "spans",
        }
    }

    /// Wire tag for this level.
    pub fn as_u8(self) -> u8 {
        match self {
            TraceLevel::Off => 0,
            TraceLevel::Stats => 1,
            TraceLevel::Spans => 2,
        }
    }

    /// Decodes a wire tag.
    ///
    /// # Errors
    ///
    /// Returns an error message on an unknown tag.
    pub fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(TraceLevel::Off),
            1 => Ok(TraceLevel::Stats),
            2 => Ok(TraceLevel::Spans),
            other => Err(format!("unknown trace level tag {other}")),
        }
    }
}

impl std::fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_all_spellings() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("stats"), Some(TraceLevel::Stats));
        assert_eq!(TraceLevel::parse("spans"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("1"), Some(TraceLevel::Stats));
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert_eq!(TraceLevel::parse("spans:64"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("spans:0"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse("spans:"), None);
        assert_eq!(TraceLevel::parse("spans:lots"), None);
    }

    #[test]
    fn levels_are_ordered_and_tagged() {
        assert!(TraceLevel::Off < TraceLevel::Stats);
        assert!(TraceLevel::Stats < TraceLevel::Spans);
        for level in [TraceLevel::Off, TraceLevel::Stats, TraceLevel::Spans] {
            assert_eq!(TraceLevel::from_u8(level.as_u8()).unwrap(), level);
            assert!(!level.enabled() || level >= TraceLevel::Stats);
        }
        assert!(TraceLevel::from_u8(9).is_err());
        assert!(TraceLevel::Spans.spans());
        assert!(!TraceLevel::Stats.spans());
    }
}
