//! Per-query trace context: processor-side span blocks and the
//! router-side span ring.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;

/// Default capacity of the router's in-memory span ring.
pub const DEFAULT_SPAN_RING: usize = 256;

/// The span-ring capacity `GROUTING_TRACE` requests: `spans:N` gives
/// `N`, every other spelling (including plain `spans`) the default.
pub fn span_ring_from_env() -> usize {
    match std::env::var("GROUTING_TRACE") {
        Ok(v) => v
            .strip_prefix("spans:")
            .and_then(|n| n.parse().ok())
            .unwrap_or(DEFAULT_SPAN_RING),
        Err(_) => DEFAULT_SPAN_RING,
    }
}

/// The processor-measured portion of a query's span, carried back to the
/// router as the optional trace block on a `Completion` frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Time the query spent waiting on frontier fetches, summed across
    /// BFS levels (nanoseconds).
    pub fetch_wait_ns: u64,
    /// Time spent advancing the query between fetches, summed across
    /// resume calls (nanoseconds).
    pub compute_ns: u64,
    /// Fetch levels the query crossed (0 = served entirely from cache).
    pub levels: u32,
    /// Per-level `(fetch_wait, compute)` pairs, recorded only at
    /// [`crate::TraceLevel::Spans`]; empty at `stats`.
    pub level_spans: Vec<(u64, u64)>,
}

impl QueryTrace {
    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 8 + 4 + 4 + self.level_spans.len() * 16
    }

    /// Appends the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.fetch_wait_ns);
        buf.put_u64_le(self.compute_ns);
        buf.put_u32_le(self.levels);
        buf.put_u32_le(self.level_spans.len() as u32);
        for &(wait, compute) in &self.level_spans {
            buf.put_u64_le(wait);
            buf.put_u64_le(compute);
        }
    }

    /// Decodes one trace block from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < 8 + 8 + 4 + 4 {
            return Err(format!(
                "query trace header needs 24 bytes, have {}",
                data.remaining()
            ));
        }
        let fetch_wait_ns = data.get_u64_le();
        let compute_ns = data.get_u64_le();
        let levels = data.get_u32_le();
        let n = data.get_u32_le() as usize;
        if data.remaining() < n * 16 {
            return Err(format!(
                "query trace needs {} bytes for {n} level spans, have {}",
                n * 16,
                data.remaining()
            ));
        }
        let level_spans = (0..n)
            .map(|_| (data.get_u64_le(), data.get_u64_le()))
            .collect();
        Ok(Self {
            fetch_wait_ns,
            compute_ns,
            levels,
            level_spans,
        })
    }
}

/// One query's assembled end-to-end span, stamped by the router as the
/// completion comes back.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuerySpan {
    /// The query's submission sequence number.
    pub seq: u64,
    /// Processor that served it.
    pub processor: u32,
    /// Fetch levels crossed.
    pub levels: u32,
    /// Client submit → router dispatch (nanoseconds).
    pub queue_ns: u64,
    /// Router dispatch → completion back at the router.
    pub rtt_ns: u64,
    /// Processor-side fetch wait (from the [`QueryTrace`] block).
    pub fetch_wait_ns: u64,
    /// Processor-side compute time (from the [`QueryTrace`] block).
    pub compute_ns: u64,
    /// Processor completion stamp → completion reaching the client.
    pub completion_ns: u64,
}

impl QuerySpan {
    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 8 + 4 + 4 + 8 * 5;

    /// Appends the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.seq);
        buf.put_u32_le(self.processor);
        buf.put_u32_le(self.levels);
        buf.put_u64_le(self.queue_ns);
        buf.put_u64_le(self.rtt_ns);
        buf.put_u64_le(self.fetch_wait_ns);
        buf.put_u64_le(self.compute_ns);
        buf.put_u64_le(self.completion_ns);
    }

    /// Decodes one span from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < Self::ENCODED_LEN {
            return Err(format!(
                "query span needs {} bytes, have {}",
                Self::ENCODED_LEN,
                data.remaining()
            ));
        }
        Ok(Self {
            seq: data.get_u64_le(),
            processor: data.get_u32_le(),
            levels: data.get_u32_le(),
            queue_ns: data.get_u64_le(),
            rtt_ns: data.get_u64_le(),
            fetch_wait_ns: data.get_u64_le(),
            compute_ns: data.get_u64_le(),
            completion_ns: data.get_u64_le(),
        })
    }
}

/// A bounded ring of the most recent query spans — enough to see what a
/// stuck overlap pipeline was doing, cheap enough to leave on.
#[derive(Debug, Clone, Default)]
pub struct SpanRing {
    cap: usize,
    spans: VecDeque<QuerySpan>,
    dropped: u64,
}

impl SpanRing {
    /// A ring keeping the last `cap` spans (0 keeps none).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            spans: VecDeque::with_capacity(cap.min(DEFAULT_SPAN_RING)),
            dropped: 0,
        }
    }

    /// Appends a span, evicting the oldest past capacity. Evictions
    /// count as dropped spans; a zero-capacity ring is disabled, not
    /// overflowing, and counts nothing.
    pub fn push(&mut self, span: QuerySpan) {
        if self.cap == 0 {
            return;
        }
        if self.spans.len() == self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Spans evicted past capacity since the ring was created.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently retained, oldest first.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates retained spans, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &QuerySpan> {
        self.spans.iter()
    }

    /// Copies the retained spans out, oldest first.
    pub fn dump(&self) -> Vec<QuerySpan> {
        self.spans.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            fetch_wait_ns: 12_345,
            compute_ns: 6_789,
            levels: 3,
            level_spans: vec![(4_000, 2_000), (5_000, 2_500), (3_345, 2_289)],
        }
    }

    #[test]
    fn query_trace_round_trips() {
        for trace in [sample_trace(), QueryTrace::default()] {
            let mut buf = BytesMut::new();
            trace.encode_into(&mut buf);
            assert_eq!(buf.len(), trace.encoded_len());
            let mut data = buf.freeze();
            assert_eq!(QueryTrace::decode_prefix(&mut data).unwrap(), trace);
            assert!(!data.has_remaining());
        }
    }

    #[test]
    fn query_trace_rejects_truncation() {
        let mut buf = BytesMut::new();
        sample_trace().encode_into(&mut buf);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut data = bytes.slice(0..cut);
            assert!(QueryTrace::decode_prefix(&mut data).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn query_span_round_trips() {
        let span = QuerySpan {
            seq: 42,
            processor: 3,
            levels: 2,
            queue_ns: 100,
            rtt_ns: 5_000,
            fetch_wait_ns: 3_000,
            compute_ns: 1_500,
            completion_ns: 250,
        };
        let mut buf = BytesMut::new();
        span.encode_into(&mut buf);
        assert_eq!(buf.len(), QuerySpan::ENCODED_LEN);
        let mut data = buf.freeze();
        assert_eq!(QuerySpan::decode_prefix(&mut data).unwrap(), span);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let mut ring = SpanRing::new(3);
        for seq in 0..10u64 {
            ring.push(QuerySpan {
                seq,
                ..QuerySpan::default()
            });
        }
        assert_eq!(ring.len(), 3);
        let seqs: Vec<u64> = ring.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(ring.dump().len(), 3);
        assert_eq!(ring.dropped(), 7, "10 pushed, 3 retained");

        let mut empty = SpanRing::new(0);
        empty.push(QuerySpan::default());
        assert!(empty.is_empty());
        assert_eq!(empty.dropped(), 0, "disabled ring, not overflow");
    }
}
