//! The mergeable, encodable bundle of everything the trace layer saw.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::span::QuerySpan;
use crate::stage::StageStats;
use crate::telemetry::ReactorStats;
use crate::TraceLevel;

/// Everything the trace layer observed in one run (or one run-so-far,
/// when served mid-run by a `MetricsRequest`).
///
/// Travels on the wire as an optional section after the `RunSnapshot` in
/// `Metrics` frames: absent when tracing is off, which keeps the frame
/// bytes identical to an untraced deployment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// The level the run traced at.
    pub level: TraceLevel,
    /// Per-stage latency histograms, aggregated by the router.
    pub stages: StageStats,
    /// Reactor/connection telemetry totals.
    pub reactor: ReactorStats,
    /// The most recent query spans (bounded by the router's ring;
    /// empty below [`TraceLevel::Spans`]).
    pub spans: Vec<QuerySpan>,
    /// Spans evicted from the ring past its capacity — non-zero means
    /// `spans` is a suffix of the run, not the whole story (grow the
    /// ring with `GROUTING_TRACE=spans:N`).
    pub spans_dropped: u64,
}

impl TraceSnapshot {
    /// An empty snapshot at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Self {
            level,
            ..Self::default()
        }
    }

    /// Combines another snapshot into this one: histograms and telemetry
    /// merge, spans concatenate, and the level takes the more verbose of
    /// the two.
    pub fn merge(&mut self, other: &TraceSnapshot) {
        self.level = self.level.max(other.level);
        self.stages.merge(&other.stages);
        self.reactor.merge(&other.reactor);
        self.spans.extend_from_slice(&other.spans);
        self.spans_dropped += other.spans_dropped;
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + self.stages.encoded_len()
            + ReactorStats::ENCODED_LEN
            + 4
            + self.spans.len() * QuerySpan::ENCODED_LEN
            + 8
    }

    /// Appends the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(self.level.as_u8());
        self.stages.encode_into(buf);
        self.reactor.encode_into(buf);
        buf.put_u32_le(self.spans.len() as u32);
        for span in &self.spans {
            span.encode_into(buf);
        }
        buf.put_u64_le(self.spans_dropped);
    }

    /// Encodes to a standalone buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one snapshot from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated or invalid
    /// input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if !data.has_remaining() {
            return Err("trace snapshot needs a level byte".to_string());
        }
        let level = TraceLevel::from_u8(data.get_u8())?;
        let stages = StageStats::decode_prefix(data)?;
        let reactor = ReactorStats::decode_prefix(data)?;
        if data.remaining() < 4 {
            return Err("trace snapshot span count truncated".to_string());
        }
        let n = data.get_u32_le() as usize;
        if data.remaining() < n * QuerySpan::ENCODED_LEN {
            return Err(format!(
                "trace snapshot needs {} bytes for {n} spans, have {}",
                n * QuerySpan::ENCODED_LEN,
                data.remaining()
            ));
        }
        let spans = (0..n)
            .map(|_| QuerySpan::decode_prefix(data))
            .collect::<Result<Vec<_>, _>>()?;
        if data.remaining() < 8 {
            return Err("trace snapshot dropped-span count truncated".to_string());
        }
        let spans_dropped = data.get_u64_le();
        Ok(Self {
            level,
            stages,
            reactor,
            spans,
            spans_dropped,
        })
    }

    /// Decodes from the wire layout, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// See [`TraceSnapshot::decode_prefix`].
    pub fn decode(mut data: Bytes) -> Result<Self, String> {
        let snapshot = Self::decode_prefix(&mut data)?;
        if data.has_remaining() {
            return Err(format!(
                "{} trailing bytes after trace snapshot",
                data.remaining()
            ));
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Stage;

    fn sample() -> TraceSnapshot {
        let mut s = TraceSnapshot::new(TraceLevel::Spans);
        s.stages.record(Stage::RouterQueue, 1_000);
        s.stages.record(Stage::DispatchRtt, 50_000);
        s.stages.record(Stage::FetchWait, 30_000);
        s.stages.record(Stage::Compute, 20_000);
        s.stages.record(Stage::Completion, 2_000);
        s.reactor.frames_in = 12;
        s.reactor.bytes_in = 4_096;
        s.reactor.busy_ns = 77;
        s.spans.push(QuerySpan {
            seq: 1,
            processor: 0,
            levels: 2,
            queue_ns: 1_000,
            rtt_ns: 50_000,
            fetch_wait_ns: 30_000,
            compute_ns: 20_000,
            completion_ns: 2_000,
        });
        s.spans_dropped = 9;
        s
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.encoded_len());
        assert_eq!(TraceSnapshot::decode(bytes).unwrap(), s);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        for level in [TraceLevel::Off, TraceLevel::Stats, TraceLevel::Spans] {
            let s = TraceSnapshot::new(level);
            assert_eq!(TraceSnapshot::decode(s.encode()).unwrap(), s);
        }
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                TraceSnapshot::decode(bytes.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
        let mut raw = bytes.to_vec();
        raw.push(0);
        assert!(TraceSnapshot::decode(Bytes::from(raw)).is_err());
        assert!(
            TraceSnapshot::decode(Bytes::from(vec![9u8])).is_err(),
            "bad level tag"
        );
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = sample();
        let mut b = TraceSnapshot::new(TraceLevel::Stats);
        b.stages.record(Stage::Compute, 40_000);
        b.reactor.frames_in = 3;
        b.spans_dropped = 2;
        a.merge(&b);
        assert_eq!(a.level, TraceLevel::Spans, "more verbose level wins");
        assert_eq!(a.stages.stage(Stage::Compute).count(), 2);
        assert_eq!(a.reactor.frames_in, 15);
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.spans_dropped, 11);
    }
}
