//! Reactor and connection telemetry, sampled with relaxed atomics.
//!
//! One [`TelemetryCounters`] is shared (via `Arc`) by every reactor,
//! connection, and batch mux in a deployment; each bumps its counters
//! with relaxed ordering on the hot path (a handful of uncontended
//! atomic adds per frame — nothing the dispatch latency can see).
//! [`TelemetryCounters::snapshot`] folds the live values into a plain
//! [`ReactorStats`], which is what travels inside a
//! [`crate::TraceSnapshot`].

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Point-in-time reactor/connection telemetry totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorStats {
    /// Time poll loops spent doing work (decoding, dispatching,
    /// writing), in nanoseconds.
    pub busy_ns: u64,
    /// Time poll loops spent parked waiting for readiness.
    pub idle_ns: u64,
    /// Frames received across all connections.
    pub frames_in: u64,
    /// Frames sent across all connections.
    pub frames_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Frontier batches submitted through the batch mux.
    pub batches_submitted: u64,
    /// Peak outstanding batches across all mux connections.
    pub batch_depth_peak: u64,
    /// Receive buffers checked out of the buffer pools.
    pub pool_checkouts: u64,
    /// Checkouts served by reusing a reclaimed buffer.
    pub pool_reused: u64,
    /// Peak free buffers parked in the pools.
    pub pool_peak_free: u64,
}

impl ReactorStats {
    /// Fraction of observed loop time spent busy, in `[0, 1]`
    /// (0 when nothing was measured).
    pub fn busy_ratio(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    /// Fraction of pool checkouts served by reuse, in `[0, 1]`.
    pub fn pool_reuse_rate(&self) -> f64 {
        if self.pool_checkouts == 0 {
            0.0
        } else {
            self.pool_reused as f64 / self.pool_checkouts as f64
        }
    }

    /// Combines another deployment's totals into this one (sums, with
    /// peaks taking the max).
    pub fn merge(&mut self, other: &ReactorStats) {
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.batches_submitted += other.batches_submitted;
        self.batch_depth_peak = self.batch_depth_peak.max(other.batch_depth_peak);
        self.pool_checkouts += other.pool_checkouts;
        self.pool_reused += other.pool_reused;
        self.pool_peak_free = self.pool_peak_free.max(other.pool_peak_free);
    }

    /// Encoded size in bytes.
    pub const ENCODED_LEN: usize = 8 * 11;

    /// Appends the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        for v in [
            self.busy_ns,
            self.idle_ns,
            self.frames_in,
            self.frames_out,
            self.bytes_in,
            self.bytes_out,
            self.batches_submitted,
            self.batch_depth_peak,
            self.pool_checkouts,
            self.pool_reused,
            self.pool_peak_free,
        ] {
            buf.put_u64_le(v);
        }
    }

    /// Decodes one stats block from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < Self::ENCODED_LEN {
            return Err(format!(
                "reactor stats need {} bytes, have {}",
                Self::ENCODED_LEN,
                data.remaining()
            ));
        }
        Ok(Self {
            busy_ns: data.get_u64_le(),
            idle_ns: data.get_u64_le(),
            frames_in: data.get_u64_le(),
            frames_out: data.get_u64_le(),
            bytes_in: data.get_u64_le(),
            bytes_out: data.get_u64_le(),
            batches_submitted: data.get_u64_le(),
            batch_depth_peak: data.get_u64_le(),
            pool_checkouts: data.get_u64_le(),
            pool_reused: data.get_u64_le(),
            pool_peak_free: data.get_u64_le(),
        })
    }
}

/// Live telemetry counters, shared across a deployment's reactors.
///
/// All operations are relaxed: these are statistics, not
/// synchronisation. Counters only ever increase (peaks via `fetch_max`).
#[derive(Debug, Default)]
pub struct TelemetryCounters {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    batches_submitted: AtomicU64,
    batch_depth_peak: AtomicU64,
    pool_checkouts: AtomicU64,
    pool_reused: AtomicU64,
    pool_peak_free: AtomicU64,
}

impl TelemetryCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds poll-loop busy time.
    #[inline]
    pub fn add_busy_ns(&self, ns: u64) {
        self.busy_ns.fetch_add(ns, Relaxed);
    }

    /// Adds poll-loop parked time.
    #[inline]
    pub fn add_idle_ns(&self, ns: u64) {
        self.idle_ns.fetch_add(ns, Relaxed);
    }

    /// Counts one received frame of `bytes` payload bytes.
    #[inline]
    pub fn frame_in(&self, bytes: u64) {
        self.frames_in.fetch_add(1, Relaxed);
        self.bytes_in.fetch_add(bytes, Relaxed);
    }

    /// Counts one sent frame of `bytes` payload bytes.
    #[inline]
    pub fn frame_out(&self, bytes: u64) {
        self.frames_out.fetch_add(1, Relaxed);
        self.bytes_out.fetch_add(bytes, Relaxed);
    }

    /// Counts one submitted frontier batch at `outstanding` total
    /// outstanding batches (the post-submit depth).
    #[inline]
    pub fn batch_submitted(&self, outstanding: u64) {
        self.batches_submitted.fetch_add(1, Relaxed);
        self.batch_depth_peak.fetch_max(outstanding, Relaxed);
    }

    /// Folds a buffer pool's monotonic counter deltas and current free
    /// count in.
    #[inline]
    pub fn pool_sample(&self, checkout_delta: u64, reused_delta: u64, free_now: u64) {
        if checkout_delta > 0 {
            self.pool_checkouts.fetch_add(checkout_delta, Relaxed);
        }
        if reused_delta > 0 {
            self.pool_reused.fetch_add(reused_delta, Relaxed);
        }
        self.pool_peak_free.fetch_max(free_now, Relaxed);
    }

    /// The current totals as a plain value.
    pub fn snapshot(&self) -> ReactorStats {
        ReactorStats {
            busy_ns: self.busy_ns.load(Relaxed),
            idle_ns: self.idle_ns.load(Relaxed),
            frames_in: self.frames_in.load(Relaxed),
            frames_out: self.frames_out.load(Relaxed),
            bytes_in: self.bytes_in.load(Relaxed),
            bytes_out: self.bytes_out.load(Relaxed),
            batches_submitted: self.batches_submitted.load(Relaxed),
            batch_depth_peak: self.batch_depth_peak.load(Relaxed),
            pool_checkouts: self.pool_checkouts.load(Relaxed),
            pool_reused: self.pool_reused.load(Relaxed),
            pool_peak_free: self.pool_peak_free.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let t = TelemetryCounters::new();
        t.add_busy_ns(100);
        t.add_idle_ns(300);
        t.frame_in(64);
        t.frame_in(16);
        t.frame_out(32);
        t.batch_submitted(2);
        t.batch_submitted(5);
        t.batch_submitted(1);
        t.pool_sample(4, 3, 2);
        let s = t.snapshot();
        assert_eq!(s.busy_ns, 100);
        assert_eq!(s.idle_ns, 300);
        assert_eq!(s.frames_in, 2);
        assert_eq!(s.bytes_in, 80);
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.bytes_out, 32);
        assert_eq!(s.batches_submitted, 3);
        assert_eq!(s.batch_depth_peak, 5);
        assert_eq!(s.pool_checkouts, 4);
        assert_eq!(s.pool_reused, 3);
        assert_eq!(s.pool_peak_free, 2);
        assert!((s.busy_ratio() - 0.25).abs() < 1e-12);
        assert!((s.pool_reuse_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = ReactorStats::default();
        assert_eq!(s.busy_ratio(), 0.0);
        assert_eq!(s.pool_reuse_rate(), 0.0);
    }

    #[test]
    fn stats_round_trip_and_merge() {
        let a = ReactorStats {
            busy_ns: 1,
            idle_ns: 2,
            frames_in: 3,
            frames_out: 4,
            bytes_in: 5,
            bytes_out: 6,
            batches_submitted: 7,
            batch_depth_peak: 8,
            pool_checkouts: 9,
            pool_reused: 10,
            pool_peak_free: 11,
        };
        let mut buf = BytesMut::new();
        a.encode_into(&mut buf);
        assert_eq!(buf.len(), ReactorStats::ENCODED_LEN);
        let mut data = buf.freeze();
        assert_eq!(ReactorStats::decode_prefix(&mut data).unwrap(), a);

        let mut merged = a;
        merged.merge(&ReactorStats {
            batch_depth_peak: 3,
            pool_peak_free: 40,
            frames_in: 1,
            ..ReactorStats::default()
        });
        assert_eq!(merged.frames_in, 4);
        assert_eq!(merged.batch_depth_peak, 8, "peak takes the max");
        assert_eq!(merged.pool_peak_free, 40);
    }
}
