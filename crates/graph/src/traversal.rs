//! Traversal primitives over the in-memory graph.
//!
//! These run over the full [`CsrGraph`] and are used by preprocessing
//! (landmark BFS) and by tests as ground truth. Query-time traversal over
//! the *distributed* storage lives in `grouting-query`, which fetches
//! adjacency values through a cache; both must agree, which the integration
//! tests assert.

use std::collections::VecDeque;

use crate::csr::CsrGraph;
use crate::ids::NodeId;

/// Distance value meaning "unreached" in BFS distance maps.
pub const UNREACHED: u32 = u32::MAX;

/// Edge direction selector for traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges only.
    Out,
    /// Follow in-edges only.
    In,
    /// Follow both directions (the bi-directed view of §3.4.1).
    Both,
}

fn for_each_neighbor(g: &CsrGraph, v: NodeId, dir: Direction, mut f: impl FnMut(NodeId)) {
    match dir {
        Direction::Out => g.out_neighbors(v).for_each(&mut f),
        Direction::In => g.in_neighbors(v).for_each(&mut f),
        Direction::Both => {
            g.out_neighbors(v).for_each(&mut f);
            g.in_neighbors(v).for_each(&mut f);
        }
    }
}

/// Full single-source BFS distance map from `source`.
///
/// Returns a vector of hop distances with [`UNREACHED`] for unreachable
/// nodes. Used by landmark preprocessing (one BFS per landmark, §3.4.1).
pub fn bfs_distances(g: &CsrGraph, source: NodeId, dir: Direction) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.node_count()];
    if !g.contains(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for_each_neighbor(g, v, dir, |w| {
            if dist[w.index()] == UNREACHED {
                dist[w.index()] = dv + 1;
                queue.push_back(w);
            }
        });
    }
    dist
}

/// BFS limited to `max_hops`, returning `(node, distance)` pairs in
/// discovery order (the source itself is included at distance 0).
pub fn bfs_within(
    g: &CsrGraph,
    source: NodeId,
    max_hops: u32,
    dir: Direction,
) -> Vec<(NodeId, u32)> {
    let mut found = Vec::new();
    if !g.contains(source) {
        return found;
    }
    let mut dist = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source, 0u32);
    queue.push_back(source);
    found.push((source, 0));
    while let Some(v) = queue.pop_front() {
        let dv = dist[&v];
        if dv == max_hops {
            continue;
        }
        for_each_neighbor(g, v, dir, |w| {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(dv + 1);
                found.push((w, dv + 1));
                queue.push_back(w);
            }
        });
    }
    found
}

/// The set of nodes within `h` hops of `source` (excluding the source),
/// i.e. `N_h(q)` from the paper's Eq. 8.
pub fn h_hop_neighborhood(g: &CsrGraph, source: NodeId, h: u32, dir: Direction) -> Vec<NodeId> {
    bfs_within(g, source, h, dir)
        .into_iter()
        .filter(|&(_, d)| d > 0)
        .map(|(v, _)| v)
        .collect()
}

/// Whether `target` is reachable from `source` within `h` hops following
/// out-edges, computed by *bidirectional* BFS (forward from the source,
/// backward from the target), per the paper's §2.2 query (3).
pub fn reachable_within(g: &CsrGraph, source: NodeId, target: NodeId, h: u32) -> bool {
    if !g.contains(source) || !g.contains(target) {
        return false;
    }
    if source == target {
        return true;
    }
    if h == 0 {
        return false;
    }
    // Split the hop budget between the two frontiers.
    let fwd_budget = h / 2 + h % 2;
    let bwd_budget = h / 2;
    let fwd = bfs_within(g, source, fwd_budget, Direction::Out);
    let bwd = bfs_within(g, target, bwd_budget, Direction::In);
    let mut best_fwd = std::collections::HashMap::new();
    for (v, d) in fwd {
        best_fwd.insert(v, d);
    }
    for (v, d) in bwd {
        if let Some(&df) = best_fwd.get(&v) {
            if df + d <= h {
                return true;
            }
        }
    }
    false
}

/// Exact shortest-path hop distance via forward BFS, `None` if unreachable.
pub fn hop_distance(g: &CsrGraph, source: NodeId, target: NodeId, dir: Direction) -> Option<u32> {
    if !g.contains(source) || !g.contains(target) {
        return None;
    }
    if source == target {
        return Some(0);
    }
    let mut dist = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    dist.insert(source, 0u32);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[&v];
        let mut hit = None;
        for_each_neighbor(g, v, dir, |w| {
            if w == target {
                hit = Some(dv + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(dv + 1);
                queue.push_back(w);
            }
        });
        if let Some(d) = hit {
            return Some(d);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// A directed path 0 -> 1 -> 2 -> 3 -> 4 plus a chord 0 -> 3.
    fn path_with_chord() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..4 {
            b.add_edge(n(i), n(i + 1));
        }
        b.add_edge(n(0), n(3));
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_directed() {
        let g = path_with_chord();
        let d = bfs_distances(&g, n(0), Direction::Out);
        assert_eq!(d, vec![0, 1, 2, 1, 2]);
        // Backwards from node 4.
        let db = bfs_distances(&g, n(4), Direction::In);
        assert_eq!(db, vec![2, 3, 2, 1, 0]);
    }

    #[test]
    fn bfs_distances_bidirected() {
        let g = path_with_chord();
        // From node 4 treating edges as bi-directed: 3 is adjacent; 2 and 0
        // (via the chord) are two hops; 1 is three hops (through 0 or 2).
        let d = bfs_distances(&g, n(4), Direction::Both);
        assert_eq!(d, vec![2, 3, 2, 1, 0]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        let d = bfs_distances(&g, n(0), Direction::Out);
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn h_hop_neighborhood_counts() {
        let g = path_with_chord();
        // Bi-directed 1-hop of node 3: {2, 4, 0}.
        let n1 = h_hop_neighborhood(&g, n(3), 1, Direction::Both);
        assert_eq!(n1.len(), 3);
        // 2-hop adds node 1.
        let n2 = h_hop_neighborhood(&g, n(3), 2, Direction::Both);
        assert_eq!(n2.len(), 4);
        // Source never appears.
        assert!(!n2.contains(&n(3)));
    }

    #[test]
    fn reachability_bidirectional() {
        let g = path_with_chord();
        assert!(reachable_within(&g, n(0), n(4), 2)); // via chord 0->3->4
        assert!(!reachable_within(&g, n(0), n(4), 1));
        assert!(reachable_within(&g, n(0), n(0), 0));
        assert!(!reachable_within(&g, n(4), n(0), 4)); // directed, no back path
    }

    #[test]
    fn hop_distance_matches_bfs() {
        let g = path_with_chord();
        assert_eq!(hop_distance(&g, n(0), n(4), Direction::Out), Some(2));
        assert_eq!(hop_distance(&g, n(0), n(0), Direction::Out), Some(0));
        assert_eq!(hop_distance(&g, n(4), n(0), Direction::Out), None);
    }

    #[test]
    fn bfs_within_respects_budget() {
        let g = path_with_chord();
        let hits = bfs_within(&g, n(0), 1, Direction::Out);
        let nodes: Vec<NodeId> = hits.iter().map(|&(v, _)| v).collect();
        assert_eq!(nodes, vec![n(0), n(1), n(3)]);
    }

    proptest::proptest! {
        /// Bidirectional reachability must agree with plain forward BFS.
        #[test]
        fn prop_bidi_reach_matches_forward_bfs(
            edges in proptest::collection::vec((0u32..24, 0u32..24), 1..120),
            src in 0u32..24,
            dst in 0u32..24,
            h in 0u32..6,
        ) {
            let mut b = GraphBuilder::with_nodes(24);
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let via_bidi = reachable_within(&g, n(src), n(dst), h);
            let via_bfs = match hop_distance(&g, n(src), n(dst), Direction::Out) {
                Some(d) => d <= h,
                None => false,
            };
            proptest::prop_assert_eq!(via_bidi, via_bfs);
        }

        /// Triangle inequality of BFS distances through any intermediate node.
        #[test]
        fn prop_bfs_triangle_inequality(
            edges in proptest::collection::vec((0u32..20, 0u32..20), 1..100),
            a in 0u32..20,
        ) {
            let mut b = GraphBuilder::with_nodes(20);
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let da = bfs_distances(&g, n(a), Direction::Both);
            for v in g.nodes() {
                for w in g.all_neighbors(v) {
                    let dv = da[v.index()];
                    let dw = da[w.index()];
                    if dv != UNREACHED {
                        proptest::prop_assert!(dw != UNREACHED && dw <= dv + 1);
                    }
                }
            }
        }
    }
}
