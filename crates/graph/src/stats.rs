//! Summary statistics over graphs (the shape of the paper's Table 1).

use crate::csr::CsrGraph;
use crate::traversal::{bfs_within, Direction};
use crate::NodeId;

/// Dataset-level statistics mirroring Table 1 plus degree-skew measures.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Maximum bi-directed degree.
    pub max_degree: usize,
    /// Mean bi-directed degree.
    pub mean_degree: f64,
    /// Approximate adjacency-list size on disk in bytes (Table 1 column).
    pub adjacency_bytes: usize,
    /// Fraction of nodes with zero edges.
    pub isolated_fraction: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for v in g.nodes() {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        let mean_degree = if n == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / n as f64
        };
        Self {
            nodes: n,
            edges: g.edge_count(),
            max_degree,
            mean_degree,
            adjacency_bytes: g.topology_bytes(),
            isolated_fraction: if n == 0 {
                0.0
            } else {
                isolated as f64 / n as f64
            },
        }
    }
}

/// Degree distribution as (degree, node-count) pairs sorted by degree.
pub fn degree_distribution(g: &CsrGraph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in g.nodes() {
        *counts.entry(g.degree(v)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

/// Estimates the power-law exponent of the degree distribution by a simple
/// maximum-likelihood fit over degrees `>= d_min` (Clauset-style, without
/// the d_min search).
///
/// Returns `None` when fewer than two nodes qualify. Real graphs in the
/// paper are power-law ("due to power-law degree distribution of real-world
/// graphs, it is difficult to get high-quality partitions"); tests use this
/// to check the generators produce the intended skew.
pub fn powerlaw_alpha_mle(g: &CsrGraph, d_min: usize) -> Option<f64> {
    let d_min = d_min.max(1);
    let mut sum_log = 0.0f64;
    let mut count = 0usize;
    for v in g.nodes() {
        let d = g.degree(v);
        if d >= d_min {
            sum_log += (d as f64 / (d_min as f64 - 0.5)).ln();
            count += 1;
        }
    }
    if count < 2 || sum_log <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / sum_log)
}

/// Mean number of nodes within `h` hops over a sample of `sample` sources
/// (deterministic stride sampling). Matches the paper's reporting of
/// "average 2-hop neighborhood size".
pub fn mean_h_hop_size(g: &CsrGraph, h: u32, sample: usize) -> f64 {
    let n = g.node_count();
    if n == 0 || sample == 0 {
        return 0.0;
    }
    let stride = (n / sample.min(n)).max(1);
    let mut total = 0usize;
    let mut taken = 0usize;
    let mut i = 0usize;
    while i < n && taken < sample {
        let v = NodeId::new(i as u32);
        total += bfs_within(g, v, h, Direction::Both).len() - 1;
        taken += 1;
        i += stride;
    }
    total as f64 / taken.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn star(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 1..=k {
            b.add_edge(n(0), n(i));
        }
        b.build().unwrap()
    }

    #[test]
    fn stats_of_star() {
        let g = star(5);
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 5);
        assert_eq!(s.max_degree, 5);
        assert!((s.mean_degree - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.isolated_fraction, 0.0);
        assert!(s.adjacency_bytes > 0);
    }

    #[test]
    fn stats_counts_isolated() {
        let g = GraphBuilder::with_nodes(4).build().unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.isolated_fraction, 1.0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.max_degree, 0);
    }

    #[test]
    fn degree_distribution_of_star() {
        let g = star(4);
        let dist = degree_distribution(&g);
        assert_eq!(dist, vec![(1, 4), (4, 1)]);
    }

    #[test]
    fn mean_h_hop_size_star() {
        let g = star(5);
        // Every leaf reaches hub at hop 1 and the other 4 leaves at hop 2;
        // hub reaches all 5 leaves at hop 1.
        let m1 = mean_h_hop_size(&g, 1, 6);
        assert!(m1 > 0.0);
        let m2 = mean_h_hop_size(&g, 2, 6);
        assert!(m2 >= m1);
        assert!((m2 - 5.0).abs() < 1e-9, "m2={m2}");
    }

    #[test]
    fn alpha_mle_none_for_tiny() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        // Both nodes have degree 1 -> sum_log = ln(1/0.5) * 2 > 0, count = 2.
        let alpha = powerlaw_alpha_mle(&g, 1);
        assert!(alpha.is_some());
        let empty = GraphBuilder::new().build().unwrap();
        assert_eq!(powerlaw_alpha_mle(&empty, 1), None);
    }
}
