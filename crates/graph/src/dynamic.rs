//! Mutable adjacency-map graph for the paper's update model.
//!
//! §3.4 describes how the routing preprocessors cope with *graph updates*:
//! node additions, edge additions/deletions, node deletions (treated as
//! deleting all incident edges). This graph supports those operations and
//! records them in an update log so preprocessing layers can incrementally
//! refresh the affected neighbourhoods.

use std::collections::BTreeSet;
use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::ids::NodeId;
use crate::Result;

/// A single topology mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// A node was added.
    AddNode(NodeId),
    /// A directed edge was added.
    AddEdge(NodeId, NodeId),
    /// A directed edge was removed.
    RemoveEdge(NodeId, NodeId),
    /// A node and all incident edges were removed.
    RemoveNode(NodeId),
}

/// A mutable directed graph over sparse node ids.
#[derive(Debug, Default, Clone)]
pub struct DynamicGraph {
    out: HashMap<NodeId, BTreeSet<NodeId>>,
    inc: HashMap<NodeId, BTreeSet<NodeId>>,
    edge_count: usize,
    log: Vec<GraphUpdate>,
}

impl DynamicGraph {
    /// Creates an empty dynamic graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dynamic graph initialised from an immutable CSR graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut d = Self::new();
        for v in g.nodes() {
            d.out.entry(v).or_default();
            d.inc.entry(v).or_default();
        }
        for v in g.nodes() {
            for w in g.out_neighbors(v) {
                d.insert_edge_silent(v, w);
            }
        }
        d.log.clear();
        d
    }

    fn insert_edge_silent(&mut self, src: NodeId, dst: NodeId) -> bool {
        let fresh = self.out.entry(src).or_default().insert(dst);
        self.inc.entry(dst).or_default().insert(src);
        if fresh {
            self.edge_count += 1;
        }
        fresh
    }

    /// Adds a node with no edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if the node already exists.
    pub fn add_node(&mut self, node: NodeId) -> Result<()> {
        if self.out.contains_key(&node) {
            return Err(GraphError::DuplicateNode(node));
        }
        self.out.insert(node, BTreeSet::new());
        self.inc.insert(node, BTreeSet::new());
        self.log.push(GraphUpdate::AddNode(node));
        Ok(())
    }

    /// Adds a directed edge, implicitly creating missing endpoints.
    ///
    /// Returns `true` if the edge was new.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) -> bool {
        self.out.entry(src).or_default();
        self.inc.entry(src).or_default();
        self.out.entry(dst).or_default();
        self.inc.entry(dst).or_default();
        let fresh = self.insert_edge_silent(src, dst);
        if fresh {
            self.log.push(GraphUpdate::AddEdge(src, dst));
        }
        fresh
    }

    /// Removes a directed edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint is absent.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId) -> Result<bool> {
        if !self.out.contains_key(&src) {
            return Err(GraphError::UnknownNode(src));
        }
        if !self.out.contains_key(&dst) {
            return Err(GraphError::UnknownNode(dst));
        }
        let removed = self.out.get_mut(&src).is_some_and(|s| s.remove(&dst));
        if removed {
            self.inc.get_mut(&dst).map(|s| s.remove(&src));
            self.edge_count -= 1;
            self.log.push(GraphUpdate::RemoveEdge(src, dst));
        }
        Ok(removed)
    }

    /// Removes a node and all incident edges (the paper handles node
    /// deletion as multiple edge deletions).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if the node is absent.
    pub fn remove_node(&mut self, node: NodeId) -> Result<()> {
        let out = self
            .out
            .remove(&node)
            .ok_or(GraphError::UnknownNode(node))?;
        let inc = self.inc.remove(&node).unwrap_or_default();
        for w in &out {
            self.inc.get_mut(w).map(|s| s.remove(&node));
        }
        for w in &inc {
            self.out.get_mut(w).map(|s| s.remove(&node));
        }
        // Out-edges (including a self-loop, which lives in both sets but is
        // one directed edge) plus in-edges from *other* nodes.
        self.edge_count -= out.len();
        self.edge_count -= inc.iter().filter(|w| **w != node).count();
        self.log.push(GraphUpdate::RemoveNode(node));
        Ok(())
    }

    /// Whether the node exists.
    pub fn contains(&self, node: NodeId) -> bool {
        self.out.contains_key(&node)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbours of `node` (sorted), empty if absent.
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out
            .get(&node)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// In-neighbours of `node` (sorted), empty if absent.
    pub fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inc
            .get(&node)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// The update log since construction (or last [`Self::take_log`]).
    pub fn log(&self) -> &[GraphUpdate] {
        &self.log
    }

    /// Drains and returns the update log.
    pub fn take_log(&mut self) -> Vec<GraphUpdate> {
        std::mem::take(&mut self.log)
    }

    /// Nodes whose preprocessing is stale after `update`: the endpoints and
    /// their neighbours up to `hops` hops, per the paper's incremental
    /// maintenance rule ("for these two end-nodes and their neighbors up to
    /// a certain number of hops, we recompute their distances").
    pub fn affected_nodes(&self, update: GraphUpdate, hops: u32) -> Vec<NodeId> {
        let seeds: Vec<NodeId> = match update {
            GraphUpdate::AddNode(n) | GraphUpdate::RemoveNode(n) => vec![n],
            GraphUpdate::AddEdge(s, d) | GraphUpdate::RemoveEdge(s, d) => vec![s, d],
        };
        let mut seen: BTreeSet<NodeId> = seeds.iter().copied().collect();
        let mut frontier = seeds;
        for _ in 0..hops {
            let mut next = Vec::new();
            for v in frontier {
                for w in self.out_neighbors(v).chain(self.in_neighbors(v)) {
                    if seen.insert(w) {
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        seen.into_iter().collect()
    }

    /// Freezes into an immutable CSR graph (node ids are preserved; the CSR
    /// covers `0..=max_id`).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError::TooManyNodes`] from the builder.
    pub fn to_csr(&self) -> Result<CsrGraph> {
        let mut b = GraphBuilder::new();
        let max_id = self.out.keys().map(|n| n.index() + 1).max().unwrap_or(0);
        b.ensure_nodes(max_id);
        for (&v, outs) in &self.out {
            for &w in outs {
                b.add_edge(v, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = DynamicGraph::new();
        assert!(g.add_edge(n(0), n(1)));
        assert!(!g.add_edge(n(0), n(1)));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
        assert!(g.remove_edge(n(0), n(1)).unwrap());
        assert!(!g.remove_edge(n(0), n(1)).unwrap());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut g = DynamicGraph::new();
        g.add_node(n(3)).unwrap();
        assert_eq!(g.add_node(n(3)), Err(GraphError::DuplicateNode(n(3))));
    }

    #[test]
    fn remove_node_drops_incident_edges() {
        let mut g = DynamicGraph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(1));
        assert_eq!(g.edge_count(), 3);
        g.remove_node(n(1)).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 2);
        assert!(g.out_neighbors(n(0)).next().is_none());
        assert!(g.in_neighbors(n(2)).next().is_none());
    }

    #[test]
    fn remove_node_with_self_loop() {
        let mut g = DynamicGraph::new();
        g.add_edge(n(0), n(0));
        g.add_edge(n(0), n(1));
        assert_eq!(g.edge_count(), 2);
        g.remove_node(n(0)).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn update_log_records() {
        let mut g = DynamicGraph::new();
        g.add_node(n(5)).unwrap();
        g.add_edge(n(5), n(6));
        g.remove_edge(n(5), n(6)).unwrap();
        assert_eq!(
            g.log(),
            &[
                GraphUpdate::AddNode(n(5)),
                GraphUpdate::AddEdge(n(5), n(6)),
                GraphUpdate::RemoveEdge(n(5), n(6)),
            ]
        );
        let drained = g.take_log();
        assert_eq!(drained.len(), 3);
        assert!(g.log().is_empty());
    }

    #[test]
    fn affected_nodes_two_hops() {
        // Path 0 - 1 - 2 - 3 - 4 (directed forward).
        let mut g = DynamicGraph::new();
        for i in 0..4 {
            g.add_edge(n(i), n(i + 1));
        }
        let affected = g.affected_nodes(GraphUpdate::AddEdge(n(2), n(2)), 2);
        // Seeds {2}, 1 hop {1, 3}, 2 hops {0, 4}.
        assert_eq!(affected, vec![n(0), n(1), n(2), n(3), n(4)]);
        let affected1 = g.affected_nodes(GraphUpdate::AddEdge(n(0), n(1)), 1);
        assert_eq!(affected1, vec![n(0), n(1), n(2)]);
    }

    #[test]
    fn round_trip_through_csr() {
        let mut g = DynamicGraph::new();
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let csr = g.to_csr().unwrap();
        let back = DynamicGraph::from_csr(&csr);
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 2);
        assert!(back.log().is_empty());
        assert_eq!(back.out_neighbors(n(1)).collect::<Vec<_>>(), vec![n(2)]);
    }

    #[test]
    fn unknown_node_errors() {
        let mut g = DynamicGraph::new();
        g.add_edge(n(0), n(1));
        assert!(matches!(
            g.remove_edge(n(0), n(9)),
            Err(GraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.remove_node(n(9)),
            Err(GraphError::UnknownNode(_))
        ));
    }

    proptest::proptest! {
        /// edge_count stays consistent with the actual adjacency sets under
        /// arbitrary interleavings of add/remove operations.
        #[test]
        fn prop_edge_count_consistent(ops in proptest::collection::vec((0u8..3, 0u32..12, 0u32..12), 0..200)) {
            let mut g = DynamicGraph::new();
            for (op, a, b) in ops {
                match op {
                    0 => { g.add_edge(n(a), n(b)); }
                    1 => { let _ = g.remove_edge(n(a), n(b)); }
                    _ => { let _ = g.remove_node(n(a)); }
                }
            }
            let real: usize = g.out.values().map(|s| s.len()).sum();
            proptest::prop_assert_eq!(real, g.edge_count());
            // in/out views agree
            let real_in: usize = g.inc.values().map(|s| s.len()).sum();
            proptest::prop_assert_eq!(real_in, g.edge_count());
        }
    }
}
