//! Compact identifier newtypes for nodes and labels.

use serde::{Deserialize, Serialize};

/// Identifier of a node in the graph.
///
/// Stored as `u32`: the paper's largest graph (WebGraph) has ~106 M nodes,
/// and this reproduction scales graphs down, so 32 bits are ample while
/// halving adjacency-array memory versus `u64`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Self(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Interned identifier of a node label (entity attribute, §2.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct NodeLabelId(pub u16);

impl NodeLabelId {
    /// Creates a label id from a raw index.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned identifier of an edge label (relationship type, §2.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct EdgeLabelId(pub u16);

impl EdgeLabelId {
    /// Creates a label id from a raw index.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Label used when the graph carries no edge labels.
    pub const UNLABELED: EdgeLabelId = EdgeLabelId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let n = NodeId::new(42);
        assert_eq!(n.index(), 42);
        assert_eq!(n.raw(), 42);
        assert_eq!(u32::from(n), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeLabelId::new(0) < NodeLabelId::new(3));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<NodeLabelId>(), 2);
        assert_eq!(std::mem::size_of::<EdgeLabelId>(), 2);
    }
}
