//! Binary codec for per-node adjacency values stored in the storage tier.
//!
//! The storage tier is a key-value store: the key is a node id and the value
//! is the node's adjacency record — its out-neighbours and in-neighbours
//! (plus labels when present), exactly the layout of the paper's Figure 3.
//! This module defines that record and its compact wire encoding, built on
//! [`bytes`].
//!
//! Wire format (little endian):
//!
//! ```text
//! u8  flags        (bit 0: has edge labels, bit 1: has node label)
//! u16 node label   (if flag bit 1)
//! u32 out_count
//! u32 in_count
//! u32 × out_count  out-neighbour ids
//! u32 × in_count   in-neighbour ids
//! u16 × out_count  out-edge labels (if flag bit 0)
//! u16 × in_count   in-edge labels  (if flag bit 0)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::ids::{EdgeLabelId, NodeId, NodeLabelId};
use crate::Result;

const FLAG_EDGE_LABELS: u8 = 0b01;
const FLAG_NODE_LABEL: u8 = 0b10;

/// A node's complete adjacency record — the storage-tier value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdjacencyRecord {
    /// Out-neighbour node ids.
    pub out: Vec<NodeId>,
    /// In-neighbour node ids.
    pub inc: Vec<NodeId>,
    /// Out-edge labels, parallel to `out`; empty when unlabelled.
    pub out_labels: Vec<EdgeLabelId>,
    /// In-edge labels, parallel to `inc`; empty when unlabelled.
    pub in_labels: Vec<EdgeLabelId>,
    /// The node's own label, if any.
    pub node_label: Option<NodeLabelId>,
}

impl AdjacencyRecord {
    /// Extracts the record for `node` from an in-memory graph.
    pub fn from_graph(g: &CsrGraph, node: NodeId) -> Result<Self> {
        g.check(node)?;
        let (out, out_labels): (Vec<NodeId>, Vec<EdgeLabelId>) = g.out_edges(node).unzip();
        let (inc, in_labels): (Vec<NodeId>, Vec<EdgeLabelId>) = g.in_edges(node).unzip();
        let labeled = out_labels
            .iter()
            .chain(&in_labels)
            .any(|l| *l != EdgeLabelId::UNLABELED);
        Ok(Self {
            out,
            inc,
            out_labels: if labeled { out_labels } else { Vec::new() },
            in_labels: if labeled { in_labels } else { Vec::new() },
            node_label: g.node_label(node),
        })
    }

    /// All neighbours in the bi-directed view (out then in).
    pub fn all_neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.out.iter().chain(self.inc.iter()).copied()
    }

    /// Bi-directed degree.
    pub fn degree(&self) -> usize {
        self.out.len() + self.inc.len()
    }

    /// Encoded size in bytes (matches `encode().len()` exactly).
    pub fn encoded_len(&self) -> usize {
        let labeled = !self.out_labels.is_empty() || !self.in_labels.is_empty();
        1 + if self.node_label.is_some() { 2 } else { 0 }
            + 8
            + 4 * (self.out.len() + self.inc.len())
            + if labeled {
                2 * (self.out.len() + self.inc.len())
            } else {
                0
            }
    }

    /// Encodes to the wire format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        let labeled = !self.out_labels.is_empty() || !self.in_labels.is_empty();
        let mut flags = 0u8;
        if labeled {
            flags |= FLAG_EDGE_LABELS;
        }
        if self.node_label.is_some() {
            flags |= FLAG_NODE_LABEL;
        }
        buf.put_u8(flags);
        if let Some(l) = self.node_label {
            buf.put_u16_le(l.0);
        }
        buf.put_u32_le(self.out.len() as u32);
        buf.put_u32_le(self.inc.len() as u32);
        for v in &self.out {
            buf.put_u32_le(v.raw());
        }
        for v in &self.inc {
            buf.put_u32_le(v.raw());
        }
        if labeled {
            debug_assert_eq!(self.out_labels.len(), self.out.len());
            debug_assert_eq!(self.in_labels.len(), self.inc.len());
            for l in &self.out_labels {
                buf.put_u16_le(l.0);
            }
            for l in &self.in_labels {
                buf.put_u16_le(l.0);
            }
        }
        buf.freeze()
    }

    /// Decodes from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Codec`] on truncated or malformed input.
    pub fn decode(mut data: Bytes) -> Result<Self> {
        fn need(data: &Bytes, n: usize) -> Result<()> {
            if data.remaining() < n {
                Err(GraphError::Codec(format!(
                    "need {n} bytes, have {}",
                    data.remaining()
                )))
            } else {
                Ok(())
            }
        }
        need(&data, 1)?;
        let flags = data.get_u8();
        if flags & !(FLAG_EDGE_LABELS | FLAG_NODE_LABEL) != 0 {
            return Err(GraphError::Codec(format!("unknown flags {flags:#x}")));
        }
        let node_label = if flags & FLAG_NODE_LABEL != 0 {
            need(&data, 2)?;
            Some(NodeLabelId::new(data.get_u16_le()))
        } else {
            None
        };
        need(&data, 8)?;
        let out_count = data.get_u32_le() as usize;
        let in_count = data.get_u32_le() as usize;
        need(&data, 4 * (out_count + in_count))?;
        let mut out = Vec::with_capacity(out_count);
        for _ in 0..out_count {
            out.push(NodeId::new(data.get_u32_le()));
        }
        let mut inc = Vec::with_capacity(in_count);
        for _ in 0..in_count {
            inc.push(NodeId::new(data.get_u32_le()));
        }
        let (out_labels, in_labels) = if flags & FLAG_EDGE_LABELS != 0 {
            need(&data, 2 * (out_count + in_count))?;
            let mut ol = Vec::with_capacity(out_count);
            for _ in 0..out_count {
                ol.push(EdgeLabelId::new(data.get_u16_le()));
            }
            let mut il = Vec::with_capacity(in_count);
            for _ in 0..in_count {
                il.push(EdgeLabelId::new(data.get_u16_le()));
            }
            (ol, il)
        } else {
            (Vec::new(), Vec::new())
        };
        if data.has_remaining() {
            return Err(GraphError::Codec(format!(
                "{} trailing bytes",
                data.remaining()
            )));
        }
        Ok(Self {
            out,
            inc,
            out_labels,
            in_labels,
            node_label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn round_trip_unlabeled() {
        let rec = AdjacencyRecord {
            out: vec![n(1), n(2)],
            inc: vec![n(3)],
            ..Default::default()
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.encoded_len());
        let back = AdjacencyRecord::decode(bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.degree(), 3);
    }

    #[test]
    fn round_trip_labeled() {
        let rec = AdjacencyRecord {
            out: vec![n(1)],
            inc: vec![n(2), n(3)],
            out_labels: vec![EdgeLabelId::new(4)],
            in_labels: vec![EdgeLabelId::new(5), EdgeLabelId::new(6)],
            node_label: Some(NodeLabelId::new(9)),
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.encoded_len());
        let back = AdjacencyRecord::decode(bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn decode_rejects_truncation() {
        let rec = AdjacencyRecord {
            out: vec![n(1), n(2)],
            ..Default::default()
        };
        let bytes = rec.encode();
        for cut in 0..bytes.len() {
            let r = AdjacencyRecord::decode(bytes.slice(0..cut));
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let rec = AdjacencyRecord::default();
        let mut raw = rec.encode().to_vec();
        raw.push(0xFF);
        assert!(AdjacencyRecord::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn decode_rejects_unknown_flags() {
        let raw = vec![0xF0u8, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(AdjacencyRecord::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn from_graph_extracts_both_directions() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(2), n(0));
        let g = b.build().unwrap();
        let rec = AdjacencyRecord::from_graph(&g, n(0)).unwrap();
        assert_eq!(rec.out, vec![n(1)]);
        assert_eq!(rec.inc, vec![n(2)]);
        assert!(rec.out_labels.is_empty());
        assert!(AdjacencyRecord::from_graph(&g, n(9)).is_err());
    }

    #[test]
    fn all_neighbors_order() {
        let rec = AdjacencyRecord {
            out: vec![n(5)],
            inc: vec![n(7), n(8)],
            ..Default::default()
        };
        let all: Vec<NodeId> = rec.all_neighbors().collect();
        assert_eq!(all, vec![n(5), n(7), n(8)]);
    }

    proptest::proptest! {
        #[test]
        fn prop_codec_round_trip(
            out in proptest::collection::vec(0u32..1_000_000, 0..50),
            inc in proptest::collection::vec(0u32..1_000_000, 0..50),
            labeled in proptest::bool::ANY,
            node_label in proptest::option::of(0u16..100),
        ) {
            let rec = AdjacencyRecord {
                out: out.iter().map(|&v| n(v)).collect(),
                inc: inc.iter().map(|&v| n(v)).collect(),
                out_labels: if labeled { out.iter().map(|&v| EdgeLabelId::new((v % 7) as u16)).collect() } else { Vec::new() },
                in_labels: if labeled { inc.iter().map(|&v| EdgeLabelId::new((v % 5) as u16)).collect() } else { Vec::new() },
                node_label: node_label.map(NodeLabelId::new),
            };
            let bytes = rec.encode();
            proptest::prop_assert_eq!(bytes.len(), rec.encoded_len());
            let back = AdjacencyRecord::decode(bytes).unwrap();
            proptest::prop_assert_eq!(back, rec);
        }
    }
}
