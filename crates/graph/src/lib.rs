//! Graph data model for gRouting.
//!
//! The paper (§2.1) models a heterogeneous network as a labelled directed
//! graph `G = (V, E, L)` stored as an adjacency list in which **both**
//! incoming and outgoing edges are kept per node — incoming edges make
//! backward BFS (and hence bidirectional reachability search) possible.
//!
//! This crate provides:
//!
//! * [`ids`] — compact node/label identifier newtypes;
//! * [`builder`] — an edge-list accumulator that deduplicates and sorts;
//! * [`csr`] — the immutable compressed-sparse-row graph with both edge
//!   directions, the workhorse for preprocessing and query execution;
//! * [`labels`] — interned label tables for nodes and edges;
//! * [`traversal`] — BFS distance maps, k-hop neighbourhoods, and a
//!   bidirectional reachability check over the in-memory graph;
//! * [`dynamic`] — a mutable adjacency-map graph supporting the paper's
//!   update model (§3.4, "dealing with graph updates");
//! * [`stats`] — degree distributions and summary statistics (Table 1);
//! * [`codec`] — the compact binary encoding of per-node adjacency values
//!   used as storage-tier values.

pub mod builder;
pub mod codec;
pub mod csr;
pub mod dynamic;
pub mod error;
pub mod ids;
pub mod labels;
pub mod serialize;
pub mod stats;
pub mod subgraph;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use dynamic::DynamicGraph;
pub use error::GraphError;
pub use ids::{EdgeLabelId, NodeId, NodeLabelId};
pub use labels::LabelTable;

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
