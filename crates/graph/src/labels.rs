//! Interned label tables for nodes and edges.
//!
//! Labels in the paper's data model (§2.1) come from a finite alphabet; we
//! intern the strings once and refer to them by dense `u16` ids everywhere
//! else, so per-node and per-edge label storage is two bytes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// An interning table mapping label strings to dense ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelTable {
    names: Vec<String>,
    index: HashMap<String, u16>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct labels are interned; the
    /// paper's alphabets are tiny (relationship types, attribute values).
    pub fn intern(&mut self, name: &str) -> u16 {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = u16::try_from(self.names.len()).expect("label alphabet exceeds u16 space");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned label.
    pub fn get(&self, name: &str) -> Option<u16> {
        self.index.get(name).copied()
    }

    /// Resolves an id back to its string.
    pub fn name(&self, id: u16) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("founded");
        let b = t.intern("founded");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_are_dense() {
        let mut t = LabelTable::new();
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("b"), 1);
        assert_eq!(t.intern("c"), 2);
        assert_eq!(t.name(1), Some("b"));
        assert_eq!(t.get("c"), Some(2));
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.name(99), None);
    }

    #[test]
    fn empty_table() {
        let t = LabelTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
