//! Compact binary (de)serialisation of graphs.
//!
//! Benches and applications regenerate multi-million-edge graphs on every
//! run; persisting them (and reloading with a single pass) makes experiment
//! iteration cheap. The format stores only the forward adjacency plus
//! labels — the reverse direction is rebuilt on load, which keeps files
//! small and makes corrupt input structurally impossible to smuggle past
//! the builder.
//!
//! Layout (little endian):
//!
//! ```text
//! [u32 magic "GRTG"] [u8 version=1] [u8 flags]
//! [u64 node_count] [u64 edge_count]
//! u64 × (node_count + 1)   out-offsets
//! u32 × edge_count         out-targets
//! u16 × edge_count         out-edge labels   (flag bit 0)
//! u16 × node_count         node labels       (flag bit 1)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::ids::{EdgeLabelId, NodeId, NodeLabelId};
use crate::Result;

const MAGIC: u32 = 0x4754_5247; // "GRTG" little-endian
const VERSION: u8 = 1;
const FLAG_EDGE_LABELS: u8 = 0b01;
const FLAG_NODE_LABELS: u8 = 0b10;

/// Serialises a graph to the binary format.
pub fn write_graph(g: &CsrGraph) -> Bytes {
    let n = g.node_count();
    let m = g.edge_count();
    let edge_labeled = g
        .nodes()
        .flat_map(|v| g.out_edges(v))
        .any(|(_, l)| l != EdgeLabelId::UNLABELED);
    let node_labeled = g.has_node_labels();

    let mut flags = 0u8;
    if edge_labeled {
        flags |= FLAG_EDGE_LABELS;
    }
    if node_labeled {
        flags |= FLAG_NODE_LABELS;
    }

    let mut buf = BytesMut::with_capacity(22 + 8 * (n + 1) + 4 * m + 2 * m + 2 * n);
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(flags);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);

    let mut offset = 0u64;
    buf.put_u64_le(0);
    for v in g.nodes() {
        offset += g.out_degree(v) as u64;
        buf.put_u64_le(offset);
    }
    for v in g.nodes() {
        for &t in g.out_slice(v) {
            buf.put_u32_le(t);
        }
    }
    if edge_labeled {
        for v in g.nodes() {
            for (_, l) in g.out_edges(v) {
                buf.put_u16_le(l.0);
            }
        }
    }
    if node_labeled {
        for v in g.nodes() {
            buf.put_u16_le(g.node_label(v).unwrap_or_default().0);
        }
    }
    buf.freeze()
}

/// Deserialises a graph, rebuilding the reverse adjacency.
///
/// # Errors
///
/// Returns [`GraphError::Codec`] on malformed input (bad magic/version,
/// truncation, inconsistent offsets, out-of-range targets).
pub fn read_graph(mut data: Bytes) -> Result<CsrGraph> {
    fn need(data: &Bytes, bytes: usize, what: &str) -> Result<()> {
        if data.remaining() < bytes {
            Err(GraphError::Codec(format!(
                "truncated {what}: need {bytes} bytes, have {}",
                data.remaining()
            )))
        } else {
            Ok(())
        }
    }

    need(&data, 22, "header")?;
    let magic = data.get_u32_le();
    if magic != MAGIC {
        return Err(GraphError::Codec(format!("bad magic {magic:#010x}")));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(GraphError::Codec(format!("unsupported version {version}")));
    }
    let flags = data.get_u8();
    if flags & !(FLAG_EDGE_LABELS | FLAG_NODE_LABELS) != 0 {
        return Err(GraphError::Codec(format!("unknown flags {flags:#x}")));
    }
    let n = data.get_u64_le() as usize;
    let m = data.get_u64_le() as usize;
    if n > u32::MAX as usize {
        return Err(GraphError::Codec(format!("{n} nodes exceed id space")));
    }

    need(&data, 8 * (n + 1), "offsets")?;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(data.get_u64_le());
    }
    if offsets[0] != 0 || offsets[n] as usize != m {
        return Err(GraphError::Codec("offset envelope mismatch".into()));
    }
    for w in offsets.windows(2) {
        if w[1] < w[0] {
            return Err(GraphError::Codec("non-monotone offsets".into()));
        }
    }

    need(&data, 4 * m, "targets")?;
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let t = data.get_u32_le();
        if t as usize >= n {
            return Err(GraphError::Codec(format!("target {t} out of range")));
        }
        targets.push(t);
    }

    let edge_labels: Option<Vec<u16>> = if flags & FLAG_EDGE_LABELS != 0 {
        need(&data, 2 * m, "edge labels")?;
        Some((0..m).map(|_| data.get_u16_le()).collect())
    } else {
        None
    };
    let node_labels: Option<Vec<u16>> = if flags & FLAG_NODE_LABELS != 0 {
        need(&data, 2 * n, "node labels")?;
        Some((0..n).map(|_| data.get_u16_le()).collect())
    } else {
        None
    };
    if data.has_remaining() {
        return Err(GraphError::Codec(format!(
            "{} trailing bytes",
            data.remaining()
        )));
    }

    let mut b = GraphBuilder::with_nodes(n);
    b.reserve_edges(m);
    for v in 0..n {
        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
        for e in lo..hi {
            let label = edge_labels
                .as_ref()
                .map(|l| EdgeLabelId::new(l[e]))
                .unwrap_or(EdgeLabelId::UNLABELED);
            b.add_labeled_edge(NodeId::new(v as u32), NodeId::new(targets[e]), label);
        }
    }
    if let Some(nl) = node_labels {
        for (v, l) in nl.into_iter().enumerate() {
            b.set_node_label(NodeId::new(v as u32), NodeLabelId::new(l));
        }
    }
    b.build()
}

/// Writes the graph to a file.
///
/// # Errors
///
/// Returns the I/O error message wrapped as [`GraphError::Codec`].
pub fn save_to(g: &CsrGraph, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, write_graph(g)).map_err(|e| GraphError::Codec(format!("write: {e}")))
}

/// Reads a graph from a file.
///
/// # Errors
///
/// Returns I/O or format errors as [`GraphError::Codec`].
pub fn load_from(path: &std::path::Path) -> Result<CsrGraph> {
    let data = std::fs::read(path).map_err(|e| GraphError::Codec(format!("read: {e}")))?;
    read_graph(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample_graph(labeled: bool) -> CsrGraph {
        let mut b = GraphBuilder::with_nodes(6);
        b.add_edge(n(0), n(1));
        b.add_edge(n(1), n(2));
        b.add_edge(n(2), n(0));
        b.add_edge(n(4), n(5));
        if labeled {
            b.add_labeled_edge(n(3), n(4), EdgeLabelId::new(7));
            b.set_node_label(n(0), NodeLabelId::new(3));
            b.set_node_label(n(5), NodeLabelId::new(4));
        }
        b.build().unwrap()
    }

    fn assert_same(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            assert_eq!(a.out_slice(v), b.out_slice(v));
            assert_eq!(a.in_slice(v), b.in_slice(v));
            assert_eq!(a.node_label(v), b.node_label(v));
            assert_eq!(
                a.out_edges(v).collect::<Vec<_>>(),
                b.out_edges(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn round_trip_unlabeled() {
        let g = sample_graph(false);
        let back = read_graph(write_graph(&g)).unwrap();
        assert_same(&g, &back);
    }

    #[test]
    fn round_trip_labeled() {
        let g = sample_graph(true);
        let back = read_graph(write_graph(&g)).unwrap();
        assert_same(&g, &back);
    }

    #[test]
    fn round_trip_empty() {
        let g = GraphBuilder::new().build().unwrap();
        let back = read_graph(write_graph(&g)).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = write_graph(&sample_graph(false)).to_vec();
        raw[0] ^= 0xFF;
        assert!(matches!(
            read_graph(Bytes::from(raw)),
            Err(GraphError::Codec(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = write_graph(&sample_graph(false)).to_vec();
        raw[4] = 99;
        assert!(read_graph(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let raw = write_graph(&sample_graph(true));
        for cut in 0..raw.len() {
            assert!(
                read_graph(raw.slice(0..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = write_graph(&sample_graph(false)).to_vec();
        raw.push(0);
        assert!(read_graph(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let g = sample_graph(false);
        let mut raw = write_graph(&g).to_vec();
        // Targets start after header (22) + offsets (8 * 7); overwrite the
        // first one with an id past the node count.
        let target_at = 22 + 8 * 7;
        raw[target_at..target_at + 4].copy_from_slice(&999u32.to_le_bytes());
        assert!(read_graph(Bytes::from(raw)).is_err());
    }

    #[test]
    fn file_round_trip() {
        let g = sample_graph(true);
        let path =
            std::env::temp_dir().join(format!("grouting-serialize-{}.bin", std::process::id()));
        save_to(&g, &path).unwrap();
        let back = load_from(&path).unwrap();
        assert_same(&g, &back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_error() {
        assert!(load_from(std::path::Path::new("/nonexistent/graph.bin")).is_err());
    }

    proptest::proptest! {
        /// Any random graph round-trips exactly.
        #[test]
        fn prop_round_trip(
            edges in proptest::collection::vec((0u32..40, 0u32..40, 0u16..4), 0..200),
            labels in proptest::collection::vec(0u16..6, 0..40),
        ) {
            let mut b = GraphBuilder::with_nodes(40);
            for (s, d, l) in &edges {
                b.add_labeled_edge(n(*s), n(*d), EdgeLabelId::new(*l));
            }
            for (v, l) in labels.iter().enumerate() {
                b.set_node_label(n(v as u32), NodeLabelId::new(*l));
            }
            let g = b.build().unwrap();
            let back = read_graph(write_graph(&g)).unwrap();
            assert_same(&g, &back);
        }

        /// Arbitrary bytes never panic the reader.
        #[test]
        fn prop_reader_never_panics(data in proptest::collection::vec(proptest::num::u8::ANY, 0..256)) {
            let _ = read_graph(Bytes::from(data));
        }
    }
}
