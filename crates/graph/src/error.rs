//! Error type for graph construction and access.

use crate::ids::NodeId;

/// Errors produced by graph construction, mutation, and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        node_count: usize,
    },
    /// An edge referenced a node that does not exist (dynamic graphs).
    UnknownNode(NodeId),
    /// A duplicate node insertion was attempted.
    DuplicateNode(NodeId),
    /// Adjacency value bytes failed to decode.
    Codec(String),
    /// The graph would exceed the 32-bit node-id space.
    TooManyNodes(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (graph has {node_count} nodes)")
            }
            GraphError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GraphError::DuplicateNode(n) => write!(f, "duplicate node {n}"),
            GraphError::Codec(msg) => write!(f, "adjacency codec error: {msg}"),
            GraphError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u32 node-id space")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 5,
        };
        assert!(e.to_string().contains("n9"));
        assert!(e.to_string().contains("5 nodes"));
        assert!(GraphError::UnknownNode(NodeId::new(1))
            .to_string()
            .contains("n1"));
        assert!(GraphError::Codec("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(GraphError::TooManyNodes(1));
    }
}
