//! Immutable compressed-sparse-row graph with both edge directions.

use crate::error::GraphError;
use crate::ids::{EdgeLabelId, NodeId, NodeLabelId};
use crate::Result;

/// An immutable directed graph in CSR form, storing out- and in-adjacency.
///
/// Per the paper's storage model (§2.1) every node's value holds both its
/// out-neighbours and in-neighbours; the smart routing algorithms then treat
/// the graph as *bi-directed* (§3.4.1), which [`CsrGraph::all_neighbors`]
/// exposes directly.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    n: usize,
    out_offsets: Vec<u64>,
    out_targets: Vec<u32>,
    out_labels: Vec<EdgeLabelId>,
    in_offsets: Vec<u64>,
    in_sources: Vec<u32>,
    in_labels: Vec<EdgeLabelId>,
    /// Empty when the graph carries no node labels.
    node_labels: Vec<NodeLabelId>,
}

impl CsrGraph {
    /// Assembles a graph from raw CSR arrays (used by [`crate::GraphBuilder`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        out_offsets: Vec<u64>,
        out_targets: Vec<u32>,
        out_labels: Vec<EdgeLabelId>,
        in_offsets: Vec<u64>,
        in_sources: Vec<u32>,
        in_labels: Vec<EdgeLabelId>,
        node_labels: Vec<NodeLabelId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_labels.len());
        debug_assert_eq!(in_sources.len(), in_labels.len());
        Self {
            n,
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
            node_labels,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether `node` is a valid id in this graph.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        node.index() < self.n
    }

    /// Validates a node id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] for ids past the node count.
    pub fn check(&self, node: NodeId) -> Result<()> {
        if self.contains(node) {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node,
                node_count: self.n,
            })
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n as u32).map(NodeId::new)
    }

    #[inline]
    fn out_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize
    }

    #[inline]
    fn in_range(&self, node: NodeId) -> std::ops::Range<usize> {
        let i = node.index();
        self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_range(node).len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_range(node).len()
    }

    /// Total degree (in + out) — the degree in the bi-directed view.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Out-neighbour slice of `node` as raw ids (sorted ascending).
    #[inline]
    pub fn out_slice(&self, node: NodeId) -> &[u32] {
        &self.out_targets[self.out_range(node)]
    }

    /// In-neighbour slice of `node` as raw ids (sorted ascending).
    #[inline]
    pub fn in_slice(&self, node: NodeId) -> &[u32] {
        &self.in_sources[self.in_range(node)]
    }

    /// Iterator over out-neighbours.
    pub fn out_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_slice(node).iter().copied().map(NodeId::new)
    }

    /// Iterator over in-neighbours.
    pub fn in_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_slice(node).iter().copied().map(NodeId::new)
    }

    /// Iterator over the bi-directed neighbourhood (out then in, may repeat
    /// a node reachable both ways).
    pub fn all_neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_neighbors(node).chain(self.in_neighbors(node))
    }

    /// Out-edges of `node` with labels.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeLabelId)> + '_ {
        let r = self.out_range(node);
        self.out_targets[r.clone()]
            .iter()
            .zip(&self.out_labels[r])
            .map(|(&t, &l)| (NodeId::new(t), l))
    }

    /// In-edges of `node` with labels.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeLabelId)> + '_ {
        let r = self.in_range(node);
        self.in_sources[r.clone()]
            .iter()
            .zip(&self.in_labels[r])
            .map(|(&s, &l)| (NodeId::new(s), l))
    }

    /// Whether the directed edge `src -> dst` exists (binary search).
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.out_slice(src).binary_search(&dst.raw()).is_ok()
    }

    /// The node's label, `None` if the graph is unlabelled.
    pub fn node_label(&self, node: NodeId) -> Option<NodeLabelId> {
        self.node_labels.get(node.index()).copied()
    }

    /// Whether the graph stores node labels.
    pub fn has_node_labels(&self) -> bool {
        !self.node_labels.is_empty()
    }

    /// Nodes sorted by descending bi-directed degree (ties by id).
    ///
    /// Landmark selection (§3.4.1) starts from the highest-degree nodes.
    pub fn nodes_by_degree_desc(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes().collect();
        ids.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v.raw()));
        ids
    }

    /// Approximate resident size of the topology in bytes.
    ///
    /// Used to report Table 3-style storage comparisons.
    pub fn topology_bytes(&self) -> usize {
        self.out_offsets.len() * 8
            + self.out_targets.len() * 4
            + self.out_labels.len() * 2
            + self.in_offsets.len() * 8
            + self.in_sources.len() * 4
            + self.in_labels.len() * 2
            + self.node_labels.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Builds the small knowledge-graph example of the paper's Figure 3:
    /// Jerry Yang --founded--> Yahoo!, etc.
    fn figure3_graph() -> CsrGraph {
        // 0 = Jerry Yang, 1 = Yahoo!, 2 = Stanford, 3 = Sunnyvale, 4 = California
        let mut b = GraphBuilder::new();
        b.add_labeled_edge(n(0), n(1), EdgeLabelId::new(1)); // founded (F)
        b.add_labeled_edge(n(0), n(2), EdgeLabelId::new(2)); // education (G)
        b.add_labeled_edge(n(0), n(3), EdgeLabelId::new(3)); // places lived (L)
        b.add_labeled_edge(n(1), n(3), EdgeLabelId::new(4)); // headquarters in (H)
        b.add_labeled_edge(n(1), n(4), EdgeLabelId::new(5)); // place founded (P)
        b.add_labeled_edge(n(3), n(4), EdgeLabelId::new(6)); // in state
        b.build().unwrap()
    }

    #[test]
    fn figure3_shape() {
        let g = figure3_graph();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.out_degree(n(0)), 3);
        assert_eq!(g.in_degree(n(0)), 0);
        // Yahoo! (1): out = {Sunnyvale, California}, in = {Jerry Yang}.
        assert_eq!(g.out_degree(n(1)), 2);
        assert_eq!(g.in_degree(n(1)), 1);
        assert_eq!(g.degree(n(1)), 3);
    }

    #[test]
    fn bidirected_neighbors_union() {
        let g = figure3_graph();
        let all: Vec<NodeId> = g.all_neighbors(n(1)).collect();
        assert_eq!(all, vec![n(3), n(4), n(0)]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = figure3_graph();
        assert!(g.has_edge(n(0), n(1)));
        assert!(!g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(4), n(0)));
    }

    #[test]
    fn labeled_edges_round_trip() {
        let g = figure3_graph();
        let edges: Vec<(NodeId, EdgeLabelId)> = g.out_edges(n(0)).collect();
        assert_eq!(
            edges,
            vec![
                (n(1), EdgeLabelId::new(1)),
                (n(2), EdgeLabelId::new(2)),
                (n(3), EdgeLabelId::new(3)),
            ]
        );
        let inv: Vec<(NodeId, EdgeLabelId)> = g.in_edges(n(4)).collect();
        assert_eq!(
            inv,
            vec![(n(1), EdgeLabelId::new(5)), (n(3), EdgeLabelId::new(6))]
        );
    }

    #[test]
    fn check_validates_range() {
        let g = figure3_graph();
        assert!(g.check(n(4)).is_ok());
        assert!(matches!(
            g.check(n(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn degree_ordering() {
        let g = figure3_graph();
        let order = g.nodes_by_degree_desc();
        // Degrees: 0 -> 3, 1 -> 3, 2 -> 1, 3 -> 3, 4 -> 2. Ties by id.
        assert_eq!(order[0], n(0));
        assert_eq!(order[1], n(1));
        assert_eq!(order[2], n(3));
        assert_eq!(order[3], n(4));
        assert_eq!(order[4], n(2));
    }

    #[test]
    fn topology_bytes_positive() {
        let g = figure3_graph();
        assert!(g.topology_bytes() > 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_in_out_edge_counts_match(edges in proptest::collection::vec((0u32..50, 0u32..50), 0..300)) {
            let mut b = GraphBuilder::new();
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
            let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
            proptest::prop_assert_eq!(out_sum, g.edge_count());
            proptest::prop_assert_eq!(in_sum, g.edge_count());
        }

        #[test]
        fn prop_every_out_edge_has_in_edge(edges in proptest::collection::vec((0u32..30, 0u32..30), 1..200)) {
            let mut b = GraphBuilder::new();
            for (s, d) in &edges {
                b.add_edge(n(*s), n(*d));
            }
            let g = b.build().unwrap();
            for v in g.nodes() {
                for w in g.out_neighbors(v) {
                    proptest::prop_assert!(g.in_neighbors(w).any(|x| x == v));
                }
            }
        }
    }
}
