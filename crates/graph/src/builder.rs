//! Edge-list accumulator that produces an immutable [`CsrGraph`].

use crate::csr::CsrGraph;
use crate::error::GraphError;
use crate::ids::{EdgeLabelId, NodeId, NodeLabelId};
use crate::Result;

/// Accumulates directed, optionally labelled edges and node labels, then
/// builds a compressed-sparse-row graph with both edge directions.
///
/// Duplicate `(src, dst, label)` triples are removed at build time; the node
/// count is the maximum of the declared count and the highest endpoint seen.
///
/// # Examples
///
/// ```
/// use grouting_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(NodeId::new(0), NodeId::new(1));
/// b.add_edge(NodeId::new(1), NodeId::new(2));
/// let g = b.build().unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32, EdgeLabelId)>,
    node_labels: Vec<(u32, NodeLabelId)>,
    min_nodes: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that pre-declares at least `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            min_nodes: n,
            ..Self::default()
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn reserve_edges(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Declares that the graph has at least `n` nodes (isolated nodes allowed).
    pub fn ensure_nodes(&mut self, n: usize) {
        self.min_nodes = self.min_nodes.max(n);
    }

    /// Adds an unlabelled directed edge.
    #[inline]
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId) {
        self.add_labeled_edge(src, dst, EdgeLabelId::UNLABELED);
    }

    /// Adds a directed edge carrying an edge label.
    #[inline]
    pub fn add_labeled_edge(&mut self, src: NodeId, dst: NodeId, label: EdgeLabelId) {
        self.edges.push((src.raw(), dst.raw(), label));
    }

    /// Assigns a label to a node (last assignment wins).
    pub fn set_node_label(&mut self, node: NodeId, label: NodeLabelId) {
        self.node_labels.push((node.raw(), label));
    }

    /// Number of edges accumulated so far (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph, sorting and deduplicating edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyNodes`] if the node count exceeds the
    /// `u32` id space.
    pub fn build(mut self) -> Result<CsrGraph> {
        let max_endpoint = self
            .edges
            .iter()
            .map(|&(s, d, _)| s.max(d) as usize + 1)
            .chain(self.node_labels.iter().map(|&(n, _)| n as usize + 1))
            .max()
            .unwrap_or(0);
        let n = self.min_nodes.max(max_endpoint);
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(n));
        }

        // Sort by (src, dst, label) and drop exact duplicates.
        self.edges.sort_unstable();
        self.edges.dedup();

        let m = self.edges.len();
        let mut out_offsets = vec![0u64; n + 1];
        for &(s, _, _) in &self.edges {
            out_offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0u32; m];
        let mut out_labels = vec![EdgeLabelId::UNLABELED; m];
        {
            let mut cursor = out_offsets.clone();
            for &(s, d, l) in &self.edges {
                let at = cursor[s as usize] as usize;
                out_targets[at] = d;
                out_labels[at] = l;
                cursor[s as usize] += 1;
            }
        }

        // Reverse direction: count in-degrees and scatter.
        let mut in_offsets = vec![0u64; n + 1];
        for &(_, d, _) in &self.edges {
            in_offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0u32; m];
        let mut in_labels = vec![EdgeLabelId::UNLABELED; m];
        {
            let mut cursor = in_offsets.clone();
            for &(s, d, l) in &self.edges {
                let at = cursor[d as usize] as usize;
                in_sources[at] = s;
                in_labels[at] = l;
                cursor[d as usize] += 1;
            }
        }
        // In-lists come out sorted by source because the edge list is sorted
        // by (src, dst): scattering preserves the source order per target.

        let mut node_labels =
            vec![NodeLabelId::default(); if self.node_labels.is_empty() { 0 } else { n }];
        for &(node, label) in &self.node_labels {
            node_labels[node as usize] = label;
        }

        Ok(CsrGraph::from_parts(
            n,
            out_offsets,
            out_targets,
            out_labels,
            in_offsets,
            in_sources,
            in_labels,
            node_labels,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn builds_isolated_nodes() {
        let g = GraphBuilder::with_nodes(5).build().unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(n(4)), 0);
    }

    #[test]
    fn deduplicates_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(0), n(1));
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_edges() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge(n(0), n(1), EdgeLabelId::new(1));
        b.add_labeled_edge(n(0), n(1), EdgeLabelId::new(2));
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn in_and_out_lists_agree() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(2), n(1));
        b.add_edge(n(1), n(0));
        let g = b.build().unwrap();
        assert_eq!(g.out_neighbors(n(0)).collect::<Vec<_>>(), vec![n(1)]);
        assert_eq!(g.in_neighbors(n(1)).collect::<Vec<_>>(), vec![n(0), n(2)]);
        assert_eq!(g.in_neighbors(n(0)).collect::<Vec<_>>(), vec![n(1)]);
    }

    #[test]
    fn node_labels_stored() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.set_node_label(n(1), NodeLabelId::new(7));
        let g = b.build().unwrap();
        assert_eq!(g.node_label(n(1)), Some(NodeLabelId::new(7)));
        assert_eq!(g.node_label(n(0)), Some(NodeLabelId::new(0)));
    }

    #[test]
    fn unlabeled_graph_has_no_label_storage() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        assert_eq!(g.node_label(n(0)), None);
    }
}
