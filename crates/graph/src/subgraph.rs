//! Induced-subgraph extraction.
//!
//! §4.5's graph-update robustness experiment preprocesses "a reduced
//! subgraph of the original dataset … the subgraph induced by these
//! selected nodes" while queries run over the complete graph. The induced
//! subgraph keeps the full id space (unselected nodes become isolated) so
//! preprocessing tables stay index-compatible with the full graph.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::NodeId;

/// Returns the subgraph induced by the nodes for which `keep` is true,
/// preserving node ids (dropped nodes become isolated).
pub fn induced_subgraph(g: &CsrGraph, keep: impl Fn(NodeId) -> bool) -> CsrGraph {
    let mut b = GraphBuilder::with_nodes(g.node_count());
    for v in g.nodes() {
        if !keep(v) {
            continue;
        }
        for w in g.out_neighbors(v) {
            if keep(w) {
                b.add_edge(v, w);
            }
        }
    }
    b.build().expect("same id space as input")
}

/// Deterministically selects ~`fraction` of nodes by hashing ids, returning
/// the keep mask (used for the 20 %–100 % preprocessing sweeps).
pub fn fraction_mask(g: &CsrGraph, fraction: f64, seed: u64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let threshold = (fraction * u32::MAX as f64) as u32;
    g.nodes()
        .map(|v| {
            // SplitMix-style mix of the node id with the seed.
            let mut x = v.raw() as u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            (x as u32) <= threshold
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn keeps_ids_and_drops_edges() {
        let g = ring(10);
        let sub = induced_subgraph(&g, |v| v.raw() < 5);
        assert_eq!(sub.node_count(), 10);
        // Edges 0->1..3->4 survive; 4->5, 9->0 drop.
        assert_eq!(sub.edge_count(), 4);
        assert!(sub.has_edge(n(0), n(1)));
        assert!(!sub.has_edge(n(4), n(5)));
        assert_eq!(sub.degree(n(7)), 0);
    }

    #[test]
    fn full_keep_is_identity() {
        let g = ring(8);
        let sub = induced_subgraph(&g, |_| true);
        assert_eq!(sub.edge_count(), g.edge_count());
    }

    #[test]
    fn fraction_mask_is_proportional_and_stable() {
        let g = ring(10_000);
        let mask = fraction_mask(&g, 0.3, 7);
        let kept = mask.iter().filter(|&&k| k).count();
        assert!((2_500..3_500).contains(&kept), "kept {kept}");
        assert_eq!(mask, fraction_mask(&g, 0.3, 7));
        let all = fraction_mask(&g, 1.0, 7);
        assert!(all.iter().filter(|&&k| k).count() >= 9_990);
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn mask_validates_fraction() {
        let g = ring(4);
        let _ = fraction_mask(&g, 1.5, 0);
    }
}
