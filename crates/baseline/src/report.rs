//! Measurements from a baseline-engine run.

use grouting_metrics::Histogram;

/// The metrics a baseline run reports (matching [`crate::bsp`] and
/// [`crate::gas`] against `grouting-sim`'s numbers for Figure 7).
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Per-query latency distribution (nanoseconds).
    pub latency: Histogram,
    /// Virtual makespan of the run.
    pub makespan_ns: u64,
    /// Total synchronisation rounds executed (supersteps / GAS iterations).
    pub rounds: u64,
    /// Messages exchanged across machines.
    pub messages: u64,
    /// Wall-clock time spent partitioning the graph, in nanoseconds
    /// (SEDGE's "expensive partitioning" cost, reported alongside Figure 7).
    pub partition_ns: u64,
}

impl BaselineReport {
    /// Mean per-query latency in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        self.latency.mean().unwrap_or(0.0) / 1e6
    }

    /// Queries per second over the makespan.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        self.latency.count() as f64 / (self.makespan_ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut h = Histogram::new();
        h.record(10_000_000u64);
        h.record(30_000_000u64);
        let r = BaselineReport {
            latency: h,
            makespan_ns: 40_000_000,
            rounds: 4,
            messages: 100,
            partition_ns: 1_000_000,
        };
        assert!((r.mean_response_ms() - 20.0).abs() < 1e-9);
        assert!((r.throughput_qps() - 50.0).abs() < 1e-9);
    }
}
