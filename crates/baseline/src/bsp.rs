//! Pregel/Giraph-style BSP engine (the SEDGE stand-in).
//!
//! Vertex-centric, bulk-synchronous: queries execute as a sequence of
//! supersteps separated by global barriers. At superstep `k` every active
//! node is processed by the worker owning its partition; discovered
//! neighbours owned by *other* workers require cross-machine messages. The
//! per-superstep cost is
//!
//! ```text
//! barrier + max_w(active_w) · compute + cross_messages · message_cost
//! ```
//!
//! which captures the two coupled-architecture penalties the paper
//! exploits: heavyweight synchronisation even for tiny frontiers (an
//! h-step random walk pays h barriers to move one node!) and edge-cut-
//! proportional communication.

use grouting_graph::{CsrGraph, NodeId};
use grouting_metrics::Histogram;
use grouting_partition::{Partitioner, TablePartitioner};
use grouting_query::{Query, QueryResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::BaselineReport;

/// BSP engine cost model and shape.
#[derive(Debug, Clone, Copy)]
pub struct BspConfig {
    /// Barrier + coordination overhead per superstep. Giraph-class systems
    /// pay tens of milliseconds here (job coordination, barrier sync).
    pub superstep_overhead_ns: u64,
    /// Per-node processing cost on a worker.
    pub compute_per_node_ns: u64,
    /// Per-message cost for cross-worker edges.
    pub message_ns: u64,
}

impl Default for BspConfig {
    fn default() -> Self {
        // Calibrated to the bench scale: graphs ship at ~1/1000 of the
        // paper's sizes, so per-query work is ~1000x smaller than on the
        // authors' testbed. Keeping Giraph's real ~100 ms-class barriers
        // would swamp everything; a 2 ms barrier preserves the paper's
        // barrier-to-work *ratio* (and hence Figure 7's relative gaps).
        Self {
            superstep_overhead_ns: 3_000_000,
            compute_per_node_ns: 1_000,
            message_ns: 1_500,
        }
    }
}

/// Runs the query stream through the BSP engine sequentially (queries are
/// jobs; the whole cluster serves one at a time, as in Giraph).
///
/// Returns the report plus the query results (used by tests to check the
/// engine agrees with the decoupled executor).
pub fn run_bsp(
    g: &CsrGraph,
    partitioner: &TablePartitioner,
    queries: &[Query],
    config: &BspConfig,
    partition_ns: u64,
) -> (BaselineReport, Vec<QueryResult>) {
    let workers = partitioner.parts();
    let mut latency = Histogram::new();
    let mut results = Vec::with_capacity(queries.len());
    let mut makespan = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;

    for q in queries {
        let run = match q {
            Query::NeighborAggregation { node, hops, .. } => bsp_bfs(
                g,
                partitioner,
                workers,
                *node,
                *hops,
                config,
                BfsGoal::Count,
            ),
            Query::RandomWalk {
                node,
                steps,
                restart_prob,
                seed,
            } => bsp_walk(g, partitioner, *node, *steps, *restart_prob, *seed, config),
            Query::Reachability {
                source,
                target,
                hops,
            } => bsp_bfs(
                g,
                partitioner,
                workers,
                *source,
                *hops,
                config,
                BfsGoal::Reach(*target, None),
            ),
            Query::ConstrainedReachability {
                source,
                target,
                hops,
                via_label,
            } => bsp_bfs(
                g,
                partitioner,
                workers,
                *source,
                *hops,
                config,
                BfsGoal::Reach(*target, Some(*via_label)),
            ),
        };
        latency.record(run.time_ns);
        makespan += run.time_ns;
        rounds += run.rounds;
        messages += run.messages;
        results.push(run.result);
    }

    (
        BaselineReport {
            latency,
            makespan_ns: makespan,
            rounds,
            messages,
            partition_ns,
        },
        results,
    )
}

enum BfsGoal {
    Count,
    /// Reach the target, optionally only through labelled intermediates.
    Reach(NodeId, Option<grouting_graph::NodeLabelId>),
}

struct RunOutcome {
    time_ns: u64,
    rounds: u64,
    messages: u64,
    result: QueryResult,
}

/// Frontier BFS as supersteps over the bi-directed view (aggregation) or
/// directed out-edges (reachability, which BSP cannot run backwards).
fn bsp_bfs(
    g: &CsrGraph,
    partitioner: &TablePartitioner,
    workers: usize,
    start: NodeId,
    hops: u32,
    config: &BspConfig,
    goal: BfsGoal,
) -> RunOutcome {
    let directed_only = matches!(goal, BfsGoal::Reach(..));
    let mut time = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut visited = std::collections::HashSet::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut reached = false;
    let mut count = 0u64;

    if g.contains(start) {
        visited.insert(start);
        frontier.push(start);
    }
    if let BfsGoal::Reach(t, _) = goal {
        if t == start {
            reached = true;
        }
    }

    for _ in 0..hops {
        if frontier.is_empty() || reached {
            break;
        }
        rounds += 1;
        let mut active_per_worker = vec![0u64; workers];
        let mut cross = 0u64;
        let mut next = Vec::new();
        for &v in &frontier {
            // Label-constrained search only expands through labelled
            // intermediates (endpoints exempt).
            if let BfsGoal::Reach(t, Some(l)) = goal {
                if v != start && v != t && g.node_label(v) != Some(l) {
                    continue;
                }
            }
            let wv = partitioner.assign(v);
            active_per_worker[wv] += 1;
            let neighbors: Vec<NodeId> = if directed_only {
                g.out_neighbors(v).collect()
            } else {
                g.all_neighbors(v).collect()
            };
            for w in neighbors {
                if partitioner.assign(w) != wv {
                    cross += 1;
                }
                if visited.insert(w) {
                    count += 1;
                    next.push(w);
                    if let BfsGoal::Reach(t, _) = goal {
                        if w == t {
                            reached = true;
                        }
                    }
                }
            }
        }
        let max_active = active_per_worker.iter().copied().max().unwrap_or(0);
        time += config.superstep_overhead_ns
            + max_active * config.compute_per_node_ns
            + cross * config.message_ns;
        messages += cross;
        frontier = next;
    }

    RunOutcome {
        time_ns: time.max(config.superstep_overhead_ns),
        rounds,
        messages,
        result: match goal {
            BfsGoal::Count => QueryResult::Count(count),
            BfsGoal::Reach(..) => QueryResult::Reachable(reached),
        },
    }
}

/// A random walk in BSP: one superstep per step — the worst case for
/// barrier-heavy engines.
fn bsp_walk(
    g: &CsrGraph,
    partitioner: &TablePartitioner,
    start: NodeId,
    steps: u32,
    restart_prob: f64,
    seed: u64,
    config: &BspConfig,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut visited = std::collections::HashSet::from([start]);
    let mut time = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;

    for _ in 0..steps {
        rounds += 1;
        time += config.superstep_overhead_ns + config.compute_per_node_ns;
        if rng.gen::<f64>() < restart_prob {
            current = start;
            continue;
        }
        if !g.contains(current) {
            break;
        }
        let outs = g.out_slice(current);
        let next = if !outs.is_empty() {
            NodeId::new(outs[rng.gen_range(0..outs.len())])
        } else {
            let ins = g.in_slice(current);
            if ins.is_empty() {
                start
            } else {
                NodeId::new(ins[rng.gen_range(0..ins.len())])
            }
        };
        if partitioner.assign(next) != partitioner.assign(current) {
            messages += 1;
            time += config.message_ns;
        }
        current = next;
        visited.insert(current);
    }

    RunOutcome {
        time_ns: time,
        rounds,
        messages,
        result: QueryResult::Walk {
            end: current,
            visited: visited.len() as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::{h_hop_neighborhood, Direction};
    use grouting_graph::GraphBuilder;
    use grouting_partition::multilevel::{partition, MultilevelConfig};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn aggregation_matches_ground_truth() {
        let g = ring(32);
        let table = partition(&g, &MultilevelConfig::new(4));
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::NeighborAggregation {
                node: n(i * 4),
                hops: 2,
                label: None,
            })
            .collect();
        let (_, results) = run_bsp(&g, &table, &queries, &BspConfig::default(), 0);
        for (q, r) in queries.iter().zip(&results) {
            let truth = h_hop_neighborhood(&g, q.anchor(), 2, Direction::Both).len() as u64;
            assert_eq!(*r, QueryResult::Count(truth));
        }
    }

    #[test]
    fn every_query_pays_barriers() {
        let g = ring(32);
        let table = partition(&g, &MultilevelConfig::new(4));
        let queries = vec![Query::RandomWalk {
            node: n(0),
            steps: 3,
            restart_prob: 0.0,
            seed: 1,
        }];
        let cfg = BspConfig::default();
        let (report, _) = run_bsp(&g, &table, &queries, &cfg, 0);
        // 3 steps = 3 barriers minimum.
        assert!(report.makespan_ns >= 3 * cfg.superstep_overhead_ns);
        assert_eq!(report.rounds, 3);
    }

    #[test]
    fn reachability_works() {
        let g = ring(16);
        let table = partition(&g, &MultilevelConfig::new(2));
        let queries = vec![
            Query::Reachability {
                source: n(0),
                target: n(3),
                hops: 3,
            },
            Query::Reachability {
                source: n(0),
                target: n(3),
                hops: 2,
            },
        ];
        let (_, results) = run_bsp(&g, &table, &queries, &BspConfig::default(), 0);
        assert_eq!(results[0], QueryResult::Reachable(true));
        assert_eq!(results[1], QueryResult::Reachable(false));
    }

    #[test]
    fn better_partitions_mean_fewer_messages() {
        let g = ring(64);
        let good = partition(&g, &MultilevelConfig::new(4));
        // Worst case: round-robin scatter.
        let bad_table: Vec<u32> = (0..64u32).map(|i| i % 4).collect();
        let bad = TablePartitioner::new(bad_table, 4);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::NeighborAggregation {
                node: n(i * 8),
                hops: 2,
                label: None,
            })
            .collect();
        let (rg, _) = run_bsp(&g, &good, &queries, &BspConfig::default(), 0);
        let (rb, _) = run_bsp(&g, &bad, &queries, &BspConfig::default(), 0);
        assert!(
            rg.messages < rb.messages,
            "good {} vs bad {}",
            rg.messages,
            rb.messages
        );
    }

    #[test]
    fn walk_is_deterministic() {
        let g = ring(16);
        let table = partition(&g, &MultilevelConfig::new(2));
        let q = vec![Query::RandomWalk {
            node: n(0),
            steps: 8,
            restart_prob: 0.2,
            seed: 42,
        }];
        let (_, r1) = run_bsp(&g, &table, &q, &BspConfig::default(), 0);
        let (_, r2) = run_bsp(&g, &table, &q, &BspConfig::default(), 0);
        assert_eq!(r1, r2);
    }
}
