//! PowerGraph-style gather-apply-scatter engine (vertex-cut baseline).
//!
//! PowerGraph splits *edges* across machines and replicates nodes wherever
//! their edges live. Each iteration, every active node gathers partial
//! results from its replicas (one message per non-master replica), applies,
//! and scatters activation along its edges. Following the paper's port,
//! "only the required nodes are active at any point of time": the h-hop
//! frontier activates level by level. Iteration overhead is far lighter
//! than a Giraph barrier, but replica synchronisation charges per-replica
//! messages — the replication factor is the communication lever.

use grouting_graph::{CsrGraph, NodeId};
use grouting_metrics::Histogram;
use grouting_partition::vertexcut::VertexCut;
use grouting_query::{Query, QueryResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::BaselineReport;

/// GAS engine cost model.
#[derive(Debug, Clone, Copy)]
pub struct GasConfig {
    /// Per-iteration coordination overhead (lighter than a BSP barrier).
    pub iteration_overhead_ns: u64,
    /// Per-node apply cost.
    pub compute_per_node_ns: u64,
    /// Per-message cost for replica synchronisation and scatter.
    pub message_ns: u64,
}

impl Default for GasConfig {
    fn default() -> Self {
        // Calibrated to the bench scale like `BspConfig::default` — GAS
        // iterations are far lighter than Giraph barriers but not free.
        Self {
            iteration_overhead_ns: 1_200_000,
            compute_per_node_ns: 1_200,
            message_ns: 1_500,
        }
    }
}

/// Runs the query stream through the GAS engine (sequential jobs).
pub fn run_gas(
    g: &CsrGraph,
    cut: &VertexCut,
    queries: &[Query],
    config: &GasConfig,
    partition_ns: u64,
) -> (BaselineReport, Vec<QueryResult>) {
    let mut latency = Histogram::new();
    let mut results = Vec::with_capacity(queries.len());
    let mut makespan = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;

    for q in queries {
        let run = match q {
            Query::NeighborAggregation { node, hops, .. } => {
                gas_frontier(g, cut, *node, *hops, config, None, None)
            }
            Query::RandomWalk {
                node,
                steps,
                restart_prob,
                seed,
            } => gas_walk(g, cut, *node, *steps, *restart_prob, *seed, config),
            Query::Reachability {
                source,
                target,
                hops,
            } => gas_frontier(g, cut, *source, *hops, config, Some(*target), None),
            Query::ConstrainedReachability {
                source,
                target,
                hops,
                via_label,
            } => gas_frontier(
                g,
                cut,
                *source,
                *hops,
                config,
                Some(*target),
                Some(*via_label),
            ),
        };
        latency.record(run.time_ns);
        makespan += run.time_ns;
        rounds += run.rounds;
        messages += run.messages;
        results.push(run.result);
    }

    (
        BaselineReport {
            latency,
            makespan_ns: makespan,
            rounds,
            messages,
            partition_ns,
        },
        results,
    )
}

struct RunOutcome {
    time_ns: u64,
    rounds: u64,
    messages: u64,
    result: QueryResult,
}

fn replicas_of(cut: &VertexCut, v: NodeId) -> u64 {
    cut.replicas
        .get(v.index())
        .map(|r| r.len().max(1) as u64)
        .unwrap_or(1)
}

/// Frontier expansion with per-replica gather messages.
fn gas_frontier(
    g: &CsrGraph,
    cut: &VertexCut,
    start: NodeId,
    hops: u32,
    config: &GasConfig,
    target: Option<NodeId>,
    via_label: Option<grouting_graph::NodeLabelId>,
) -> RunOutcome {
    let directed_only = target.is_some();
    let mut time = 0u64;
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut visited = std::collections::HashSet::new();
    let mut frontier = Vec::new();
    let mut count = 0u64;
    let mut reached = target == Some(start);

    if g.contains(start) {
        visited.insert(start);
        frontier.push(start);
    }

    for _ in 0..hops {
        if frontier.is_empty() || reached {
            break;
        }
        rounds += 1;
        let mut active_per_machine = vec![0u64; cut.parts];
        let mut round_messages = 0u64;
        let mut next = Vec::new();
        for &v in &frontier {
            // Label-constrained search only expands labelled intermediates.
            if let Some(l) = via_label {
                if v != start && target != Some(v) && g.node_label(v) != Some(l) {
                    continue;
                }
            }
            active_per_machine[cut.master(v)] += 1;
            // Gather: one message per non-master replica, twice (request +
            // response).
            round_messages += (replicas_of(cut, v) - 1) * 2;
            let neighbors: Vec<NodeId> = if directed_only {
                g.out_neighbors(v).collect()
            } else {
                g.all_neighbors(v).collect()
            };
            for w in neighbors {
                if visited.insert(w) {
                    count += 1;
                    next.push(w);
                    if target == Some(w) {
                        reached = true;
                    }
                }
            }
        }
        let max_active = active_per_machine.iter().copied().max().unwrap_or(0);
        time += config.iteration_overhead_ns
            + max_active * config.compute_per_node_ns
            + round_messages * config.message_ns;
        messages += round_messages;
        frontier = next;
    }

    RunOutcome {
        time_ns: time.max(config.iteration_overhead_ns),
        rounds,
        messages,
        result: match target {
            None => QueryResult::Count(count),
            Some(_) => QueryResult::Reachable(reached),
        },
    }
}

fn gas_walk(
    g: &CsrGraph,
    cut: &VertexCut,
    start: NodeId,
    steps: u32,
    restart_prob: f64,
    seed: u64,
    config: &GasConfig,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = start;
    let mut visited = std::collections::HashSet::from([start]);
    let mut time = 0u64;
    let mut messages = 0u64;

    for _ in 0..steps {
        time += config.iteration_overhead_ns + config.compute_per_node_ns;
        let sync = (replicas_of(cut, current) - 1) * 2;
        messages += sync;
        time += sync * config.message_ns;
        if rng.gen::<f64>() < restart_prob {
            current = start;
            continue;
        }
        if !g.contains(current) {
            break;
        }
        let outs = g.out_slice(current);
        current = if !outs.is_empty() {
            NodeId::new(outs[rng.gen_range(0..outs.len())])
        } else {
            let ins = g.in_slice(current);
            if ins.is_empty() {
                start
            } else {
                NodeId::new(ins[rng.gen_range(0..ins.len())])
            }
        };
        visited.insert(current);
    }

    RunOutcome {
        time_ns: time,
        rounds: steps as u64,
        messages,
        result: QueryResult::Walk {
            end: current,
            visited: visited.len() as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::traversal::{h_hop_neighborhood, Direction};
    use grouting_graph::GraphBuilder;
    use grouting_partition::vertexcut::greedy_vertex_cut;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ring(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 0..k {
            b.add_edge(n(i), n((i + 1) % k));
        }
        b.build().unwrap()
    }

    #[test]
    fn aggregation_matches_ground_truth() {
        let g = ring(32);
        let cut = greedy_vertex_cut(&g, 4);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::NeighborAggregation {
                node: n(i * 4),
                hops: 2,
                label: None,
            })
            .collect();
        let (_, results) = run_gas(&g, &cut, &queries, &GasConfig::default(), 0);
        for (q, r) in queries.iter().zip(&results) {
            let truth = h_hop_neighborhood(&g, q.anchor(), 2, Direction::Both).len() as u64;
            assert_eq!(*r, QueryResult::Count(truth));
        }
    }

    #[test]
    fn reachability_verdicts() {
        let g = ring(16);
        let cut = greedy_vertex_cut(&g, 2);
        let (_, results) = run_gas(
            &g,
            &cut,
            &[
                Query::Reachability {
                    source: n(0),
                    target: n(2),
                    hops: 2,
                },
                Query::Reachability {
                    source: n(2),
                    target: n(0),
                    hops: 3,
                },
            ],
            &GasConfig::default(),
            0,
        );
        assert_eq!(results[0], QueryResult::Reachable(true));
        assert_eq!(results[1], QueryResult::Reachable(false));
    }

    #[test]
    fn replication_drives_messages() {
        let g = ring(32);
        let cut2 = greedy_vertex_cut(&g, 2);
        let cut8 = greedy_vertex_cut(&g, 8);
        let queries: Vec<Query> = (0..8)
            .map(|i| Query::NeighborAggregation {
                node: n(i * 4),
                hops: 2,
                label: None,
            })
            .collect();
        let (r2, _) = run_gas(&g, &cut2, &queries, &GasConfig::default(), 0);
        let (r8, _) = run_gas(&g, &cut8, &queries, &GasConfig::default(), 0);
        // More machines ⇒ higher replication factor ⇒ more sync messages.
        assert!(
            r8.messages >= r2.messages,
            "8 machines {} vs 2 machines {}",
            r8.messages,
            r2.messages
        );
    }

    #[test]
    fn gas_iterations_cheaper_than_bsp_barriers() {
        let gas = GasConfig::default();
        let bsp = crate::bsp::BspConfig::default();
        assert!(gas.iteration_overhead_ns < bsp.superstep_overhead_ns);
    }
}
