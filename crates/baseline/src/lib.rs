//! Coupled-architecture baselines: the systems gRouting is compared against.
//!
//! Figure 7 of the paper pits gRouting against two distributed graph
//! systems in which storage and compute are *coupled* — each server owns a
//! partition and only that server can process queries touching it:
//!
//! * [`bsp`] — a Pregel/Giraph-style vertex-centric bulk-synchronous engine
//!   standing in for **SEDGE** [35]. It runs on METIS-style multilevel
//!   edge-cut partitions (`grouting-partition::multilevel`, the ParMETIS
//!   stand-in) and pays a synchronisation barrier per superstep — the cost
//!   that makes h-hop queries expensive on offline BSP engines;
//! * [`gas`] — a PowerGraph-style gather-apply-scatter engine on a greedy
//!   vertex-cut, with only the h-hop frontier active (the paper's own port:
//!   "we ensure that only the required nodes are active at any point of
//!   time").
//!
//! Both engines execute queries *for real* over the in-memory graph and
//! charge virtual time from explicit cost models, mirroring how
//! `grouting-sim` treats the decoupled cluster, so throughput comparisons
//! are apples-to-apples.

pub mod bsp;
pub mod gas;
pub mod report;

pub use bsp::{run_bsp, BspConfig};
pub use gas::{run_gas, GasConfig};
pub use report::BaselineReport;
