//! A readiness-driven reactor: one poll loop over many framed connections.
//!
//! PR 3 made the *fetch* path non-blocking ([`crate::flow::BatchMux`]);
//! the control path — dispatch, completion, metrics — still burned one
//! parked thread per connection: the router ran an acceptor thread plus a
//! reader thread per peer, and every storage endpoint spawned a thread per
//! inbound connection. This module replaces all of that with a single
//! [`Reactor`] per node: it multiplexes the listener
//! ([`Listener::try_accept`]) and every established connection
//! ([`crate::transport::FrameStream::try_recv`]) through one non-blocking
//! sweep, shrinking a node's thread count from O(connections) to O(1) and
//! cutting wake-up latency on the dispatch path from a channel-handoff
//! plus scheduler round trip to a poll-loop iteration.
//!
//! The [`Backoff`] ladder keeps an idle loop cheap *without* adding
//! latency to a busy one: yield between empty sweeps (each sweep is a
//! round of syscalls, so "spinning" would burn the core the peer needs —
//! see [`Backoff`]), and only once the loop has been idle for a couple of
//! milliseconds, sleep in short slices. The sleep threshold matters:
//! `thread::sleep` pays the kernel's timer slack (~50 µs) per call, so
//! sleeping between back-to-back requests would tax every exchange — a
//! service under load never descends past the yield rung.
//!
//! This PR puts an OS-event backend behind that loop. The [`Poller`]
//! trait abstracts "which connections might have bytes": the portable
//! [`SweepPoller`] answers "all of them" and paces idle rounds with the
//! [`Backoff`] ladder exactly as before, while the Linux `EpollPoller`
//! (selected via `GROUTING_REACTOR=epoll`, the Linux default) tracks
//! every fd in one epoll set, so an idle reactor *blocks* in
//! `epoll_wait` — zero syscalls per idle connection — and a busy one
//! drains only the connections the kernel reports ready, O(ready) per
//! wake instead of O(connections) per sweep. Sources without an fd (the
//! in-process transport) degrade the epoll backend to sweep semantics
//! automatically, so backend choice never affects correctness.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grouting_metrics::log_warn;
use grouting_trace::TelemetryCounters;

use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::transport::{Connection, FrameSink, FrameStream, Listener};

/// The yield → sleep idle ladder shared by every poll loop (the reactor,
/// the batch multiplexer, the overlapped processor).
///
/// Deliberately NO spin rung: each "round" of a poll loop is a sweep of
/// read/accept syscalls, not a free pause, so spinning between sweeps
/// burns the very core the peer needs to produce the next frame — on a
/// single-CPU host that multiplies round-trip latency several-fold
/// (measured ~5× on the 64-node frontier fetch). Yielding immediately
/// hands the core over for the price of one syscall; the kernel wakes us
/// right back when nothing else is runnable.
#[derive(Debug, Default)]
pub struct Backoff {
    /// When this idle stretch began (first idle round after progress).
    idle_since: Option<Instant>,
}

/// How long into an idle stretch the loop keeps yielding before it starts
/// sleeping. Request gaps on a loaded service are microseconds, far under
/// this, so the hot path never pays `thread::sleep`'s timer-slack latency
/// (~50 µs per call); a genuinely idle loop converges to ~10 k cheap
/// sweeps per second instead of a 100 % yield-spin.
const YIELD_FOR: Duration = Duration::from_millis(2);

impl Backoff {
    /// A fresh ladder (starts at the yield rung).
    pub fn new() -> Self {
        Self::default()
    }

    /// Progress happened: restart from the yield rung.
    pub fn reset(&mut self) {
        self.idle_since = None;
    }

    /// Nothing happened this round: pay the current rung.
    pub fn idle(&mut self) {
        let since = *self.idle_since.get_or_insert_with(Instant::now);
        if since.elapsed() < YIELD_FOR {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Which readiness backend a poll loop runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// The portable non-blocking sweep: probe every source each round,
    /// pace idle rounds with the [`Backoff`] ladder.
    Sweep,
    /// Linux `epoll`: block in the kernel until a tracked fd is ready.
    /// On other platforms (or when a source has no fd) this falls back
    /// to sweep behaviour.
    Epoll,
}

impl PollerKind {
    /// The platform default: `epoll` where it exists, `sweep` elsewhere.
    pub fn default_for_host() -> Self {
        if cfg!(target_os = "linux") {
            Self::Epoll
        } else {
            Self::Sweep
        }
    }

    /// Reads `GROUTING_REACTOR` (`sweep` | `epoll`). Unset picks the
    /// platform default; an invalid value warns on stderr naming the
    /// value and keeps the default; `epoll` off Linux warns and sweeps.
    pub fn from_env() -> Self {
        let default = Self::default_for_host();
        match std::env::var("GROUTING_REACTOR") {
            Err(_) => default,
            Ok(raw) => match raw.as_str() {
                "sweep" => Self::Sweep,
                "epoll" if cfg!(target_os = "linux") => Self::Epoll,
                "epoll" => {
                    log_warn!(
                        "GROUTING_REACTOR=epoll is Linux-only; \
                         using the portable sweep backend"
                    );
                    Self::Sweep
                }
                _ => {
                    log_warn!(
                        "invalid GROUTING_REACTOR value {raw:?} \
                         (expected \"sweep\" or \"epoll\"); using default {default}"
                    );
                    default
                }
            },
        }
    }

    /// Instantiates the backend (falling back to sweep when epoll is
    /// unavailable).
    pub fn build(self) -> Box<dyn Poller> {
        match self {
            Self::Sweep => Box::new(SweepPoller::new()),
            Self::Epoll => {
                #[cfg(target_os = "linux")]
                match EpollPoller::new() {
                    Ok(poller) => return Box::new(poller),
                    Err(e) => log_warn!("epoll unavailable ({e}); using sweep"),
                }
                Box::new(SweepPoller::new())
            }
        }
    }
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Sweep => "sweep",
            Self::Epoll => "epoll",
        })
    }
}

/// A readiness backend for one poll loop.
///
/// The contract is deliberately loose enough to cover both a kernel event
/// queue and the portable probe-everything sweep: [`Poller::wait`] may
/// either name the ready tokens (return `false`) or declare readiness
/// unknown (return `true`), in which case the owner must probe every
/// source. Sources are registered with an optional raw fd; a source
/// without one (in-process channels) can never be kernel-tracked, and a
/// correct backend must stop blocking while any such source is
/// registered — its bytes arrive without any fd becoming readable.
pub trait Poller: Send {
    /// Which backend this is (diagnostics).
    fn kind(&self) -> PollerKind;

    /// Starts tracking a source. Returns whether the backend can report
    /// readiness for it; on `false` the owner must keep probing the
    /// source every round.
    fn register(&mut self, token: u64, fd: Option<i32>) -> bool;

    /// Stops tracking a source (pass the same fd as at registration).
    fn deregister(&mut self, token: u64, fd: Option<i32>);

    /// Progress happened outside this poller (frames were drained); any
    /// idle pacing restarts from its hot rung.
    fn reset(&mut self);

    /// One idle-path wait: blocks up to `timeout` (backend permitting),
    /// appending ready tokens to `ready`. Returns `true` when the caller
    /// must probe every source (readiness unknown), `false` when `ready`
    /// is authoritative for kernel-tracked sources.
    fn wait(&mut self, ready: &mut Vec<u64>, timeout: Duration) -> bool;
}

/// The portable backend: readiness is never known, so every wait asks
/// the owner to sweep, paced by the [`Backoff`] yield→sleep ladder.
pub struct SweepPoller {
    backoff: Backoff,
}

impl SweepPoller {
    /// A fresh sweep backend.
    pub fn new() -> Self {
        Self {
            backoff: Backoff::new(),
        }
    }
}

impl Default for SweepPoller {
    fn default() -> Self {
        Self::new()
    }
}

impl Poller for SweepPoller {
    fn kind(&self) -> PollerKind {
        PollerKind::Sweep
    }

    fn register(&mut self, _token: u64, _fd: Option<i32>) -> bool {
        false
    }

    fn deregister(&mut self, _token: u64, _fd: Option<i32>) {}

    fn reset(&mut self) {
        self.backoff.reset();
    }

    fn wait(&mut self, _ready: &mut Vec<u64>, _timeout: Duration) -> bool {
        self.backoff.idle();
        true
    }
}

/// The Linux backend: every fd-bearing source lives in one epoll set.
///
/// Idle pacing is a hybrid: for the first [`YIELD_FOR`] of an idle
/// stretch it yields with a non-blocking `epoll_wait` (the hot path keeps
/// sweep-grade latency on a loaded single-core host), then it blocks in
/// `epoll_wait` with the caller's timeout — the flat-idle-cost state
/// where a thousand quiet connections cost zero syscalls per round.
/// While any registered source has no fd, blocking would deafen the loop
/// to that source, so the poller degrades to laddered sweep behaviour.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    ep: crate::sys::EpollFd,
    /// Tokens registered without a trackable fd — while non-empty the
    /// poller must not block and the owner sweeps those sources.
    untracked: std::collections::HashSet<u64>,
    backoff: Backoff,
    idle_since: Option<Instant>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    /// A fresh epoll backend.
    ///
    /// # Errors
    ///
    /// The OS error when the epoll instance cannot be created (fd
    /// exhaustion).
    pub fn new() -> std::io::Result<Self> {
        Ok(Self {
            ep: crate::sys::EpollFd::new()?,
            untracked: std::collections::HashSet::new(),
            backoff: Backoff::new(),
            idle_since: None,
        })
    }
}

#[cfg(target_os = "linux")]
impl Poller for EpollPoller {
    fn kind(&self) -> PollerKind {
        PollerKind::Epoll
    }

    fn register(&mut self, token: u64, fd: Option<i32>) -> bool {
        match fd {
            Some(fd) if self.ep.add(fd, token).is_ok() => true,
            _ => {
                self.untracked.insert(token);
                false
            }
        }
    }

    fn deregister(&mut self, token: u64, fd: Option<i32>) {
        if self.untracked.remove(&token) {
            return;
        }
        if let Some(fd) = fd {
            self.ep.del(fd);
        }
    }

    fn reset(&mut self) {
        self.backoff.reset();
        self.idle_since = None;
    }

    fn wait(&mut self, ready: &mut Vec<u64>, timeout: Duration) -> bool {
        if !self.untracked.is_empty() {
            // Fd-less sources in the set: blocking would miss their
            // bytes. Behave exactly like the sweep backend.
            self.backoff.idle();
            return true;
        }
        let since = *self.idle_since.get_or_insert_with(Instant::now);
        let wait_for = if since.elapsed() < YIELD_FOR {
            // Hot rung: hand the core to the peer (it may be about to
            // produce our bytes) and harvest readiness without blocking.
            std::thread::yield_now();
            Duration::ZERO
        } else {
            timeout
        };
        // An epoll failure mid-run (should not happen): fall back to
        // sweeping rather than spinning on the error.
        self.ep.wait(ready, wait_for).is_err()
    }
}

/// Something a [`Reactor::poll`] sweep observed.
// The `Frame` variant dwarfs the others, but boxing it would put a heap
// allocation on every inbound frame — the data plane's hot path. Events
// live in one short reused Vec, so the per-event size is not a cost that
// compounds.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ReactorEvent {
    /// A new inbound connection was accepted (or an outbound one
    /// registered) under this id.
    Opened(u64),
    /// A complete frame arrived on this connection.
    Frame(u64, Frame),
    /// The connection died (peer closed, transport error, or stream
    /// corruption); it has already been deregistered.
    Closed(u64),
}

struct ReactorConn {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
    /// The stream's raw fd, as registered with the poller.
    fd: Option<i32>,
    /// Pool counters (checkouts, reused) already folded into telemetry —
    /// the pool exposes monotonic totals, so samples record deltas.
    pool_seen: (u64, u64),
}

/// Folds a stream's buffer-pool counters into `telemetry` as deltas
/// against `seen` (the totals already reported for this connection).
/// A no-op when telemetry is off or the stream has no pool.
pub(crate) fn sample_pool(
    telemetry: &Option<Arc<TelemetryCounters>>,
    stream: &dyn FrameStream,
    seen: &mut (u64, u64),
) {
    let Some(t) = telemetry else { return };
    let Some((checkouts, reused, free)) = stream.pool_stats() else {
        return;
    };
    t.pool_sample(
        checkouts.saturating_sub(seen.0),
        reused.saturating_sub(seen.1),
        free,
    );
    *seen = (checkouts, reused);
}

/// Most frames drained from one connection per sweep, so a flooding peer
/// cannot starve the others (order within each connection is preserved
/// regardless — the excess is simply picked up next sweep).
const MAX_FRAMES_PER_CONN_PER_SWEEP: usize = 32;

/// The poller token for the listener (connection ids count up from 0 and
/// can never collide with it).
const LISTENER_TOKEN: u64 = u64::MAX;

/// How long one blocking wait may park before re-checking the caller's
/// stop condition. Long enough that an idle node pays ~40 wakes/s, short
/// enough that shutdown stays prompt.
const DEFAULT_IDLE_WAIT: Duration = Duration::from_millis(25);

/// What draining one connection's ready frames observed.
enum Drain {
    /// Everything buffered and readable was delivered.
    Done,
    /// The per-sweep frame cap was hit; complete frames may remain
    /// buffered in userspace, invisible to the kernel's readiness.
    Capped,
    /// The connection failed (a `Closed` event was already pushed).
    Dead,
}

fn drain_conn(
    id: u64,
    conn: &mut ReactorConn,
    events: &mut Vec<ReactorEvent>,
    telemetry: &Option<Arc<TelemetryCounters>>,
) -> Drain {
    let result = 'drain: {
        for _ in 0..MAX_FRAMES_PER_CONN_PER_SWEEP {
            match conn.stream.try_recv() {
                Ok(Some(frame)) => {
                    if let Some(t) = telemetry {
                        t.frame_in(frame.encoded_len() as u64);
                    }
                    events.push(ReactorEvent::Frame(id, frame));
                }
                Ok(None) => break 'drain Drain::Done,
                // Any failure — clean close, reset, or stream corruption —
                // retires the connection; the consumer decides whether that
                // peer's death is fatal.
                Err(_) => {
                    events.push(ReactorEvent::Closed(id));
                    return Drain::Dead;
                }
            }
        }
        Drain::Capped
    };
    sample_pool(telemetry, conn.stream.as_ref(), &mut conn.pool_seen);
    result
}

/// One node's connection multiplexer: a listener plus every accepted (or
/// registered) connection, all driven from a single thread.
///
/// Frames are delivered in per-connection order — the order the peer sent
/// them — because each connection is a FIFO byte stream drained
/// sequentially; no ordering holds *across* connections.
///
/// The readiness backend is chosen per [`PollerKind`]:
/// [`Reactor::poll`] is always the portable full sweep, while
/// [`Reactor::wait`] lets an epoll backend block when idle and drain only
/// ready connections when woken. Connections whose frame drain hit the
/// per-sweep cap are remembered as *dirty* and re-drained on the next
/// round regardless of kernel readiness — complete frames parked in a
/// userspace buffer make no fd readable.
pub struct Reactor {
    listener: Option<Box<dyn Listener>>,
    /// Whether the poller can report listener readiness; if not, every
    /// ready-round must also probe the listener.
    listener_tracked: bool,
    // BTreeMap so sweeps visit connections in a deterministic order.
    conns: BTreeMap<u64, ReactorConn>,
    poller: Box<dyn Poller>,
    /// Connections the poller cannot track (no fd): probed every round.
    untracked: BTreeSet<u64>,
    /// Connections whose last drain hit the frame cap: complete frames
    /// may still sit in their userspace buffers.
    dirty: BTreeSet<u64>,
    /// Scratch for ready tokens (reused across rounds).
    ready: Vec<u64>,
    next_id: u64,
    /// Shared telemetry sink; `None` (tracing off) keeps the loop free of
    /// clock reads and atomic bumps.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl Reactor {
    /// A reactor accepting inbound connections from `listener`, on the
    /// backend `GROUTING_REACTOR` selects.
    pub fn new(listener: Box<dyn Listener>) -> Self {
        Self::with_poller(listener, PollerKind::from_env())
    }

    /// A reactor on an explicitly chosen readiness backend.
    pub fn with_poller(listener: Box<dyn Listener>, kind: PollerKind) -> Self {
        let mut poller = kind.build();
        let listener_tracked = poller.register(LISTENER_TOKEN, listener.raw_fd());
        Self {
            listener: Some(listener),
            listener_tracked,
            conns: BTreeMap::new(),
            poller,
            untracked: BTreeSet::new(),
            dirty: BTreeSet::new(),
            ready: Vec::new(),
            next_id: 0,
            telemetry: None,
        }
    }

    /// The backend this reactor polls with.
    pub fn poller_kind(&self) -> PollerKind {
        self.poller.kind()
    }

    /// Routes this reactor's frame, byte, busy/idle, and buffer-pool
    /// telemetry into the shared counters.
    pub fn set_telemetry(&mut self, telemetry: Arc<TelemetryCounters>) {
        self.telemetry = Some(telemetry);
    }

    /// The address peers dial to reach this reactor's listener (empty for
    /// a listenerless reactor).
    pub fn addr(&self) -> String {
        self.listener.as_ref().map(|l| l.addr()).unwrap_or_default()
    }

    /// Registers an outbound connection (a dial this node made) under a
    /// fresh id, returning it. The connection is polled like any accepted
    /// one.
    pub fn register(&mut self, conn: Connection) -> u64 {
        let (sink, stream) = conn.split();
        self.insert_conn(sink, stream)
    }

    fn insert_conn(&mut self, sink: Box<dyn FrameSink>, stream: Box<dyn FrameStream>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let fd = stream.raw_fd();
        if !self.poller.register(id, fd) {
            self.untracked.insert(id);
        }
        // Bytes may already be buffered (frames that arrived before
        // registration): force one drain regardless of readiness.
        self.dirty.insert(id);
        self.conns.insert(
            id,
            ReactorConn {
                sink,
                stream,
                fd,
                pool_seen: (0, 0),
            },
        );
        id
    }

    fn retire(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            self.poller.deregister(id, conn.fd);
        }
        self.untracked.remove(&id);
        self.dirty.remove(&id);
    }

    /// Established connections currently registered.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Sends one frame on connection `id`.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the id is unknown (the connection died
    /// and was deregistered); transport errors from the send itself.
    pub fn send(&mut self, id: u64, frame: &Frame) -> WireResult<()> {
        match self.conns.get_mut(&id) {
            Some(conn) => {
                if let Some(t) = &self.telemetry {
                    t.frame_out(frame.encoded_len() as u64);
                }
                conn.sink.send(frame)
            }
            None => Err(WireError::Closed),
        }
    }

    /// Drops connection `id` (no event is emitted).
    pub fn close(&mut self, id: u64) {
        self.retire(id);
    }

    fn accept_new(&mut self, events: &mut Vec<ReactorEvent>) -> WireResult<()> {
        let Some(mut listener) = self.listener.take() else {
            return Ok(());
        };
        let mut result = Ok(());
        loop {
            match listener.try_accept() {
                Ok(Some(conn)) => {
                    let (sink, stream) = conn.split();
                    let id = self.insert_conn(sink, stream);
                    events.push(ReactorEvent::Opened(id));
                }
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.listener = Some(listener);
        result
    }

    /// One non-blocking sweep: accept every waiting dial, then drain each
    /// connection's ready frames (bounded per sweep), appending events in
    /// per-connection order.
    ///
    /// # Errors
    ///
    /// Only listener failures are fatal; a failing *connection* becomes a
    /// [`ReactorEvent::Closed`] event instead.
    pub fn poll(&mut self, events: &mut Vec<ReactorEvent>) -> WireResult<()> {
        let started = self.telemetry.is_some().then(Instant::now);
        self.accept_new(events)?;
        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            match drain_conn(id, conn, events, &self.telemetry) {
                Drain::Done => {
                    self.dirty.remove(&id);
                }
                Drain::Capped => {
                    self.dirty.insert(id);
                }
                Drain::Dead => dead.push(id),
            }
        }
        for id in dead {
            self.retire(id);
        }
        self.note_busy(started);
        Ok(())
    }

    /// One ready-round: accept when the listener is (or may be) ready,
    /// then drain only the connections the poller reported ready, plus
    /// the always-probed sets (untracked sources and dirty connections
    /// holding capped userspace frames).
    fn poll_ready(&mut self, events: &mut Vec<ReactorEvent>, ready: &[u64]) -> WireResult<()> {
        let started = self.telemetry.is_some().then(Instant::now);
        if !self.listener_tracked || ready.contains(&LISTENER_TOKEN) {
            self.accept_new(events)?;
        }
        let mut targets: BTreeSet<u64> = self
            .untracked
            .iter()
            .chain(self.dirty.iter())
            .copied()
            .collect();
        targets.extend(ready.iter().copied().filter(|&t| t != LISTENER_TOKEN));
        for id in targets {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            match drain_conn(id, conn, events, &self.telemetry) {
                Drain::Done => {
                    self.dirty.remove(&id);
                }
                Drain::Capped => {
                    self.dirty.insert(id);
                }
                Drain::Dead => self.retire(id),
            }
        }
        self.note_busy(started);
        Ok(())
    }

    /// Folds the elapsed time since `started` into busy telemetry
    /// (`started` is `None` exactly when telemetry is off).
    fn note_busy(&self, started: Option<Instant>) {
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.add_busy_ns(started.elapsed().as_nanos() as u64);
        }
    }

    /// Polls until at least one event is available (or `stop` returns
    /// true). On the sweep backend this pays the [`Backoff`] ladder
    /// between full sweeps exactly as before; on epoll an idle reactor
    /// blocks in `epoll_wait` (re-checking `stop` every
    /// [`DEFAULT_IDLE_WAIT`]) and a woken one drains only ready
    /// connections.
    ///
    /// # Errors
    ///
    /// Propagates listener failures from [`Reactor::poll`].
    pub fn wait(
        &mut self,
        events: &mut Vec<ReactorEvent>,
        stop: &dyn Fn() -> bool,
    ) -> WireResult<()> {
        self.wait_timeout(events, stop, DEFAULT_IDLE_WAIT)
    }

    /// [`Reactor::wait`] with an explicit cap on how long one blocking
    /// wait may park before `stop` is re-checked.
    ///
    /// # Errors
    ///
    /// Propagates listener failures from [`Reactor::poll`].
    pub fn wait_timeout(
        &mut self,
        events: &mut Vec<ReactorEvent>,
        stop: &dyn Fn() -> bool,
        timeout: Duration,
    ) -> WireResult<()> {
        loop {
            let mut ready = std::mem::take(&mut self.ready);
            ready.clear();
            let parked = self.telemetry.is_some().then(Instant::now);
            let must_sweep = self.poller.wait(&mut ready, timeout);
            if let (Some(t), Some(parked)) = (&self.telemetry, parked) {
                t.add_idle_ns(parked.elapsed().as_nanos() as u64);
            }
            let round = if must_sweep {
                self.poll(events)
            } else {
                self.poll_ready(events, &ready)
            };
            self.ready = ready;
            round?;
            if !events.is_empty() {
                self.poller.reset();
                return Ok(());
            }
            if stop() {
                return Ok(());
            }
        }
    }

    /// One idle-path wait *without* draining: parks (backend permitting)
    /// until any source may be ready or `timeout` elapses; the caller's
    /// next [`Reactor::poll`] picks up whatever arrived. Loops that must
    /// interleave polling with their own work (the storage service's
    /// delayed-response queue) use this instead of [`Reactor::wait`].
    pub fn idle_wait(&mut self, timeout: Duration) {
        if !self.dirty.is_empty() {
            // Complete frames are parked in userspace; blocking would
            // stall them.
            return;
        }
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        let parked = self.telemetry.is_some().then(Instant::now);
        let _ = self.poller.wait(&mut ready, timeout);
        if let (Some(t), Some(parked)) = (&self.telemetry, parked) {
            t.add_idle_ns(parked.elapsed().as_nanos() as u64);
        }
        self.ready = ready;
    }

    /// Progress happened outside the wait path (the owner drained frames
    /// via [`Reactor::poll`]): restart idle pacing from the hot rung.
    pub fn note_progress(&mut self) {
        self.poller.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, TcpTransport, Transport};
    use grouting_graph::NodeId;
    use std::sync::Arc;

    fn frame(i: u32) -> Frame {
        Frame::FetchRequest {
            node: NodeId::new(i),
        }
    }

    fn echo_reactor_over(transport: Arc<dyn Transport>, kind: PollerKind) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut reactor = Reactor::with_poller(listener, kind);
            let mut events = Vec::new();
            let mut served = 0;
            loop {
                reactor.wait(&mut events, &|| false).unwrap();
                for event in events.drain(..) {
                    match event {
                        ReactorEvent::Frame(id, Frame::Shutdown) => {
                            reactor.close(id);
                            return;
                        }
                        ReactorEvent::Frame(id, f) => {
                            reactor.send(id, &f).unwrap();
                            served += 1;
                        }
                        ReactorEvent::Opened(_) | ReactorEvent::Closed(_) => {}
                    }
                }
                if served > 1000 {
                    return;
                }
            }
        });

        let mut conn = transport.dial(&addr).unwrap();
        for i in 0..50 {
            assert_eq!(conn.request(&frame(i)).unwrap(), frame(i));
        }
        conn.send(&Frame::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn inproc_reactor_echoes() {
        // In-process sources are fd-less: the epoll backend must degrade
        // to sweep semantics for them rather than deafen itself.
        echo_reactor_over(Arc::new(InProcTransport::new()), PollerKind::Sweep);
        echo_reactor_over(Arc::new(InProcTransport::new()), PollerKind::Epoll);
    }

    #[test]
    fn tcp_reactor_echoes() {
        echo_reactor_over(Arc::new(TcpTransport::new()), PollerKind::Sweep);
        echo_reactor_over(Arc::new(TcpTransport::new()), PollerKind::Epoll);
    }

    /// 1k concurrent TCP connections through one reactor: every dial is
    /// accepted, every frame echoed, every close observed.
    fn thousand_connections_echo(kind: PollerKind) {
        const CONNS: usize = 1000;
        let transport = TcpTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut reactor = Reactor::with_poller(listener, kind);
            let mut events = Vec::new();
            let mut echoed = 0usize;
            let mut closed = 0usize;
            while closed < CONNS {
                reactor.wait(&mut events, &|| false).unwrap();
                for event in events.drain(..) {
                    match event {
                        ReactorEvent::Frame(id, f) => {
                            reactor.send(id, &f).unwrap();
                            echoed += 1;
                        }
                        ReactorEvent::Closed(_) => closed += 1,
                        ReactorEvent::Opened(_) => {}
                    }
                }
            }
            echoed
        });
        let mut conns = Vec::with_capacity(CONNS);
        for _ in 0..CONNS {
            conns.push(transport.dial(&addr).unwrap());
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            assert_eq!(conn.request(&frame(i as u32)).unwrap(), frame(i as u32));
        }
        drop(conns);
        assert_eq!(server.join().unwrap(), CONNS);
    }

    #[test]
    fn thousand_connections_echo_sweep() {
        thousand_connections_echo(PollerKind::Sweep);
    }

    #[test]
    fn thousand_connections_echo_epoll() {
        thousand_connections_echo(PollerKind::Epoll);
    }

    #[test]
    fn reactor_reports_closed_connections() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let mut reactor = Reactor::new(listener);
        let conn = transport.dial(&addr).unwrap();
        let mut events = Vec::new();
        reactor.wait(&mut events, &|| false).unwrap();
        assert!(matches!(events[0], ReactorEvent::Opened(_)));
        assert_eq!(reactor.connections(), 1);
        drop(conn);
        events.clear();
        reactor.wait(&mut events, &|| false).unwrap();
        assert!(matches!(events[0], ReactorEvent::Closed(0)));
        assert_eq!(reactor.connections(), 0);
        // Sending to the retired id reports Closed rather than panicking.
        assert!(matches!(
            reactor.send(0, &Frame::Shutdown),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn wait_respects_stop() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let mut reactor = Reactor::new(listener);
        let mut events = Vec::new();
        // No peers at all: without the stop check this would spin forever.
        reactor.wait(&mut events, &|| true).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn flooding_connection_cannot_starve_the_sweep() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let mut reactor = Reactor::new(listener);
        let mut flood = transport.dial(&addr).unwrap();
        let mut quiet = transport.dial(&addr).unwrap();
        for i in 0..200 {
            flood.send(&frame(i)).unwrap();
        }
        quiet.send(&frame(9999)).unwrap();
        // One sweep caps the flooder's drain, so the quiet peer's frame is
        // seen within the first sweep rather than after 200 frames.
        let mut events = Vec::new();
        reactor.poll(&mut events).unwrap();
        let quiet_seen = events
            .iter()
            .any(|e| matches!(e, ReactorEvent::Frame(_, Frame::FetchRequest { node }) if node.raw() == 9999));
        assert!(quiet_seen, "bounded drain must reach the second peer");
        let flood_frames = events
            .iter()
            .filter(|e| matches!(e, ReactorEvent::Frame(0, _)))
            .count();
        assert!(flood_frames <= MAX_FRAMES_PER_CONN_PER_SWEEP);
    }

    proptest::proptest! {
        /// Interleaved frames from N concurrent connections through one
        /// poll loop are delivered in per-connection order, none lost.
        #[test]
        fn prop_per_connection_order_is_preserved(
            counts in proptest::collection::vec(1usize..40, 1..6),
        ) {
            let transport = InProcTransport::new();
            let listener = transport.listen(&transport.any_addr()).unwrap();
            let addr = listener.addr();
            let mut reactor = Reactor::new(listener);

            // Each sender thread streams `counts[k]` numbered frames,
            // racing the others for interleaving.
            let senders: Vec<_> = counts
                .iter()
                .enumerate()
                .map(|(k, &count)| {
                    let transport = transport.clone();
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut conn = transport.dial(&addr).unwrap();
                        for j in 0..count {
                            conn.send(&frame((k as u32) * 1000 + j as u32)).unwrap();
                        }
                        conn
                    })
                })
                .collect();

            let total: usize = counts.iter().sum();
            let mut received: std::collections::HashMap<u64, Vec<u32>> =
                std::collections::HashMap::new();
            let mut events = Vec::new();
            let mut got = 0usize;
            while got < total {
                events.clear();
                reactor.wait(&mut events, &|| false).unwrap();
                for event in events.drain(..) {
                    if let ReactorEvent::Frame(id, Frame::FetchRequest { node }) = event {
                        received.entry(id).or_default().push(node.raw());
                        got += 1;
                    }
                }
            }
            for conn in senders {
                drop(conn.join().unwrap());
            }

            // One entry per dialler, each strictly in send order.
            proptest::prop_assert_eq!(received.len(), counts.len());
            for seq in received.values() {
                let k = seq[0] / 1000;
                let expected: Vec<u32> = (0..seq.len() as u32).map(|j| k * 1000 + j).collect();
                proptest::prop_assert_eq!(seq, &expected, "per-connection order broken");
            }
        }
    }
}
