//! A readiness-driven reactor: one poll loop over many framed connections.
//!
//! PR 3 made the *fetch* path non-blocking ([`crate::flow::BatchMux`]);
//! the control path — dispatch, completion, metrics — still burned one
//! parked thread per connection: the router ran an acceptor thread plus a
//! reader thread per peer, and every storage endpoint spawned a thread per
//! inbound connection. This module replaces all of that with a single
//! [`Reactor`] per node: it multiplexes the listener
//! ([`Listener::try_accept`]) and every established connection
//! ([`crate::transport::FrameStream::try_recv`]) through one non-blocking
//! sweep, shrinking a node's thread count from O(connections) to O(1) and
//! cutting wake-up latency on the dispatch path from a channel-handoff
//! plus scheduler round trip to a poll-loop iteration.
//!
//! The [`Backoff`] ladder keeps an idle loop cheap *without* adding
//! latency to a busy one: yield between empty sweeps (each sweep is a
//! round of syscalls, so "spinning" would burn the core the peer needs —
//! see [`Backoff`]), and only once the loop has been idle for a couple of
//! milliseconds, sleep in short slices. The sleep threshold matters:
//! `thread::sleep` pays the kernel's timer slack (~50 µs) per call, so
//! sleeping between back-to-back requests would tax every exchange — a
//! service under load never descends past the yield rung.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::transport::{Connection, FrameSink, FrameStream, Listener};

/// The yield → sleep idle ladder shared by every poll loop (the reactor,
/// the batch multiplexer, the overlapped processor).
///
/// Deliberately NO spin rung: each "round" of a poll loop is a sweep of
/// read/accept syscalls, not a free pause, so spinning between sweeps
/// burns the very core the peer needs to produce the next frame — on a
/// single-CPU host that multiplies round-trip latency several-fold
/// (measured ~5× on the 64-node frontier fetch). Yielding immediately
/// hands the core over for the price of one syscall; the kernel wakes us
/// right back when nothing else is runnable.
#[derive(Debug, Default)]
pub struct Backoff {
    /// When this idle stretch began (first idle round after progress).
    idle_since: Option<Instant>,
}

/// How long into an idle stretch the loop keeps yielding before it starts
/// sleeping. Request gaps on a loaded service are microseconds, far under
/// this, so the hot path never pays `thread::sleep`'s timer-slack latency
/// (~50 µs per call); a genuinely idle loop converges to ~10 k cheap
/// sweeps per second instead of a 100 % yield-spin.
const YIELD_FOR: Duration = Duration::from_millis(2);

impl Backoff {
    /// A fresh ladder (starts at the yield rung).
    pub fn new() -> Self {
        Self::default()
    }

    /// Progress happened: restart from the yield rung.
    pub fn reset(&mut self) {
        self.idle_since = None;
    }

    /// Nothing happened this round: pay the current rung.
    pub fn idle(&mut self) {
        let since = *self.idle_since.get_or_insert_with(Instant::now);
        if since.elapsed() < YIELD_FOR {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Something a [`Reactor::poll`] sweep observed.
#[derive(Debug)]
pub enum ReactorEvent {
    /// A new inbound connection was accepted (or an outbound one
    /// registered) under this id.
    Opened(u64),
    /// A complete frame arrived on this connection.
    Frame(u64, Frame),
    /// The connection died (peer closed, transport error, or stream
    /// corruption); it has already been deregistered.
    Closed(u64),
}

struct ReactorConn {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
}

/// Most frames drained from one connection per sweep, so a flooding peer
/// cannot starve the others (order within each connection is preserved
/// regardless — the excess is simply picked up next sweep).
const MAX_FRAMES_PER_CONN_PER_SWEEP: usize = 32;

/// One node's connection multiplexer: a listener plus every accepted (or
/// registered) connection, all driven by non-blocking polls from a single
/// thread.
///
/// Frames are delivered in per-connection order — the order the peer sent
/// them — because each connection is a FIFO byte stream drained
/// sequentially; no ordering holds *across* connections.
pub struct Reactor {
    listener: Option<Box<dyn Listener>>,
    // BTreeMap so sweeps visit connections in a deterministic order.
    conns: BTreeMap<u64, ReactorConn>,
    next_id: u64,
}

impl Reactor {
    /// A reactor accepting inbound connections from `listener`.
    pub fn new(listener: Box<dyn Listener>) -> Self {
        Self {
            listener: Some(listener),
            conns: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// The address peers dial to reach this reactor's listener (empty for
    /// a listenerless reactor).
    pub fn addr(&self) -> String {
        self.listener.as_ref().map(|l| l.addr()).unwrap_or_default()
    }

    /// Registers an outbound connection (a dial this node made) under a
    /// fresh id, returning it. The connection is polled like any accepted
    /// one.
    pub fn register(&mut self, conn: Connection) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let (sink, stream) = conn.split();
        self.conns.insert(id, ReactorConn { sink, stream });
        id
    }

    /// Established connections currently registered.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Sends one frame on connection `id`.
    ///
    /// # Errors
    ///
    /// [`WireError::Closed`] when the id is unknown (the connection died
    /// and was deregistered); transport errors from the send itself.
    pub fn send(&mut self, id: u64, frame: &Frame) -> WireResult<()> {
        match self.conns.get_mut(&id) {
            Some(conn) => conn.sink.send(frame),
            None => Err(WireError::Closed),
        }
    }

    /// Drops connection `id` (no event is emitted).
    pub fn close(&mut self, id: u64) {
        self.conns.remove(&id);
    }

    /// One non-blocking sweep: accept every waiting dial, then drain each
    /// connection's ready frames (bounded per sweep), appending events in
    /// per-connection order.
    ///
    /// # Errors
    ///
    /// Only listener failures are fatal; a failing *connection* becomes a
    /// [`ReactorEvent::Closed`] event instead.
    pub fn poll(&mut self, events: &mut Vec<ReactorEvent>) -> WireResult<()> {
        if let Some(listener) = self.listener.as_mut() {
            while let Some(conn) = listener.try_accept()? {
                let id = self.next_id;
                self.next_id += 1;
                let (sink, stream) = conn.split();
                self.conns.insert(id, ReactorConn { sink, stream });
                events.push(ReactorEvent::Opened(id));
            }
        }
        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in self.conns.iter_mut() {
            for _ in 0..MAX_FRAMES_PER_CONN_PER_SWEEP {
                match conn.stream.try_recv() {
                    Ok(Some(frame)) => events.push(ReactorEvent::Frame(id, frame)),
                    Ok(None) => break,
                    // Any failure — clean close, reset, or stream
                    // corruption — retires the connection; the consumer
                    // decides whether that peer's death is fatal.
                    Err(_) => {
                        events.push(ReactorEvent::Closed(id));
                        dead.push(id);
                        break;
                    }
                }
            }
        }
        for id in dead {
            self.conns.remove(&id);
        }
        Ok(())
    }

    /// Polls until at least one event is available (or `stop` returns
    /// true), paying the [`Backoff`] ladder between empty sweeps.
    ///
    /// # Errors
    ///
    /// Propagates listener failures from [`Reactor::poll`].
    pub fn wait(
        &mut self,
        events: &mut Vec<ReactorEvent>,
        stop: &dyn Fn() -> bool,
    ) -> WireResult<()> {
        let mut backoff = Backoff::new();
        loop {
            self.poll(events)?;
            if !events.is_empty() || stop() {
                return Ok(());
            }
            backoff.idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, TcpTransport, Transport};
    use grouting_graph::NodeId;
    use std::sync::Arc;

    fn frame(i: u32) -> Frame {
        Frame::FetchRequest {
            node: NodeId::new(i),
        }
    }

    fn echo_reactor_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut reactor = Reactor::new(listener);
            let mut events = Vec::new();
            let mut served = 0;
            loop {
                reactor.wait(&mut events, &|| false).unwrap();
                for event in events.drain(..) {
                    match event {
                        ReactorEvent::Frame(id, Frame::Shutdown) => {
                            reactor.close(id);
                            return;
                        }
                        ReactorEvent::Frame(id, f) => {
                            reactor.send(id, &f).unwrap();
                            served += 1;
                        }
                        ReactorEvent::Opened(_) | ReactorEvent::Closed(_) => {}
                    }
                }
                if served > 1000 {
                    return;
                }
            }
        });

        let mut conn = transport.dial(&addr).unwrap();
        for i in 0..50 {
            assert_eq!(conn.request(&frame(i)).unwrap(), frame(i));
        }
        conn.send(&Frame::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn inproc_reactor_echoes() {
        echo_reactor_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_reactor_echoes() {
        echo_reactor_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn reactor_reports_closed_connections() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let mut reactor = Reactor::new(listener);
        let conn = transport.dial(&addr).unwrap();
        let mut events = Vec::new();
        reactor.wait(&mut events, &|| false).unwrap();
        assert!(matches!(events[0], ReactorEvent::Opened(_)));
        assert_eq!(reactor.connections(), 1);
        drop(conn);
        events.clear();
        reactor.wait(&mut events, &|| false).unwrap();
        assert!(matches!(events[0], ReactorEvent::Closed(0)));
        assert_eq!(reactor.connections(), 0);
        // Sending to the retired id reports Closed rather than panicking.
        assert!(matches!(
            reactor.send(0, &Frame::Shutdown),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn wait_respects_stop() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let mut reactor = Reactor::new(listener);
        let mut events = Vec::new();
        // No peers at all: without the stop check this would spin forever.
        reactor.wait(&mut events, &|| true).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn flooding_connection_cannot_starve_the_sweep() {
        let transport = InProcTransport::new();
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let mut reactor = Reactor::new(listener);
        let mut flood = transport.dial(&addr).unwrap();
        let mut quiet = transport.dial(&addr).unwrap();
        for i in 0..200 {
            flood.send(&frame(i)).unwrap();
        }
        quiet.send(&frame(9999)).unwrap();
        // One sweep caps the flooder's drain, so the quiet peer's frame is
        // seen within the first sweep rather than after 200 frames.
        let mut events = Vec::new();
        reactor.poll(&mut events).unwrap();
        let quiet_seen = events
            .iter()
            .any(|e| matches!(e, ReactorEvent::Frame(_, Frame::FetchRequest { node }) if node.raw() == 9999));
        assert!(quiet_seen, "bounded drain must reach the second peer");
        let flood_frames = events
            .iter()
            .filter(|e| matches!(e, ReactorEvent::Frame(0, _)))
            .count();
        assert!(flood_frames <= MAX_FRAMES_PER_CONN_PER_SWEEP);
    }

    proptest::proptest! {
        /// Interleaved frames from N concurrent connections through one
        /// poll loop are delivered in per-connection order, none lost.
        #[test]
        fn prop_per_connection_order_is_preserved(
            counts in proptest::collection::vec(1usize..40, 1..6),
        ) {
            let transport = InProcTransport::new();
            let listener = transport.listen(&transport.any_addr()).unwrap();
            let addr = listener.addr();
            let mut reactor = Reactor::new(listener);

            // Each sender thread streams `counts[k]` numbered frames,
            // racing the others for interleaving.
            let senders: Vec<_> = counts
                .iter()
                .enumerate()
                .map(|(k, &count)| {
                    let transport = transport.clone();
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut conn = transport.dial(&addr).unwrap();
                        for j in 0..count {
                            conn.send(&frame((k as u32) * 1000 + j as u32)).unwrap();
                        }
                        conn
                    })
                })
                .collect();

            let total: usize = counts.iter().sum();
            let mut received: std::collections::HashMap<u64, Vec<u32>> =
                std::collections::HashMap::new();
            let mut events = Vec::new();
            let mut got = 0usize;
            while got < total {
                events.clear();
                reactor.wait(&mut events, &|| false).unwrap();
                for event in events.drain(..) {
                    if let ReactorEvent::Frame(id, Frame::FetchRequest { node }) = event {
                        received.entry(id).or_default().push(node.raw());
                        got += 1;
                    }
                }
            }
            for conn in senders {
                drop(conn.join().unwrap());
            }

            // One entry per dialler, each strictly in send order.
            proptest::prop_assert_eq!(received.len(), counts.len());
            for seq in received.values() {
                let k = seq[0] / 1000;
                let expected: Vec<u32> = (0..seq.len() as u32).map(|j| k * 1000 + j).collect();
                proptest::prop_assert_eq!(seq, &expected, "per-connection order broken");
            }
        }
    }
}
