//! Pluggable byte transports carrying [`Frame`]s between cluster peers.
//!
//! A [`Transport`] hands out [`Listener`]s and dials [`Connection`]s; the
//! services in [`crate::service`] are written against these traits only,
//! so the same router/processor/storage loops run over:
//!
//! * [`TcpTransport`] — real loopback/LAN sockets via `std::net`, each
//!   connection a length-prefixed framed stream (`u32` little-endian
//!   payload length, then the [`Frame`] payload), with bounded-backoff
//!   dialling so peers may start in any order;
//! * [`InProcTransport`] — a hermetic in-process fabric over channels for
//!   tests and sandboxes without loopback. It still moves *encoded* bytes
//!   (not `Frame` values), so the codec is exercised on both paths.
//!
//! [`ConnectionPool`] adds the client-side discipline processors use
//! towards storage: keep idle connections, re-dial on failure, retry a
//! request exactly once on a fresh connection.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::{WireError, WireResult};
use crate::frame::{Frame, MAX_FRAME_BYTES};

/// The sending half of a framed connection.
pub trait FrameSink: Send {
    /// Writes one frame.
    fn send(&mut self, frame: &Frame) -> WireResult<()>;
}

/// The receiving half of a framed connection.
pub trait FrameStream: Send {
    /// Blocks for the next frame.
    fn recv(&mut self) -> WireResult<Frame>;

    /// Polls for a frame without blocking: `Ok(Some)` when a complete
    /// frame was ready, `Ok(None)` when the peer has sent nothing (or only
    /// a partial frame) yet. This is the primitive the batch multiplexer's
    /// readiness loop spins on to keep many in-flight exchanges moving
    /// without parking on any single connection.
    fn try_recv(&mut self) -> WireResult<Option<Frame>>;
}

/// A bidirectional framed connection between two peers.
pub struct Connection {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
}

impl Connection {
    /// Assembles a connection from its halves.
    pub fn from_halves(sink: Box<dyn FrameSink>, stream: Box<dyn FrameStream>) -> Self {
        Self { sink, stream }
    }

    /// Writes one frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn send(&mut self, frame: &Frame) -> WireResult<()> {
        self.sink.send(frame)
    }

    /// Blocks for the next frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn recv(&mut self) -> WireResult<Frame> {
        self.stream.recv()
    }

    /// Polls for a frame without blocking (see [`FrameStream::try_recv`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        self.stream.try_recv()
    }

    /// Sends one frame and waits for the reply — the unary-RPC shape of
    /// the storage fetch path.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from either direction.
    pub fn request(&mut self, frame: &Frame) -> WireResult<Frame> {
        self.send(frame)?;
        self.recv()
    }

    /// Splits into independently owned halves so a reader thread can block
    /// on `recv` while another thread writes.
    pub fn split(self) -> (Box<dyn FrameSink>, Box<dyn FrameStream>) {
        (self.sink, self.stream)
    }
}

/// An endpoint accepting inbound connections.
pub trait Listener: Send {
    /// Blocks for the next inbound connection.
    fn accept(&mut self) -> WireResult<Connection>;

    /// Polls for an inbound connection without blocking: `Ok(Some)` when a
    /// dial was waiting, `Ok(None)` when none is. This is the accept-side
    /// primitive of the readiness reactor — one poll loop can watch its
    /// listener *and* every established connection without parking a
    /// thread on either.
    fn try_accept(&mut self) -> WireResult<Option<Connection>>;

    /// The address peers dial to reach this listener.
    fn addr(&self) -> String;
}

/// A connection fabric: names addresses, listens, dials.
pub trait Transport: Send + Sync {
    /// Opens a listener. Pass [`Transport::any_addr`] to let the transport
    /// pick a free concrete address (returned by [`Listener::addr`]).
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>>;

    /// Dials a listening endpoint, retrying briefly so peers may start in
    /// any order.
    fn dial(&self, addr: &str) -> WireResult<Connection>;

    /// The wildcard address for [`Transport::listen`].
    fn any_addr(&self) -> String;
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Real sockets via `std::net`, framed with a `u32` length prefix.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    dial_attempts: u32,
    dial_backoff: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self {
            // ~2 s of patience: covers listener threads that have not
            // reached `accept` yet and services restarting mid-run.
            dial_attempts: 80,
            dial_backoff: Duration::from_millis(25),
        }
    }
}

impl TcpTransport {
    /// A transport with default dial patience.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides how long `dial` keeps retrying a refused connection.
    pub fn with_dial_patience(attempts: u32, backoff: Duration) -> Self {
        Self {
            dial_attempts: attempts.max(1),
            dial_backoff: backoff,
        }
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Box::new(TcpFrameListener {
            listener,
            nonblocking: false,
        }))
    }

    fn dial(&self, addr: &str) -> WireResult<Connection> {
        let mut last = None;
        for attempt in 0..self.dial_attempts {
            match TcpStream::connect(addr) {
                Ok(stream) => return tcp_connection(stream),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < self.dial_attempts {
                        std::thread::sleep(self.dial_backoff);
                    }
                }
            }
        }
        Err(match last {
            Some(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                WireError::Unroutable(addr.to_string())
            }
            Some(e) => e.into(),
            None => WireError::Unroutable(addr.to_string()),
        })
    }

    fn any_addr(&self) -> String {
        "127.0.0.1:0".to_string()
    }
}

fn tcp_connection(stream: TcpStream) -> WireResult<Connection> {
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok(Connection::from_halves(
        Box::new(TcpSink { stream: writer }),
        Box::new(TcpStreamHalf {
            stream,
            buf: Vec::new(),
            nonblocking: false,
        }),
    ))
}

struct TcpFrameListener {
    listener: TcpListener,
    /// Set on the first `try_accept` and never reverted (same discipline
    /// as the stream half: a listener is either blocking-driven or
    /// reactor-polled, never interleaved).
    nonblocking: bool,
}

impl Listener for TcpFrameListener {
    fn accept(&mut self) -> WireResult<Connection> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => return tcp_connection(stream),
                // Only reachable when `try_accept` switched the socket to
                // non-blocking; honour the blocking contract by waiting.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn try_accept(&mut self) -> WireResult<Option<Connection>> {
        if !self.nonblocking {
            self.listener.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        match self.listener.accept() {
            Ok((stream, _)) => tcp_connection(stream).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }
}

struct TcpSink {
    stream: TcpStream,
}

impl FrameSink for TcpSink {
    fn send(&mut self, frame: &Frame) -> WireResult<()> {
        let payload = frame.encode();
        let len = payload.len() as u32;
        write_all_blocking(&mut self.stream, &len.to_le_bytes())?;
        write_all_blocking(&mut self.stream, &payload)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// `write_all` that tolerates a socket left in non-blocking mode: the
/// stream half of a polled connection switches the (shared) socket to
/// non-blocking on its first `try_recv` and leaves it there, so sends on
/// the same connection must treat `WouldBlock` as "kernel buffer full,
/// retry" rather than an error.
fn write_all_blocking(stream: &mut TcpStream, mut buf: &[u8]) -> WireResult<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(WireError::Closed),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

struct TcpStreamHalf {
    stream: TcpStream,
    /// Bytes read off the socket but not yet assembled into a frame —
    /// non-blocking reads can land mid-frame, so partial input parks here
    /// between polls.
    buf: Vec<u8>,
    /// Whether the socket has been switched to non-blocking mode. Set on
    /// the first `try_recv` and never reverted, so a polling caller pays
    /// the fcntl once instead of twice per poll; a connection is driven
    /// either blocking (service loops) or polled (the batch multiplexer),
    /// never interleaved.
    nonblocking: bool,
}

impl TcpStreamHalf {
    /// Pops one complete frame off the front of `buf`, if present.
    fn parse_buffered(&mut self) -> WireResult<Option<Frame>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Codec(format!(
                "frame length {len} exceeds cap {MAX_FRAME_BYTES}"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        // Split the frame off the front with bulk moves, not per-byte
        // iteration: `buf` keeps the tail, `payload` keeps the frame.
        let tail = self.buf.split_off(4 + len);
        let mut payload = std::mem::replace(&mut self.buf, tail);
        payload.drain(..4);
        Frame::decode(Bytes::from(payload)).map(Some)
    }
}

impl FrameStream for TcpStreamHalf {
    fn recv(&mut self) -> WireResult<Frame> {
        loop {
            if let Some(frame) = self.parse_buffered()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                // Only reachable when `try_recv` has been used on this
                // connection too; honour the blocking contract by waiting.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        if let Some(frame) = self.parse_buffered()? {
            return Ok(Some(frame));
        }
        if !self.nonblocking {
            self.stream.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        let mut closed = false;
        loop {
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // A frame completed by the final reads before EOF still counts;
        // the close surfaces on the next poll.
        if let Some(frame) = self.parse_buffered()? {
            return Ok(Some(frame));
        }
        if closed {
            return Err(WireError::Closed);
        }
        Ok(None)
    }
}

// ---------------------------------------------------------------------------
// In-process
// ---------------------------------------------------------------------------

type Registry = Arc<Mutex<HashMap<String, Sender<Connection>>>>;

/// A hermetic in-process fabric: listeners are names in a shared registry,
/// connections are channel pairs carrying *encoded* frames.
#[derive(Clone, Default)]
pub struct InProcTransport {
    registry: Registry,
    next_name: Arc<AtomicU64>,
}

impl InProcTransport {
    /// A fresh, empty fabric (addresses are scoped to this instance).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for InProcTransport {
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>> {
        let name = if addr.is_empty() || addr == self.any_addr() {
            format!("inproc:{}", self.next_name.fetch_add(1, Ordering::Relaxed))
        } else {
            addr.to_string()
        };
        let (tx, rx) = unbounded();
        let mut reg = self.registry.lock().expect("registry poisoned");
        if reg.contains_key(&name) {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("inproc address {name} already bound"),
            )));
        }
        reg.insert(name.clone(), tx);
        drop(reg);
        Ok(Box::new(InProcListener {
            name,
            inbox: rx,
            registry: Arc::clone(&self.registry),
        }))
    }

    fn dial(&self, addr: &str) -> WireResult<Connection> {
        let acceptor = {
            let reg = self.registry.lock().expect("registry poisoned");
            reg.get(addr).cloned()
        };
        let Some(acceptor) = acceptor else {
            return Err(WireError::Unroutable(addr.to_string()));
        };
        let (client_tx, server_rx) = unbounded::<Bytes>();
        let (server_tx, client_rx) = unbounded::<Bytes>();
        let server_side = Connection::from_halves(
            Box::new(ChanSink { tx: server_tx }),
            Box::new(ChanStream { rx: server_rx }),
        );
        acceptor
            .send(server_side)
            .map_err(|_| WireError::Unroutable(addr.to_string()))?;
        Ok(Connection::from_halves(
            Box::new(ChanSink { tx: client_tx }),
            Box::new(ChanStream { rx: client_rx }),
        ))
    }

    fn any_addr(&self) -> String {
        "inproc:any".to_string()
    }
}

struct InProcListener {
    name: String,
    inbox: Receiver<Connection>,
    registry: Registry,
}

impl Listener for InProcListener {
    fn accept(&mut self) -> WireResult<Connection> {
        self.inbox.recv().map_err(|_| WireError::Closed)
    }

    fn try_accept(&mut self) -> WireResult<Option<Connection>> {
        use crossbeam::channel::TryRecvError;
        match self.inbox.try_recv() {
            Ok(conn) => Ok(Some(conn)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WireError::Closed),
        }
    }

    fn addr(&self) -> String {
        self.name.clone()
    }
}

impl Drop for InProcListener {
    fn drop(&mut self) {
        if let Ok(mut reg) = self.registry.lock() {
            reg.remove(&self.name);
        }
    }
}

struct ChanSink {
    tx: Sender<Bytes>,
}

impl FrameSink for ChanSink {
    fn send(&mut self, frame: &Frame) -> WireResult<()> {
        self.tx.send(frame.encode()).map_err(|_| WireError::Closed)
    }
}

struct ChanStream {
    rx: Receiver<Bytes>,
}

impl FrameStream for ChanStream {
    fn recv(&mut self) -> WireResult<Frame> {
        let payload = self.rx.recv().map_err(|_| WireError::Closed)?;
        Frame::decode(payload)
    }

    fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(payload) => Frame::decode(payload).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WireError::Closed),
        }
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// A small client-side connection pool to one address, with reconnect.
///
/// Used by processors towards storage endpoints: requests check a
/// connection out, run one send/recv exchange, and check it back in. A
/// failed exchange drops the (presumed dead) connection and retries once
/// on a freshly dialled one, which masks storage restarts.
pub struct ConnectionPool {
    transport: Arc<dyn Transport>,
    addr: String,
    idle: Vec<Connection>,
    max_idle: usize,
    reconnects: u64,
}

impl ConnectionPool {
    /// A pool towards `addr` keeping at most `max_idle` parked connections.
    pub fn new(transport: Arc<dyn Transport>, addr: impl Into<String>, max_idle: usize) -> Self {
        Self {
            transport,
            addr: addr.into(),
            idle: Vec::new(),
            max_idle: max_idle.max(1),
            reconnects: 0,
        }
    }

    /// The address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Times a request hit a dead connection and was retried on a fresh
    /// dial.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn checkout(&mut self) -> WireResult<Connection> {
        match self.idle.pop() {
            Some(conn) => Ok(conn),
            None => self.transport.dial(&self.addr),
        }
    }

    fn checkin(&mut self, conn: Connection) {
        if self.idle.len() < self.max_idle {
            self.idle.push(conn);
        }
    }

    /// One unary exchange with reconnect-once semantics.
    ///
    /// # Errors
    ///
    /// Returns the second failure when both the pooled connection and a
    /// fresh dial fail.
    pub fn request(&mut self, frame: &Frame) -> WireResult<Frame> {
        let had_idle = !self.idle.is_empty();
        let mut conn = self.checkout()?;
        match conn.request(frame) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(_) if had_idle => {
                // The parked connection went stale (peer restarted):
                // drop it and retry exactly once on a fresh dial.
                drop(conn);
                self.reconnects += 1;
                let mut fresh = self.transport.dial(&self.addr)?;
                let reply = fresh.request(frame)?;
                self.checkin(fresh);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::NodeId;

    fn echo_server(listener: Box<dyn Listener>, serve_conns: usize) -> std::thread::JoinHandle<()> {
        let mut listener = listener;
        std::thread::spawn(move || {
            for _ in 0..serve_conns {
                let Ok(mut conn) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || {
                    while let Ok(frame) = conn.recv() {
                        if matches!(frame, Frame::Shutdown) {
                            break;
                        }
                        if conn.send(&frame).is_err() {
                            break;
                        }
                    }
                });
            }
        })
    }

    fn frame(i: u32) -> Frame {
        Frame::FetchRequest {
            node: NodeId::new(i),
        }
    }

    fn round_trips_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = echo_server(listener, 1);
        let mut conn = transport.dial(&addr).unwrap();
        for i in 0..50 {
            assert_eq!(conn.request(&frame(i)).unwrap(), frame(i));
        }
        conn.send(&Frame::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn inproc_round_trips() {
        round_trips_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_round_trips() {
        round_trips_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn inproc_dial_unknown_address_fails() {
        let t = InProcTransport::new();
        assert!(matches!(
            t.dial("inproc:nobody"),
            Err(WireError::Unroutable(_))
        ));
    }

    #[test]
    fn inproc_listener_drop_unbinds() {
        let t = InProcTransport::new();
        let listener = t.listen("inproc:tmp").unwrap();
        drop(listener);
        assert!(t.dial("inproc:tmp").is_err());
        // The name is free again.
        let again = t.listen("inproc:tmp").unwrap();
        assert_eq!(again.addr(), "inproc:tmp");
    }

    #[test]
    fn inproc_rejects_double_bind() {
        let t = InProcTransport::new();
        let _keep = t.listen("inproc:one").unwrap();
        assert!(t.listen("inproc:one").is_err());
    }

    #[test]
    fn tcp_dial_without_listener_errors() {
        let t = TcpTransport::with_dial_patience(2, Duration::from_millis(1));
        assert!(t.dial("127.0.0.1:1").is_err());
    }

    #[test]
    fn recv_reports_closed_when_peer_drops() {
        let t = InProcTransport::new();
        let mut listener = t.listen(&t.any_addr()).unwrap();
        let addr = listener.addr();
        let conn = t.dial(&addr).unwrap();
        let mut server_side = listener.accept().unwrap();
        drop(conn);
        assert!(matches!(server_side.recv(), Err(WireError::Closed)));
    }

    fn pool_reconnects_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        // Serve two connections in sequence: the pool's first connection
        // dies after one exchange, forcing a reconnect for the second.
        let mut listener = listener;
        let server = std::thread::spawn(move || {
            for served in 0..2 {
                let mut conn = listener.accept().unwrap();
                loop {
                    match conn.recv() {
                        Ok(Frame::Shutdown) | Err(_) => break,
                        Ok(f) => {
                            conn.send(&f).unwrap();
                            if served == 0 {
                                break; // Die after the first reply.
                            }
                        }
                    }
                }
            }
        });

        let mut pool = ConnectionPool::new(transport, addr, 2);
        assert_eq!(pool.request(&frame(1)).unwrap(), frame(1));
        // The parked connection is now dead server-side; the next request
        // must transparently re-dial.
        assert_eq!(pool.request(&frame(2)).unwrap(), frame(2));
        assert_eq!(pool.reconnects(), 1);
        // Dropping the pool closes its parked connection; the server's
        // second serving loop sees the close and exits.
        drop(pool);
        server.join().unwrap();
    }

    #[test]
    fn inproc_pool_reconnects_after_peer_death() {
        pool_reconnects_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_pool_reconnects_after_peer_death() {
        pool_reconnects_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn oversized_tcp_frame_is_rejected() {
        let t = TcpTransport::new();
        let mut listener = t.listen(&t.any_addr()).unwrap();
        let addr = listener.addr();
        let writer = std::thread::spawn(move || {
            let mut raw = TcpStream::connect(addr).unwrap();
            let huge = (MAX_FRAME_BYTES as u32) + 1;
            raw.write_all(&huge.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            // Hold the socket open until the reader has judged the length.
            std::thread::sleep(Duration::from_millis(100));
        });
        let mut conn = listener.accept().unwrap();
        assert!(matches!(conn.recv(), Err(WireError::Codec(_))));
        writer.join().unwrap();
    }
}
