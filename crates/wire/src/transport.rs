//! Pluggable byte transports carrying [`Frame`]s between cluster peers.
//!
//! A [`Transport`] hands out [`Listener`]s and dials [`Connection`]s; the
//! services in [`crate::service`] are written against these traits only,
//! so the same router/processor/storage loops run over:
//!
//! * [`TcpTransport`] — real loopback/LAN sockets via `std::net`, each
//!   connection a length-prefixed framed stream (`u32` little-endian
//!   payload length, then the [`Frame`] payload), with bounded-backoff
//!   dialling so peers may start in any order;
//! * [`InProcTransport`] — a hermetic in-process fabric over channels for
//!   tests and sandboxes without loopback. It still moves *encoded* bytes
//!   (not `Frame` values), so the codec is exercised on both paths.
//!
//! [`ConnectionPool`] adds the client-side discipline processors use
//! towards storage: keep idle connections, re-dial on failure, retry a
//! request exactly once on a fresh connection.
//!
//! The TCP data plane is zero-copy on both directions: receives land in
//! pooled buffers ([`bytes::BufferPool`]) out of which frame payloads are
//! decoded as `Arc`-backed slice views (no per-payload copy), and sends of
//! payload-bearing frames above [`VECTORED_SEND_MIN_BYTES`] go out through
//! `write_vectored` as `[len][meta][payload…]` scatter-gather lists
//! instead of being flattened into one allocation.

use std::collections::HashMap;
use std::io::{IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::{Buf, BufferPool, Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use grouting_metrics::log_warn;

use crate::error::{WireError, WireResult};
use crate::frame::{Frame, MAX_FRAME_BYTES};

/// The sending half of a framed connection.
pub trait FrameSink: Send {
    /// Writes one frame.
    fn send(&mut self, frame: &Frame) -> WireResult<()>;

    /// Writes only the first `keep` bytes of the frame's encoding and
    /// stops — the fault-injection layer's mid-frame truncation primitive.
    /// The peer is left holding a partial frame: on TCP its stream stalls
    /// until the connection closes, in-process the short payload decodes
    /// as a codec error. Sinks that cannot express a partial write (the
    /// default) send nothing at all, which a reader observes the same way
    /// once the connection drops.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from the partial write.
    fn send_truncated(&mut self, frame: &Frame, keep: usize) -> WireResult<()> {
        let _ = (frame, keep);
        Ok(())
    }
}

/// The receiving half of a framed connection.
pub trait FrameStream: Send {
    /// Blocks for the next frame.
    fn recv(&mut self) -> WireResult<Frame>;

    /// Polls for a frame without blocking: `Ok(Some)` when a complete
    /// frame was ready, `Ok(None)` when the peer has sent nothing (or only
    /// a partial frame) yet. This is the primitive the batch multiplexer's
    /// readiness loop spins on to keep many in-flight exchanges moving
    /// without parking on any single connection.
    ///
    /// Readiness contract: `Ok(None)` means the stream holds no complete
    /// buffered frame *and* the underlying source is drained (a socket
    /// read hit `WouldBlock`) — so a level-triggered readiness poller may
    /// safely block until the source becomes readable again.
    fn try_recv(&mut self) -> WireResult<Option<Frame>>;

    /// The underlying OS file descriptor, when the stream is backed by
    /// one — lets a readiness poller track the connection in the kernel.
    /// Fd-less streams (in-process channels) return `None` and get swept.
    fn raw_fd(&self) -> Option<i32> {
        None
    }

    /// Buffer-pool counters as `(checkouts, reused, free_now)` when the
    /// stream receives into a pool — monotonic totals a telemetry sampler
    /// turns into deltas. Pool-less streams return `None`.
    fn pool_stats(&self) -> Option<(u64, u64, u64)> {
        None
    }
}

/// A bidirectional framed connection between two peers.
pub struct Connection {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
}

impl Connection {
    /// Assembles a connection from its halves.
    pub fn from_halves(sink: Box<dyn FrameSink>, stream: Box<dyn FrameStream>) -> Self {
        Self { sink, stream }
    }

    /// Writes one frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn send(&mut self, frame: &Frame) -> WireResult<()> {
        self.sink.send(frame)
    }

    /// Blocks for the next frame.
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn recv(&mut self) -> WireResult<Frame> {
        self.stream.recv()
    }

    /// Polls for a frame without blocking (see [`FrameStream::try_recv`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures ([`WireError::Closed`] when the peer
    /// is gone).
    pub fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        self.stream.try_recv()
    }

    /// Sends one frame and waits for the reply — the unary-RPC shape of
    /// the storage fetch path.
    ///
    /// # Errors
    ///
    /// Propagates transport failures from either direction.
    pub fn request(&mut self, frame: &Frame) -> WireResult<Frame> {
        self.send(frame)?;
        self.recv()
    }

    /// Splits into independently owned halves so a reader thread can block
    /// on `recv` while another thread writes.
    pub fn split(self) -> (Box<dyn FrameSink>, Box<dyn FrameStream>) {
        (self.sink, self.stream)
    }

    /// The receive half's raw fd, when socket-backed (see
    /// [`FrameStream::raw_fd`]).
    pub fn raw_fd(&self) -> Option<i32> {
        self.stream.raw_fd()
    }
}

/// An endpoint accepting inbound connections.
pub trait Listener: Send {
    /// Blocks for the next inbound connection.
    fn accept(&mut self) -> WireResult<Connection>;

    /// Polls for an inbound connection without blocking: `Ok(Some)` when a
    /// dial was waiting, `Ok(None)` when none is. This is the accept-side
    /// primitive of the readiness reactor — one poll loop can watch its
    /// listener *and* every established connection without parking a
    /// thread on either.
    fn try_accept(&mut self) -> WireResult<Option<Connection>>;

    /// The address peers dial to reach this listener.
    fn addr(&self) -> String;

    /// The listening socket's raw fd, when OS-backed (see
    /// [`FrameStream::raw_fd`] for the contract).
    fn raw_fd(&self) -> Option<i32> {
        None
    }
}

/// A connection fabric: names addresses, listens, dials.
pub trait Transport: Send + Sync {
    /// Opens a listener. Pass [`Transport::any_addr`] to let the transport
    /// pick a free concrete address (returned by [`Listener::addr`]).
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>>;

    /// Dials a listening endpoint, retrying briefly so peers may start in
    /// any order.
    fn dial(&self, addr: &str) -> WireResult<Connection>;

    /// Dials with a single attempt and no internal patience — the
    /// primitive failover paths use so a dead endpoint fails in one round
    /// trip and the caller's own backoff ladder (see [`RetryPolicy`])
    /// paces the retries. Defaults to [`Transport::dial`] for transports
    /// whose dial is already instantaneous.
    ///
    /// # Errors
    ///
    /// [`WireError::Unroutable`] when nothing listens at `addr`.
    fn dial_once(&self, addr: &str) -> WireResult<Connection> {
        self.dial(addr)
    }

    /// The wildcard address for [`Transport::listen`].
    fn any_addr(&self) -> String;
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

/// Longest single pause of the backoff ladder, whatever the base.
const MAX_RETRY_DELAY: Duration = Duration::from_millis(500);

/// Bounded exponential backoff with deterministic jitter, shared by every
/// client-side redial path (the batch multiplexer and the scalar
/// connection pools). `GROUTING_RETRY=attempts:base_ms` overrides the
/// defaults; the jitter is a pure function of `(attempt, salt)` so a
/// seeded run retries on an identical schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Dial attempts before giving up (≥ 1).
    pub attempts: u32,
    /// First pause; each later pause doubles, capped at 500 ms.
    pub base: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 25, 50, 100, 200, 400, 500, 500 ms of pauses (~1.7 s of
        // patience): comparable to the dialler's historic startup grace
        // but strictly bounded, so a truly dead endpoint fails over to a
        // replica instead of hanging a fetch.
        Self {
            attempts: 8,
            base: Duration::from_millis(25),
        }
    }
}

impl RetryPolicy {
    /// A policy with explicit attempt count and base pause.
    pub fn new(attempts: u32, base: Duration) -> Self {
        Self {
            attempts: attempts.max(1),
            base,
        }
    }

    /// Reads `GROUTING_RETRY=attempts:base_ms`. Invalid values warn via
    /// `GROUTING_LOG`, naming the value, and fall back to the default.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_RETRY") {
            Ok(raw) => match Self::parse(&raw) {
                Some(policy) => policy,
                None => {
                    log_warn!(
                        "invalid GROUTING_RETRY value {raw:?} (expected attempts:base_ms, \
                         e.g. 4:10); using default"
                    );
                    Self::default()
                }
            },
            Err(_) => Self::default(),
        }
    }

    fn parse(raw: &str) -> Option<Self> {
        let (attempts, base_ms) = raw.split_once(':')?;
        let attempts: u32 = attempts.trim().parse().ok()?;
        let base_ms: u64 = base_ms.trim().parse().ok()?;
        if attempts == 0 {
            return None;
        }
        Some(Self {
            attempts,
            base: Duration::from_millis(base_ms),
        })
    }

    /// The pause after failed attempt number `attempt` (0-based):
    /// `base · 2^attempt` capped at 500 ms, plus up to 25 % deterministic
    /// jitter derived from `(attempt, salt)` — distinct salts (one per
    /// endpoint) de-synchronise a thundering herd of redials without
    /// sacrificing reproducibility.
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(MAX_RETRY_DELAY);
        // xorshift64* of the (attempt, salt) pair: deterministic jitter.
        let mut x = salt
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt) + 1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let jitter_frac = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u32; // 0..=255
        exp + exp.mul_f64(f64::from(jitter_frac) / 1024.0)
    }

    /// Dials `addr` through the ladder: single-attempt dials, sleeping
    /// [`RetryPolicy::delay`] between failures.
    ///
    /// # Errors
    ///
    /// The final attempt's error once the ladder is exhausted.
    pub fn dial(&self, transport: &dyn Transport, addr: &str, salt: u64) -> WireResult<Connection> {
        let mut last = None;
        for attempt in 0..self.attempts {
            match transport.dial_once(addr) {
                Ok(conn) => return Ok(conn),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < self.attempts {
                        std::thread::sleep(self.delay(attempt, salt));
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| WireError::Unroutable(addr.to_string())))
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// Real sockets via `std::net`, framed with a `u32` length prefix.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    dial_attempts: u32,
    dial_backoff: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self {
            // ~2 s of patience: covers listener threads that have not
            // reached `accept` yet and services restarting mid-run.
            dial_attempts: 80,
            dial_backoff: Duration::from_millis(25),
        }
    }
}

impl TcpTransport {
    /// A transport with default dial patience.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides how long `dial` keeps retrying a refused connection.
    pub fn with_dial_patience(attempts: u32, backoff: Duration) -> Self {
        Self {
            dial_attempts: attempts.max(1),
            dial_backoff: backoff,
        }
    }
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>> {
        let listener = bind_reusable(addr)?;
        Ok(Box::new(TcpFrameListener {
            listener,
            nonblocking: false,
        }))
    }

    fn dial(&self, addr: &str) -> WireResult<Connection> {
        let mut last = None;
        for attempt in 0..self.dial_attempts {
            match TcpStream::connect(addr) {
                Ok(stream) => return tcp_connection(stream),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < self.dial_attempts {
                        std::thread::sleep(self.dial_backoff);
                    }
                }
            }
        }
        Err(match last {
            Some(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                WireError::Unroutable(addr.to_string())
            }
            Some(e) => e.into(),
            None => WireError::Unroutable(addr.to_string()),
        })
    }

    fn dial_once(&self, addr: &str) -> WireResult<Connection> {
        match TcpStream::connect(addr) {
            Ok(stream) => tcp_connection(stream),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                Err(WireError::Unroutable(addr.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn any_addr(&self) -> String {
        "127.0.0.1:0".to_string()
    }
}

/// Binds a listening socket with `SO_REUSEADDR` on Linux, so a restarted
/// service can reclaim its concrete address even while connections it
/// accepted there linger in `TIME_WAIT` — the chaos harness's
/// kill-and-rebind path. Wildcard (`:0`) binds and other platforms go
/// through the plain `std` bind.
fn bind_reusable(addr: &str) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        if let Ok(parsed) = addr.parse::<std::net::SocketAddrV4>() {
            if parsed.port() != 0 {
                if let Ok(listener) = crate::sys::tcp_listen_reuseaddr(&parsed) {
                    return Ok(listener);
                }
            }
        }
    }
    TcpListener::bind(addr)
}

fn tcp_connection(stream: TcpStream) -> WireResult<Connection> {
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok(Connection::from_halves(
        Box::new(TcpSink { stream: writer }),
        Box::new(TcpStreamHalf::new(stream)),
    ))
}

struct TcpFrameListener {
    listener: TcpListener,
    /// Set on the first `try_accept` and never reverted (same discipline
    /// as the stream half: a listener is either blocking-driven or
    /// reactor-polled, never interleaved).
    nonblocking: bool,
}

impl Listener for TcpFrameListener {
    fn accept(&mut self) -> WireResult<Connection> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => return tcp_connection(stream),
                // Only reachable when `try_accept` switched the socket to
                // non-blocking; honour the blocking contract by waiting.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn try_accept(&mut self) -> WireResult<Option<Connection>> {
        if !self.nonblocking {
            self.listener.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        match self.listener.accept() {
            Ok((stream, _)) => tcp_connection(stream).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default()
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(self.listener.as_raw_fd())
    }
}

struct TcpSink {
    stream: TcpStream,
}

/// Below this many payload bytes a frame is flattened into one buffer and
/// sent with a single `write` — for small frames the syscall saved beats
/// the copy avoided. At or above it, the length prefix, the encoded meta
/// sections, and every payload view go out through one `write_vectored`
/// scatter-gather list, so a large batch response is never flattened into
/// a fresh allocation.
const VECTORED_SEND_MIN_BYTES: usize = 4096;

impl FrameSink for TcpSink {
    fn send(&mut self, frame: &Frame) -> WireResult<()> {
        let chunks = frame.encode_chunks();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let len = (total as u32).to_le_bytes();
        if chunks.len() == 1 || total < VECTORED_SEND_MIN_BYTES {
            let mut flat = Vec::with_capacity(4 + total);
            flat.extend_from_slice(&len);
            for chunk in &chunks {
                flat.extend_from_slice(chunk);
            }
            write_all_blocking(&mut self.stream, &flat)?;
        } else {
            let mut parts: Vec<&[u8]> = Vec::with_capacity(1 + chunks.len());
            parts.push(&len);
            parts.extend(chunks.iter().map(|c| &c[..]));
            write_vectored_all(&mut self.stream, &parts)?;
        }
        self.stream.flush()?;
        Ok(())
    }

    fn send_truncated(&mut self, frame: &Frame, keep: usize) -> WireResult<()> {
        // Flatten [len][payload…] and cut at `keep` raw bytes: the peer
        // sees a frame header promising more bytes than ever arrive.
        let chunks = frame.encode_chunks();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let mut flat = Vec::with_capacity(4 + total);
        flat.extend_from_slice(&(total as u32).to_le_bytes());
        for chunk in &chunks {
            flat.extend_from_slice(chunk);
        }
        flat.truncate(keep.min(flat.len().saturating_sub(1)).max(1));
        write_all_blocking(&mut self.stream, &flat)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// A full socket buffer on a (possibly non-blocking) socket: wait for
/// write readiness instead of spinning. On Linux this parks in `poll`
/// until the kernel drains; elsewhere a yield-then-sleep pause paces the
/// retries without burning the core the reader needs.
#[cfg(target_os = "linux")]
fn wait_for_writable(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    let _ = crate::sys::wait_writable(stream.as_raw_fd(), Duration::from_millis(25));
}

#[cfg(not(target_os = "linux"))]
fn wait_for_writable(_stream: &TcpStream) {
    std::thread::yield_now();
    std::thread::sleep(Duration::from_micros(100));
}

/// `write_all` that tolerates a socket left in non-blocking mode: the
/// stream half of a polled connection switches the (shared) socket to
/// non-blocking on its first `try_recv` and leaves it there, so sends on
/// the same connection must treat `WouldBlock` as "kernel buffer full,
/// wait for writability" rather than an error.
fn write_all_blocking(stream: &mut TcpStream, mut buf: &[u8]) -> WireResult<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(WireError::Closed),
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => wait_for_writable(stream),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Writes the concatenation of `parts` with `write_vectored`, batching at
/// most [`MAX_WRITE_SLICES`] slices per syscall and resuming mid-part
/// after short writes. Same `WouldBlock` discipline as
/// [`write_all_blocking`].
fn write_vectored_all(stream: &mut TcpStream, parts: &[&[u8]]) -> WireResult<()> {
    const MAX_WRITE_SLICES: usize = 64;
    let mut idx = 0usize;
    let mut off = 0usize;
    loop {
        // Skip exhausted (or empty) parts.
        while idx < parts.len() && off >= parts[idx].len() {
            idx += 1;
            off = 0;
        }
        if idx >= parts.len() {
            return Ok(());
        }
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(MAX_WRITE_SLICES);
        for (i, part) in parts.iter().enumerate().skip(idx).take(MAX_WRITE_SLICES) {
            let p = if i == idx { &part[off..] } else { part };
            if !p.is_empty() {
                slices.push(IoSlice::new(p));
            }
        }
        match stream.write_vectored(&slices) {
            Ok(0) => return Err(WireError::Closed),
            Ok(mut n) => {
                // Advance the (part, offset) cursor past the bytes the
                // kernel took, which may end mid-part.
                while n > 0 {
                    let remaining = parts[idx].len() - off;
                    if n >= remaining {
                        n -= remaining;
                        idx += 1;
                        off = 0;
                    } else {
                        off += n;
                        n = 0;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => wait_for_writable(stream),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Capacity of each pooled receive buffer. Most frames are far smaller
/// (a buffer accumulates many); larger frames simply grow the `Vec`
/// underneath and the grown allocation is pooled all the same.
const RECV_BUFFER_CAPACITY: usize = 64 << 10;
/// Free receive buffers retained per connection.
const RECV_POOL_BUFFERS: usize = 4;

struct TcpStreamHalf {
    stream: TcpStream,
    /// Recycles receive buffers so a long-lived connection stops
    /// allocating once warm. Reclamation is `Arc`-gated: a buffer re-enters
    /// the free list only when no decoded payload view references it.
    pool: BufferPool,
    /// Frozen prefix of the unconsumed receive sequence. Complete frames
    /// are sliced out of here zero-copy (payloads stay `Arc`-backed views
    /// into this buffer) and the cursor advanced past them.
    frozen: Bytes,
    /// Accumulating tail: bytes read off the socket after `frozen` froze.
    /// Non-blocking reads can land mid-frame, so partial input parks here
    /// between polls. Invariant: unconsumed bytes = `frozen` ++ `acc`.
    acc: BytesMut,
    /// Whether the socket has been switched to non-blocking mode. Set on
    /// the first `try_recv` and never reverted, so a polling caller pays
    /// the fcntl once instead of twice per poll; a connection is driven
    /// either blocking (service loops) or polled (the batch multiplexer),
    /// never interleaved.
    nonblocking: bool,
}

impl TcpStreamHalf {
    fn new(stream: TcpStream) -> Self {
        let mut pool = BufferPool::new(RECV_BUFFER_CAPACITY, RECV_POOL_BUFFERS);
        let acc = pool.checkout();
        Self {
            stream,
            pool,
            frozen: Bytes::new(),
            acc,
            nonblocking: false,
        }
    }

    fn buffered(&self) -> usize {
        self.frozen.len() + self.acc.len()
    }

    /// Reads the 4-byte length prefix (possibly spanning the frozen/acc
    /// boundary) without consuming it.
    fn peek_len(&self) -> WireResult<usize> {
        let mut hdr = [0u8; 4];
        for (i, b) in hdr.iter_mut().enumerate() {
            *b = if i < self.frozen.len() {
                self.frozen[i]
            } else {
                self.acc[i - self.frozen.len()]
            };
        }
        let len = u32::from_le_bytes(hdr) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::Codec(format!(
                "frame length {len} exceeds cap {MAX_FRAME_BYTES}"
            )));
        }
        Ok(len)
    }

    /// Moves every unconsumed byte into `frozen`: a zero-copy freeze of
    /// the accumulator when the frozen prefix is exhausted, one bulk copy
    /// into a pooled buffer otherwise.
    fn consolidate(&mut self) {
        let old = if self.frozen.is_empty() {
            let acc = std::mem::replace(&mut self.acc, self.pool.checkout());
            std::mem::replace(&mut self.frozen, acc.freeze())
        } else {
            let mut merged = self.pool.checkout();
            merged.extend_from_slice(&self.frozen);
            merged.extend_from_slice(&self.acc);
            self.acc.clear();
            std::mem::replace(&mut self.frozen, merged.freeze())
        };
        self.pool.checkin(old);
    }

    /// Pops one complete frame off the front of the buffered bytes, if
    /// present — payloads decoded as zero-copy views into the frozen
    /// receive buffer.
    fn parse_buffered(&mut self) -> WireResult<Option<Frame>> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let len = self.peek_len()?;
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        if self.frozen.len() < 4 + len {
            // The frame spans the frozen/acc boundary: merge once. Any
            // received byte is copied at most twice in its lifetime
            // (socket → acc, acc → merged).
            self.consolidate();
        }
        let payload = self.frozen.slice(4..4 + len);
        self.frozen.advance(4 + len);
        let frame = Frame::decode(payload);
        if self.frozen.is_empty() {
            // Fully consumed: offer the allocation back to the pool. It is
            // reclaimed only once no payload view of it is alive.
            let old = std::mem::replace(&mut self.frozen, Bytes::new());
            self.pool.checkin(old);
        }
        frame.map(Some)
    }
}

impl FrameStream for TcpStreamHalf {
    fn recv(&mut self) -> WireResult<Frame> {
        loop {
            if let Some(frame) = self.parse_buffered()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireError::Closed),
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                // Only reachable when `try_recv` has been used on this
                // connection too; honour the blocking contract by waiting.
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        if let Some(frame) = self.parse_buffered()? {
            return Ok(Some(frame));
        }
        if !self.nonblocking {
            self.stream.set_nonblocking(true)?;
            self.nonblocking = true;
        }
        let mut closed = false;
        loop {
            let mut chunk = [0u8; 16 << 10];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    self.acc.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // A frame completed by the final reads before EOF still counts;
        // the close surfaces on the next poll.
        if let Some(frame) = self.parse_buffered()? {
            return Ok(Some(frame));
        }
        if closed {
            return Err(WireError::Closed);
        }
        Ok(None)
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        Some(self.stream.as_raw_fd())
    }

    fn pool_stats(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.pool.checkouts(),
            self.pool.reused(),
            self.pool.available() as u64,
        ))
    }
}

// ---------------------------------------------------------------------------
// In-process
// ---------------------------------------------------------------------------

type Registry = Arc<Mutex<HashMap<String, Sender<Connection>>>>;

/// A hermetic in-process fabric: listeners are names in a shared registry,
/// connections are channel pairs carrying *encoded* frames.
#[derive(Clone, Default)]
pub struct InProcTransport {
    registry: Registry,
    next_name: Arc<AtomicU64>,
}

impl InProcTransport {
    /// A fresh, empty fabric (addresses are scoped to this instance).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for InProcTransport {
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>> {
        let name = if addr.is_empty() || addr == self.any_addr() {
            format!("inproc:{}", self.next_name.fetch_add(1, Ordering::Relaxed))
        } else {
            addr.to_string()
        };
        let (tx, rx) = unbounded();
        let mut reg = self.registry.lock().expect("registry poisoned");
        if reg.contains_key(&name) {
            return Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("inproc address {name} already bound"),
            )));
        }
        reg.insert(name.clone(), tx);
        drop(reg);
        Ok(Box::new(InProcListener {
            name,
            inbox: rx,
            registry: Arc::clone(&self.registry),
        }))
    }

    fn dial(&self, addr: &str) -> WireResult<Connection> {
        let acceptor = {
            let reg = self.registry.lock().expect("registry poisoned");
            reg.get(addr).cloned()
        };
        let Some(acceptor) = acceptor else {
            return Err(WireError::Unroutable(addr.to_string()));
        };
        let (client_tx, server_rx) = unbounded::<Bytes>();
        let (server_tx, client_rx) = unbounded::<Bytes>();
        let server_side = Connection::from_halves(
            Box::new(ChanSink { tx: server_tx }),
            Box::new(ChanStream { rx: server_rx }),
        );
        acceptor
            .send(server_side)
            .map_err(|_| WireError::Unroutable(addr.to_string()))?;
        Ok(Connection::from_halves(
            Box::new(ChanSink { tx: client_tx }),
            Box::new(ChanStream { rx: client_rx }),
        ))
    }

    fn any_addr(&self) -> String {
        "inproc:any".to_string()
    }
}

struct InProcListener {
    name: String,
    inbox: Receiver<Connection>,
    registry: Registry,
}

impl Listener for InProcListener {
    fn accept(&mut self) -> WireResult<Connection> {
        self.inbox.recv().map_err(|_| WireError::Closed)
    }

    fn try_accept(&mut self) -> WireResult<Option<Connection>> {
        use crossbeam::channel::TryRecvError;
        match self.inbox.try_recv() {
            Ok(conn) => Ok(Some(conn)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WireError::Closed),
        }
    }

    fn addr(&self) -> String {
        self.name.clone()
    }
}

impl Drop for InProcListener {
    fn drop(&mut self) {
        if let Ok(mut reg) = self.registry.lock() {
            reg.remove(&self.name);
        }
    }
}

struct ChanSink {
    tx: Sender<Bytes>,
}

impl FrameSink for ChanSink {
    fn send(&mut self, frame: &Frame) -> WireResult<()> {
        self.tx.send(frame.encode()).map_err(|_| WireError::Closed)
    }

    fn send_truncated(&mut self, frame: &Frame, keep: usize) -> WireResult<()> {
        // The channel fabric is message-based (no partial delivery), so a
        // mid-frame cut arrives as a short encoding the peer's decoder
        // rejects — the in-process spelling of a torn frame.
        let encoded = frame.encode();
        let cut = keep.min(encoded.len().saturating_sub(1)).max(1);
        self.tx
            .send(encoded.slice(0..cut))
            .map_err(|_| WireError::Closed)
    }
}

struct ChanStream {
    rx: Receiver<Bytes>,
}

impl FrameStream for ChanStream {
    fn recv(&mut self) -> WireResult<Frame> {
        let payload = self.rx.recv().map_err(|_| WireError::Closed)?;
        Frame::decode(payload)
    }

    fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok(payload) => Frame::decode(payload).map(Some),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(WireError::Closed),
        }
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// A small client-side connection pool to one address, with reconnect.
///
/// Used by processors towards storage endpoints: requests check a
/// connection out, run one send/recv exchange, and check it back in. A
/// failed exchange drops the (presumed dead) connection and retries once
/// on a freshly dialled one, which masks storage restarts.
pub struct ConnectionPool {
    transport: Arc<dyn Transport>,
    addr: String,
    idle: Vec<Connection>,
    max_idle: usize,
    retry: RetryPolicy,
    /// De-synchronises the jitter of pools redialling the same endpoint.
    salt: u64,
    reconnects: u64,
}

impl ConnectionPool {
    /// A pool towards `addr` keeping at most `max_idle` parked connections.
    pub fn new(transport: Arc<dyn Transport>, addr: impl Into<String>, max_idle: usize) -> Self {
        let addr = addr.into();
        let salt = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
        });
        Self {
            transport,
            addr,
            idle: Vec::new(),
            max_idle: max_idle.max(1),
            retry: RetryPolicy::from_env(),
            salt,
            reconnects: 0,
        }
    }

    /// Overrides the redial backoff ladder (default: `GROUTING_RETRY` or
    /// the built-in 8-attempt exponential).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// In-place variant of [`ConnectionPool::with_retry`] for pools that
    /// are already constructed (e.g. inside a source built over many
    /// endpoints at once).
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Times a request hit a dead connection and was retried on a fresh
    /// dial.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether a request right now would reuse a parked connection.
    pub fn has_idle(&self) -> bool {
        !self.idle.is_empty()
    }

    fn checkout(&mut self) -> WireResult<Connection> {
        match self.idle.pop() {
            Some(conn) => Ok(conn),
            // First dial towards this endpoint: the transport's own
            // patience covers services that are still starting up.
            None => self.transport.dial(&self.addr),
        }
    }

    fn checkin(&mut self, conn: Connection) {
        if self.idle.len() < self.max_idle {
            self.idle.push(conn);
        }
    }

    /// One unary exchange with redial-and-retry-once semantics: a failed
    /// exchange drops the (presumed dead) connection, redials through the
    /// bounded backoff ladder, and replays the request exactly once on the
    /// fresh connection.
    ///
    /// # Errors
    ///
    /// Returns the final failure once the redial ladder is exhausted (the
    /// caller's cue to fail over to another replica).
    pub fn request(&mut self, frame: &Frame) -> WireResult<Frame> {
        let had_idle = !self.idle.is_empty();
        let mut conn = self.checkout()?;
        match conn.request(frame) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(_) if had_idle => {
                // The parked connection went stale (peer restarted): drop
                // it and retry once on a connection from the backoff
                // ladder.
                drop(conn);
                self.reconnects += 1;
                let mut fresh = self.retry.dial(&*self.transport, &self.addr, self.salt)?;
                let reply = fresh.request(frame)?;
                self.checkin(fresh);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }

    /// One single-attempt exchange: reuses a parked connection if one
    /// exists, otherwise dials exactly once ([`Transport::dial_once`]) —
    /// no backoff ladder, no replay. A replica-chain walk probes each
    /// endpoint with this so a dead one fails fast instead of being
    /// waited out; the walk itself owns the pacing.
    ///
    /// # Errors
    ///
    /// Returns the dial or exchange failure as-is.
    pub fn try_request(&mut self, frame: &Frame) -> WireResult<Frame> {
        let mut conn = match self.idle.pop() {
            Some(conn) => conn,
            None => self.transport.dial_once(&self.addr)?,
        };
        match conn.request(frame) {
            Ok(reply) => {
                self.checkin(conn);
                Ok(reply)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::NodeId;

    fn echo_server(listener: Box<dyn Listener>, serve_conns: usize) -> std::thread::JoinHandle<()> {
        let mut listener = listener;
        std::thread::spawn(move || {
            for _ in 0..serve_conns {
                let Ok(mut conn) = listener.accept() else {
                    return;
                };
                std::thread::spawn(move || {
                    while let Ok(frame) = conn.recv() {
                        if matches!(frame, Frame::Shutdown) {
                            break;
                        }
                        if conn.send(&frame).is_err() {
                            break;
                        }
                    }
                });
            }
        })
    }

    fn frame(i: u32) -> Frame {
        Frame::FetchRequest {
            node: NodeId::new(i),
        }
    }

    fn round_trips_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = echo_server(listener, 1);
        let mut conn = transport.dial(&addr).unwrap();
        for i in 0..50 {
            assert_eq!(conn.request(&frame(i)).unwrap(), frame(i));
        }
        conn.send(&Frame::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn inproc_round_trips() {
        round_trips_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_round_trips() {
        round_trips_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn inproc_dial_unknown_address_fails() {
        let t = InProcTransport::new();
        assert!(matches!(
            t.dial("inproc:nobody"),
            Err(WireError::Unroutable(_))
        ));
    }

    #[test]
    fn inproc_listener_drop_unbinds() {
        let t = InProcTransport::new();
        let listener = t.listen("inproc:tmp").unwrap();
        drop(listener);
        assert!(t.dial("inproc:tmp").is_err());
        // The name is free again.
        let again = t.listen("inproc:tmp").unwrap();
        assert_eq!(again.addr(), "inproc:tmp");
    }

    #[test]
    fn inproc_rejects_double_bind() {
        let t = InProcTransport::new();
        let _keep = t.listen("inproc:one").unwrap();
        assert!(t.listen("inproc:one").is_err());
    }

    #[test]
    fn tcp_dial_without_listener_errors() {
        let t = TcpTransport::with_dial_patience(2, Duration::from_millis(1));
        assert!(t.dial("127.0.0.1:1").is_err());
    }

    #[test]
    fn recv_reports_closed_when_peer_drops() {
        let t = InProcTransport::new();
        let mut listener = t.listen(&t.any_addr()).unwrap();
        let addr = listener.addr();
        let conn = t.dial(&addr).unwrap();
        let mut server_side = listener.accept().unwrap();
        drop(conn);
        assert!(matches!(server_side.recv(), Err(WireError::Closed)));
    }

    fn pool_reconnects_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        // Serve two connections in sequence: the pool's first connection
        // dies after one exchange, forcing a reconnect for the second.
        let mut listener = listener;
        let server = std::thread::spawn(move || {
            for served in 0..2 {
                let mut conn = listener.accept().unwrap();
                loop {
                    match conn.recv() {
                        Ok(Frame::Shutdown) | Err(_) => break,
                        Ok(f) => {
                            conn.send(&f).unwrap();
                            if served == 0 {
                                break; // Die after the first reply.
                            }
                        }
                    }
                }
            }
        });

        let mut pool = ConnectionPool::new(transport, addr, 2);
        assert_eq!(pool.request(&frame(1)).unwrap(), frame(1));
        // The parked connection is now dead server-side; the next request
        // must transparently re-dial.
        assert_eq!(pool.request(&frame(2)).unwrap(), frame(2));
        assert_eq!(pool.reconnects(), 1);
        // Dropping the pool closes its parked connection; the server's
        // second serving loop sees the close and exits.
        drop(pool);
        server.join().unwrap();
    }

    #[test]
    fn inproc_pool_reconnects_after_peer_death() {
        pool_reconnects_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_pool_reconnects_after_peer_death() {
        pool_reconnects_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn large_batch_response_round_trips_vectored() {
        // Well above VECTORED_SEND_MIN_BYTES with far more chunks than one
        // writev takes: exercises the scatter-gather send path (including
        // mid-part resume across syscalls) and the pooled multi-read
        // receive path.
        let payloads: Vec<Option<(u16, Bytes)>> = (0..200u32)
            .map(|i| {
                if i % 9 == 0 {
                    None
                } else {
                    Some(((i % 4) as u16, Bytes::from(vec![i as u8; 1500])))
                }
            })
            .collect();
        let f = Frame::FetchBatchResponse {
            req_id: 77,
            payloads,
        };
        let transport = TcpTransport::new();
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let send_frame = f.clone();
        let writer = std::thread::spawn(move || {
            let mut conn = TcpTransport::new().dial(&addr).unwrap();
            conn.send(&send_frame).unwrap();
            conn // held open until the reader is done
        });
        let mut server = listener.accept().unwrap();
        assert_eq!(server.recv().unwrap(), f);
        drop(writer.join().unwrap());
    }

    proptest::proptest! {
        /// Frames stream through the pooled receive path in sequence;
        /// payload views from earlier frames are held live while later
        /// frames churn the pool, and must stay byte-identical at the end
        /// (pool reuse must never alias a live view).
        #[test]
        fn prop_pooled_recv_round_trips_and_never_aliases(
            batches in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::option::of(
                        (0u16..16, proptest::collection::vec(0u8..=255, 0..600)),
                    ),
                    0..12,
                ),
                1..6,
            ),
        ) {
            let transport = TcpTransport::new();
            let mut listener = transport.listen(&transport.any_addr()).unwrap();
            let addr = listener.addr();
            let frames: Vec<Frame> = batches
                .iter()
                .enumerate()
                .map(|(i, payloads)| Frame::FetchBatchResponse {
                    req_id: i as u64,
                    payloads: payloads
                        .iter()
                        .map(|p| p.clone().map(|(s, v)| (s, Bytes::from(v))))
                        .collect(),
                })
                .collect();
            let sender_frames = frames.clone();
            let writer = std::thread::spawn(move || {
                let mut conn = TcpTransport::new().dial(&addr).unwrap();
                for f in &sender_frames {
                    conn.send(f).unwrap();
                }
                conn
            });
            let mut server = listener.accept().unwrap();
            let mut held: Vec<Frame> = Vec::new();
            for want in &frames {
                let got = server.recv().unwrap();
                proptest::prop_assert_eq!(&got, want);
                // Keeping the decoded frame keeps its payload views alive
                // across the later receives below.
                held.push(got);
            }
            for (got, want) in held.iter().zip(&frames) {
                proptest::prop_assert_eq!(got, want);
            }
            drop(writer.join().unwrap());
        }
    }

    #[test]
    fn retry_policy_parses_and_rejects() {
        assert_eq!(
            RetryPolicy::parse("4:10"),
            Some(RetryPolicy::new(4, Duration::from_millis(10)))
        );
        assert_eq!(
            RetryPolicy::parse(" 2 : 250 "),
            Some(RetryPolicy::new(2, Duration::from_millis(250)))
        );
        for bad in ["", "4", "0:10", "four:ten", "4:", ":10", "4:10:2"] {
            assert_eq!(RetryPolicy::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn retry_delay_is_deterministic_bounded_and_grows() {
        let policy = RetryPolicy::new(8, Duration::from_millis(25));
        for attempt in 0..8 {
            for salt in [0u64, 7, 0xDEAD_BEEF] {
                let d = policy.delay(attempt, salt);
                assert_eq!(d, policy.delay(attempt, salt), "reproducible");
                // Cap plus the 25 % jitter headroom.
                assert!(d <= MAX_RETRY_DELAY + MAX_RETRY_DELAY / 4, "{d:?}");
            }
        }
        // The exponential part grows until the cap.
        assert!(policy.delay(3, 1) > policy.delay(0, 1));
    }

    #[test]
    fn retry_dial_ladder_fails_fast_and_succeeds_on_live_listener() {
        let transport = TcpTransport::new();
        let policy = RetryPolicy::new(2, Duration::from_millis(1));
        // Port 1 is never listening: two quick attempts, then the error.
        let started = std::time::Instant::now();
        assert!(policy.dial(&transport, "127.0.0.1:1", 9).is_err());
        assert!(started.elapsed() < Duration::from_secs(1));
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = echo_server(listener, 1);
        let mut conn = policy.dial(&transport, &addr, 9).unwrap();
        assert_eq!(conn.request(&frame(3)).unwrap(), frame(3));
        conn.send(&Frame::Shutdown).unwrap();
        server.join().unwrap();
    }

    fn truncated_send_corrupts_not_completes(transport: Arc<dyn Transport>) {
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let conn = transport.dial(&addr).unwrap();
        let mut server_side = listener.accept().unwrap();
        let (mut sink, stream) = conn.split();
        let full = frame(42).encode();
        sink.send_truncated(&frame(42), full.len() / 2).unwrap();
        drop(sink);
        drop(stream);
        // The peer never assembles a frame from the torn bytes: it sees
        // the close (TCP) or a codec rejection (in-process), never a
        // spurious complete frame.
        match server_side.recv() {
            Err(WireError::Closed) | Err(WireError::Codec(_)) => {}
            other => panic!("torn frame surfaced as {other:?}"),
        }
    }

    #[test]
    fn tcp_truncated_send_corrupts_not_completes() {
        truncated_send_corrupts_not_completes(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn inproc_truncated_send_corrupts_not_completes() {
        truncated_send_corrupts_not_completes(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_listener_rebinds_its_concrete_address() {
        // The chaos harness's storage-restart path: a service that dies is
        // respawned on the same concrete address it announced before.
        let t = TcpTransport::new();
        let listener = t.listen(&t.any_addr()).unwrap();
        let addr = listener.addr();
        let mut conn = t.dial(&addr).unwrap();
        let mut listener = listener;
        let server_side = listener.accept().unwrap();
        drop(server_side); // server closes first → TIME_WAIT holds the port
        let _ = conn.recv(); // observe the close
        drop(listener);
        let again = t.listen(&addr).unwrap();
        assert_eq!(again.addr(), addr);
    }

    #[test]
    fn oversized_tcp_frame_is_rejected() {
        let t = TcpTransport::new();
        let mut listener = t.listen(&t.any_addr()).unwrap();
        let addr = listener.addr();
        let writer = std::thread::spawn(move || {
            let mut raw = TcpStream::connect(addr).unwrap();
            let huge = (MAX_FRAME_BYTES as u32) + 1;
            raw.write_all(&huge.to_le_bytes()).unwrap();
            raw.flush().unwrap();
            // Hold the socket open until the reader has judged the length.
            std::thread::sleep(Duration::from_millis(100));
        });
        let mut conn = listener.accept().unwrap();
        assert!(matches!(conn.recv(), Err(WireError::Codec(_))));
        writer.join().unwrap();
    }
}
