//! Chaos harness: a wire cluster that survives scripted node deaths.
//!
//! [`run_chaos_cluster`] deploys the same topology as
//! [`crate::cluster::launch_cluster`], but drives the workload in *waves*
//! and executes [`ChaosAction`]s at the wave boundaries — killing and
//! restarting processors and storage endpoints mid-run while the client
//! keeps collecting answers. Every kill is a real death: a storage
//! endpoint's reactor stops and its listener closes (subsequent dials are
//! refused, live connections drop); a processor exits its loop and its
//! router connection closes, exactly as a crash would look from the wire.
//!
//! Determinism contract: a wave fully drains before its actions run, so
//! processor kills happen with an empty outstanding window, and a killed
//! processor is only declared restarted once the router has acknowledged
//! its re-join (a [`Frame::MetricsRequest`] pipelined behind the hello on
//! the same connection — frames on one connection are handled in order).
//! Storage kills surface at the next wave's fetches, which fail over along
//! the tier's replica chain and return byte-identical payloads. Under a
//! deterministic routing scheme (hash, no stealing) a chaos run therefore
//! reproduces the fault-free run's answers and demand statistics exactly —
//! pinned by `tests/tests/chaos.rs` — while the failover counters in the
//! final [`RunSnapshot`] account for every recovery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grouting_engine::EngineAssets;
use grouting_metrics::timeline::QueryRecord;
use grouting_metrics::{RunSnapshot, Timeline};
use grouting_query::{Query, QueryResult};
use grouting_storage::NetworkModel;

use crate::cluster::{validate_config, ClusterConfig, ClusterRun};
use crate::error::{WireError, WireResult};
use crate::fault::{FaultPlan, FaultyTransport};
use crate::frame::{Frame, Role};
use crate::service::{now_ns, run_router, ProcessorOptions, ProcessorService, RouterOptions};
use crate::service::{ServiceHandle, StorageService};
use crate::transport::{Connection, Transport};

/// How long the harness waits for a restarted processor's re-join to be
/// acknowledged before declaring the restart failed.
const REJOIN_TIMEOUT: Duration = Duration::from_secs(10);

/// One scripted failure or recovery, executed between waves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Stop processor `id` and join its thread: its router connection
    /// closes, the router marks it down. Killing a processor that is
    /// already down is a script error.
    KillProcessor(usize),
    /// Respawn processor `id` (same id, cold cache) and block until the
    /// router has acknowledged the re-join — the next wave is routed with
    /// the processor back in rotation.
    RestartProcessor(usize),
    /// Shut storage endpoint `server` down: its listener closes and every
    /// connection to it drops. Fetches homed there fail over along the
    /// replica chain (fatal if the tier has no replication).
    KillStorage(usize),
    /// Respawn storage endpoint `server` at the address it announced at
    /// launch — peers recover it with the addresses they already hold.
    RestartStorage(usize),
}

/// One wave of a chaos script: queries to submit and fully drain, then
/// actions to execute before the next wave.
#[derive(Debug, Clone, Default)]
pub struct ChaosWave {
    /// Queries submitted (and completed) before `after` runs.
    pub queries: Vec<Query>,
    /// Actions executed once every query of this wave has completed.
    pub after: Vec<ChaosAction>,
}

/// A scripted kill/restart schedule interleaved with a workload.
#[derive(Debug, Clone, Default)]
pub struct ChaosScript {
    /// The waves, in submission order.
    pub waves: Vec<ChaosWave>,
}

impl ChaosScript {
    /// An empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a wave of queries (no actions yet).
    #[must_use]
    pub fn wave(mut self, queries: Vec<Query>) -> Self {
        self.waves.push(ChaosWave {
            queries,
            after: Vec::new(),
        });
        self
    }

    /// Appends an action to the most recent wave.
    ///
    /// # Panics
    ///
    /// Panics if no wave has been added yet.
    #[must_use]
    pub fn then(mut self, action: ChaosAction) -> Self {
        self.waves
            .last_mut()
            .expect("ChaosScript::then needs a wave first")
            .after
            .push(action);
        self
    }

    /// Total number of queries across all waves.
    pub fn query_count(&self) -> usize {
        self.waves.iter().map(|w| w.queries.len()).sum()
    }

    /// The same waves with every action stripped — the fault-free
    /// comparison run a chaos run must agree with.
    #[must_use]
    pub fn fault_free(&self) -> Self {
        Self {
            waves: self
                .waves
                .iter()
                .map(|w| ChaosWave {
                    queries: w.queries.clone(),
                    after: Vec::new(),
                })
                .collect(),
        }
    }
}

/// A spawned processor the harness can kill and account for.
struct ProcSlot {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<WireResult<()>>,
}

/// Launches the full cluster topology and runs `script` through it:
/// submit a wave, drain its completions, execute its actions, repeat —
/// then `SubmitEnd` and the normal teardown. Results, timeline, and the
/// final snapshot come back as a [`ClusterRun`], with the snapshot's
/// failover counters reflecting every recovery the script forced.
///
/// # Errors
///
/// Propagates transport failures and protocol violations; a script that
/// kills an already-dead node (or restarts a live one) fails with an
/// error naming the action, as does a restarted processor whose re-join
/// the router never acknowledges.
pub fn launch_chaos_cluster(
    assets: &EngineAssets,
    script: &ChaosScript,
    config: &ClusterConfig,
) -> WireResult<ClusterRun> {
    validate_config(assets, config)?;
    let transport = config.transport.build();
    let net = NetworkModel::from(config.net);
    let p = config.engine.processors;

    // Storage endpoints, one per tier server, each restartable at the
    // address it announces here.
    let mut storage: Vec<Option<ServiceHandle>> = Vec::new();
    for _ in 0..assets.tier.server_count() {
        storage.push(Some(StorageService::spawn_full(
            Arc::clone(&transport),
            Arc::clone(&assets.tier),
            net,
            config.reactor,
            None,
        )?));
    }
    let storage_addrs: Vec<String> = storage
        .iter()
        .map(|h| h.as_ref().expect("just spawned").addr().to_string())
        .collect();

    // The router node.
    let router_listener = transport.listen(&transport.any_addr())?;
    let router_addr = router_listener.addr();
    let router_assets = assets.clone();
    let router_config = config.engine;
    let router_opts = RouterOptions {
        snapshot_every: config.snapshot_every,
        poller: config.reactor,
        trace: config.trace,
        telemetry: None,
        obs: config.obs.clone(),
    };
    let router = std::thread::spawn(move || {
        run_router(
            router_listener,
            &router_assets,
            &router_config,
            &router_opts,
        )
    });

    // The processor fleet — every processor carries a kill switch. Faults
    // arm on the processors' transport exactly as in `launch_cluster`.
    let fault_plan = if config.faults.is_empty() {
        FaultPlan::from_env()
    } else {
        config.faults.clone()
    };
    let proc_transport = FaultyTransport::wrap(Arc::clone(&transport), fault_plan);
    let partitioner = assets.tier.partitioner();
    let spawn_proc = |id: usize, ready: Option<Arc<AtomicBool>>| -> ProcSlot {
        let stop = Arc::new(AtomicBool::new(false));
        let join = ProcessorService::spawn_opts(
            Arc::clone(&proc_transport),
            id,
            router_addr.clone(),
            storage_addrs.clone(),
            Arc::clone(&partitioner),
            config.engine,
            config.fetch,
            ProcessorOptions {
                poller: config.reactor,
                telemetry: None,
                replication: assets.tier.replication(),
                retry: config.retry,
                stop: Some(Arc::clone(&stop)),
                ready,
                obs: config.obs.clone(),
            },
        );
        ProcSlot { stop, join }
    };
    let mut procs: Vec<Option<ProcSlot>> = (0..p).map(|id| Some(spawn_proc(id, None))).collect();

    // The client: waves, actions, SubmitEnd, final drain.
    let started = now_ns();
    let run = drive_chaos_client(
        &*transport,
        &router_addr,
        script,
        &mut procs,
        &mut storage,
        &storage_addrs,
        &spawn_proc,
        |server| {
            StorageService::spawn_bound(
                Arc::clone(&transport),
                &storage_addrs[server],
                Arc::clone(&assets.tier),
                net,
                config.reactor,
                None,
            )
        },
    );
    if run.is_err() {
        // Abort a half-started run so the joins below cannot hang.
        if let Ok(mut abort) = transport.dial(&router_addr) {
            let _ = abort.send(&Frame::Shutdown);
        }
    }
    let wall_ns = now_ns().saturating_sub(started);

    let router_result = router
        .join()
        .map_err(|_| WireError::Protocol("router thread panicked".to_string()))?;
    // Live processors exit on the router's Shutdown; a kill switch only
    // short-circuits the ones the script left dead. Joins cannot hang:
    // every surviving processor's router connection is closed by now.
    for slot in procs.into_iter().flatten() {
        let _ = slot.join.join();
    }
    for handle in storage.into_iter().flatten() {
        handle.shutdown();
    }

    let snapshot = match router_result {
        Ok(snapshot) => snapshot,
        // The router's Closed is the client's own hangup after it bailed,
        // and "run aborted" echoes the abort we sent above — in both
        // cases the client error is the root cause.
        Err(WireError::Closed) | Err(WireError::Protocol(_)) if run.is_err() => {
            return Err(run.unwrap_err())
        }
        Err(router_err) => return Err(router_err),
    };
    let (results, timeline, mid_snapshots) = run?;
    Ok(ClusterRun {
        results,
        timeline,
        snapshot,
        mid_snapshots,
        trace: None,
        wall_ns,
    })
}

type ChaosClientRun = (Vec<QueryResult>, Timeline, Vec<RunSnapshot>);

/// Streams the script through the router connection, executing actions at
/// wave boundaries. Returns results (sequence order), the timeline, and
/// any mid-run snapshots (the final snapshot is popped by the caller from
/// this list's tail).
#[allow(clippy::too_many_arguments)]
fn drive_chaos_client(
    transport: &dyn Transport,
    router_addr: &str,
    script: &ChaosScript,
    procs: &mut [Option<ProcSlot>],
    storage: &mut [Option<ServiceHandle>],
    storage_addrs: &[String],
    spawn_proc: &dyn Fn(usize, Option<Arc<AtomicBool>>) -> ProcSlot,
    respawn_storage: impl Fn(usize) -> WireResult<ServiceHandle>,
) -> WireResult<ChaosClientRun> {
    let total = script.query_count();
    let mut conn = transport.dial(router_addr)?;
    conn.send(&Frame::Hello {
        role: Role::Client,
        id: 0,
    })?;

    let mut results: Vec<Option<QueryResult>> = vec![None; total];
    let mut timeline = Timeline::new();
    let mut snapshots: Vec<RunSnapshot> = Vec::new();
    let mut seq = 0u64;
    for wave in &script.waves {
        let mut pending = wave.queries.len();
        for query in &wave.queries {
            conn.send(&Frame::Submit {
                seq,
                query: *query,
                submitted_ns: None,
            })?;
            seq += 1;
        }
        while pending > 0 {
            match conn.recv()? {
                Frame::Completion(c) => {
                    record_completion(&mut results, &mut timeline, c)?;
                    pending -= 1;
                }
                Frame::Metrics { snapshot, .. } => snapshots.push(snapshot),
                Frame::Shutdown => {
                    return Err(WireError::Protocol("router shut down mid-wave".to_string()))
                }
                other => {
                    return Err(WireError::Protocol(format!(
                        "chaos client got {}",
                        other.kind()
                    )))
                }
            }
        }
        for action in &wave.after {
            apply_action(
                *action,
                &mut conn,
                procs,
                storage,
                storage_addrs,
                spawn_proc,
                &respawn_storage,
                &mut snapshots,
            )?;
        }
    }
    conn.send(&Frame::SubmitEnd)?;
    loop {
        match conn.recv() {
            Ok(Frame::Completion(c)) => record_completion(&mut results, &mut timeline, c)?,
            Ok(Frame::Metrics { snapshot, .. }) => snapshots.push(snapshot),
            Ok(Frame::Shutdown) | Err(WireError::Closed) => break,
            Ok(other) => {
                return Err(WireError::Protocol(format!(
                    "chaos client got {}",
                    other.kind()
                )))
            }
            Err(e) => return Err(e),
        }
    }

    let results: Option<Vec<QueryResult>> = results.into_iter().collect();
    let results = results
        .ok_or_else(|| WireError::Protocol("run ended with incomplete results".to_string()))?;
    if snapshots.is_empty() {
        return Err(WireError::Protocol(
            "run ended without a snapshot".to_string(),
        ));
    }
    Ok((results, timeline, snapshots))
}

fn record_completion(
    results: &mut [Option<QueryResult>],
    timeline: &mut Timeline,
    c: crate::frame::Completion,
) -> WireResult<()> {
    let seq = c.seq as usize;
    if seq >= results.len() || results[seq].is_some() {
        return Err(WireError::Protocol(format!(
            "unexpected completion for seq {seq}"
        )));
    }
    results[seq] = Some(c.result);
    timeline.push(QueryRecord {
        seq: c.seq,
        arrived: c.arrived_ns,
        started: c.started_ns,
        completed: c.completed_ns,
        processor: c.processor as usize,
    });
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn apply_action(
    action: ChaosAction,
    conn: &mut Connection,
    procs: &mut [Option<ProcSlot>],
    storage: &mut [Option<ServiceHandle>],
    storage_addrs: &[String],
    spawn_proc: &dyn Fn(usize, Option<Arc<AtomicBool>>) -> ProcSlot,
    respawn_storage: &impl Fn(usize) -> WireResult<ServiceHandle>,
    snapshots: &mut Vec<RunSnapshot>,
) -> WireResult<()> {
    let script_err = |what: String| Err(WireError::Protocol(format!("chaos script: {what}")));
    match action {
        ChaosAction::KillProcessor(id) => {
            let Some(slot) = procs.get_mut(id).and_then(Option::take) else {
                return script_err(format!("processor {id} is not running"));
            };
            slot.stop.store(true, Ordering::SeqCst);
            // A processor stopped between frames exits cleanly; one caught
            // mid-exchange may surface an error — either way it is dead.
            let _ = slot.join.join();
            // Barrier: one metrics round trip guarantees the router has
            // polled (and fully processed) the dead peer's closed stream
            // before any restart can re-dial under the same id. The poll
            // that delivered our request had the closure ready too, and
            // the router drains a poll batch completely before polling
            // again.
            conn.send(&Frame::MetricsRequest)?;
            match conn.recv()? {
                Frame::Metrics { snapshot, .. } => snapshots.push(snapshot),
                other => {
                    return Err(WireError::Protocol(format!(
                        "chaos client got {} awaiting the kill barrier",
                        other.kind()
                    )))
                }
            }
            Ok(())
        }
        ChaosAction::RestartProcessor(id) => {
            if procs.get(id).is_none_or(Option::is_some) {
                return script_err(format!("processor {id} is not down"));
            }
            let ready = Arc::new(AtomicBool::new(false));
            let slot = spawn_proc(id, Some(Arc::clone(&ready)));
            let deadline = Instant::now() + REJOIN_TIMEOUT;
            while !ready.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Err(WireError::Protocol(format!(
                        "restarted processor {id} never re-joined"
                    )));
                }
                std::thread::sleep(Duration::from_micros(200));
            }
            procs[id] = Some(slot);
            Ok(())
        }
        ChaosAction::KillStorage(server) => {
            let Some(handle) = storage.get_mut(server).and_then(Option::take) else {
                return script_err(format!("storage {server} is not running"));
            };
            handle.shutdown();
            Ok(())
        }
        ChaosAction::RestartStorage(server) => {
            if storage.get(server).is_none_or(Option::is_some) {
                return script_err(format!("storage {server} is not down"));
            }
            debug_assert!(server < storage_addrs.len());
            storage[server] = Some(respawn_storage(server)?);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::TransportKind;
    use crate::flow::FetchMode;
    use crate::transport::RetryPolicy;
    use grouting_engine::EngineConfig;
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;
    use grouting_route::RoutingKind;
    use grouting_storage::StorageTier;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Disjoint 5-node star components: queries anchored in different
    /// components share no adjacency records, so demand statistics are
    /// invariant to cache restarts and query placement.
    fn disjoint_tier(components: u32, servers: usize, replication: usize) -> Arc<StorageTier> {
        let mut b = GraphBuilder::new();
        for c in 0..components {
            let base = c * 8;
            for leaf in 1..5 {
                b.add_edge(n(base), n(base + leaf));
            }
        }
        let g = b.build().unwrap();
        let tier = Arc::new(StorageTier::with_replication(
            Arc::new(HashPartitioner::new(servers)),
            grouting_storage::log::DEFAULT_SEGMENT_BYTES,
            replication,
        ));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn wave(range: std::ops::Range<u32>) -> Vec<Query> {
        range
            .map(|c| Query::NeighborAggregation {
                node: n(c * 8),
                hops: 1,
                label: None,
            })
            .collect()
    }

    fn chaos_config(fetch: FetchMode) -> ClusterConfig {
        let engine = EngineConfig {
            stealing: false,
            cache_capacity: 4 << 20,
            ..EngineConfig::paper_default(2, RoutingKind::Hash)
        };
        ClusterConfig::new(engine, TransportKind::InProc)
            .with_fetch(fetch)
            .with_retry(RetryPolicy::new(2, Duration::from_millis(1)))
    }

    fn kill_everything_once_over(fetch: FetchMode) {
        let tier = disjoint_tier(24, 2, 2);
        let assets = EngineAssets::new(tier);
        let script = ChaosScript::new()
            .wave(wave(0..8))
            .then(ChaosAction::KillStorage(0))
            .wave(wave(8..16))
            .then(ChaosAction::RestartStorage(0))
            .then(ChaosAction::KillProcessor(1))
            .then(ChaosAction::RestartProcessor(1))
            .wave(wave(16..24));
        let config = chaos_config(fetch);
        let chaos = launch_chaos_cluster(&assets, &script, &config).unwrap();
        let calm = launch_chaos_cluster(&assets, &script.fault_free(), &config).unwrap();
        assert_eq!(chaos.results, calm.results);
        assert_eq!(chaos.snapshot.cache_hits, calm.snapshot.cache_hits);
        assert_eq!(chaos.snapshot.cache_misses, calm.snapshot.cache_misses);
        assert_eq!(chaos.snapshot.per_processor, calm.snapshot.per_processor);
        assert!(
            chaos.snapshot.replica_failovers > 0,
            "storage kill must fail over"
        );
        assert_eq!(calm.snapshot.replica_failovers, 0);
        assert_eq!(calm.snapshot.windows_resubmitted, 0);
        // Clean kills: the processor died with an empty dispatch window.
        assert_eq!(chaos.snapshot.windows_resubmitted, 0);
    }

    #[test]
    fn kill_everything_once_batched() {
        kill_everything_once_over(FetchMode::Batched);
    }

    #[test]
    fn kill_everything_once_scalar() {
        kill_everything_once_over(FetchMode::Scalar);
    }

    #[test]
    fn script_errors_name_the_bad_action() {
        let tier = disjoint_tier(4, 2, 2);
        let assets = EngineAssets::new(tier);
        let script = ChaosScript::new()
            .wave(wave(0..4))
            .then(ChaosAction::RestartStorage(0));
        let err =
            launch_chaos_cluster(&assets, &script, &chaos_config(FetchMode::Batched)).unwrap_err();
        assert!(
            err.to_string().contains("storage 0 is not down"),
            "got {err}"
        );
    }
}
