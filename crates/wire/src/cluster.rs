//! One-machine cluster harness: router + processors + storage as peers.
//!
//! [`launch_cluster`] deploys the full decoupled topology over a chosen
//! transport — every router↔processor dispatch and every processor↔storage
//! fetch crosses a framed connection — runs a workload through it from a
//! client connection, and collects the results into a [`ClusterRun`].
//!
//! With [`TransportKind::Tcp`] the peers are real socket endpoints on
//! loopback (the honest deployment); [`TransportKind::InProc`] swaps in
//! the hermetic channel fabric for sandboxes without loopback — same
//! services, same frames, same encoded bytes.

use std::sync::Arc;

use grouting_engine::{EngineAssets, EngineConfig};
use grouting_metrics::log_warn;
use grouting_metrics::timeline::QueryRecord;
use grouting_metrics::{RunSnapshot, Timeline};
use grouting_obs::ObsConfig;
use grouting_query::{Query, QueryResult};
use grouting_storage::{NetworkModel, Preset};
use grouting_trace::{Stage, TelemetryCounters, TraceLevel, TraceSnapshot};

use crate::error::{WireError, WireResult};
use crate::fault::{FaultPlan, FaultyTransport};
use crate::flow::FetchMode;
use crate::frame::{Frame, Role};
use crate::reactor::PollerKind;
use crate::service::{
    now_ns, run_router, ProcessorOptions, ProcessorService, RouterOptions, ServiceHandle,
    StorageOptions, StorageService,
};
use crate::transport::{InProcTransport, RetryPolicy, TcpTransport, Transport};

/// Which connection fabric a cluster deployment runs on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Real loopback sockets (`std::net`).
    #[default]
    Tcp,
    /// Hermetic in-process channels (same frames, same encoded bytes).
    InProc,
}

impl TransportKind {
    /// Honours the `GROUTING_NO_SOCKETS=1` escape hatch: TCP normally,
    /// the in-proc fabric in sandboxes without loopback networking.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_NO_SOCKETS") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => TransportKind::InProc,
            _ => TransportKind::Tcp,
        }
    }

    /// Builds the transport instance.
    pub fn build(self) -> Arc<dyn Transport> {
        match self {
            TransportKind::Tcp => Arc::new(TcpTransport::new()),
            TransportKind::InProc => Arc::new(InProcTransport::new()),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Tcp => write!(f, "tcp"),
            TransportKind::InProc => write!(f, "inproc"),
        }
    }
}

/// Honours the `GROUTING_OVERLAP` environment knob for the per-processor
/// in-flight query window: `default` when unset, clamped to ≥ 1
/// (`GROUTING_OVERLAP=1` forces strictly serial execution for comparison
/// runs; `2` is the double-buffered default). An unparsable value is
/// *reported* — one stderr line naming it — rather than silently treated
/// as the default.
pub fn overlap_from_env(default: usize) -> usize {
    match std::env::var("GROUTING_OVERLAP") {
        Err(_) => default,
        Ok(raw) => raw.parse::<usize>().unwrap_or_else(|_| {
            log_warn!(
                "invalid GROUTING_OVERLAP value {raw:?} \
                 (expected a positive integer); using default {default}"
            );
            default
        }),
    }
    .max(1)
}

/// Deployment shape of a wire cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The engine knobs (processors, routing, caches, window, …) — the
    /// same structure the in-proc runtimes consume, which is what makes
    /// wire runs comparable to in-proc runs.
    pub engine: EngineConfig,
    /// Connection fabric.
    pub transport: TransportKind,
    /// Emulated processor↔storage network (charged per fetch at the
    /// storage endpoints; [`Preset::Local`] charges nothing).
    pub net: Preset,
    /// The processor↔storage fetch path: scalar per-node round trips, or
    /// pipelined frontier batches ([`FetchMode::from_env`] honours
    /// `GROUTING_BATCH=0`).
    pub fetch: FetchMode,
    /// Emit a mid-run metrics snapshot to the client every this many
    /// completions (`0` = final snapshot only).
    pub snapshot_every: u64,
    /// Readiness backend every peer's poll loop runs on
    /// ([`PollerKind::from_env`] honours `GROUTING_REACTOR=sweep|epoll`;
    /// the default is epoll on Linux, the portable sweep elsewhere).
    pub reactor: PollerKind,
    /// End-to-end tracing level ([`TraceLevel::from_env`] honours
    /// `GROUTING_TRACE=off|stats|spans`; default off, which keeps every
    /// frame byte-identical to an untraced deployment).
    pub trace: TraceLevel,
    /// Redial backoff ladder for the processors' storage reconnect paths
    /// (`None` = `GROUTING_RETRY` or the built-in default).
    pub retry: Option<RetryPolicy>,
    /// Scripted faults armed on the *processors'* transport (their dials
    /// towards storage and the router). Empty by default; when empty at
    /// launch, `GROUTING_FAULTS` is consulted instead. The router,
    /// storage endpoints, and client always run unfaulted — the plan
    /// injects failures into exactly the recovery paths under test.
    pub faults: FaultPlan,
    /// Observability deployment: sampler cadence, the router's scrape
    /// bind address, and the flight-recorder dump flag
    /// ([`ObsConfig::from_env`] honours `GROUTING_METRICS_ADDR` and
    /// `GROUTING_OBS_DUMP`; off when neither is set, which keeps every
    /// frame byte-identical to an unobserved deployment).
    pub obs: ObsConfig,
}

impl ClusterConfig {
    /// A cluster over `engine` on the given transport with a free network
    /// and the default (batched) fetch path.
    pub fn new(engine: EngineConfig, transport: TransportKind) -> Self {
        Self {
            engine,
            transport,
            net: Preset::Local,
            fetch: FetchMode::default(),
            snapshot_every: 0,
            reactor: PollerKind::from_env(),
            trace: TraceLevel::from_env(),
            retry: None,
            faults: FaultPlan::new(),
            obs: ObsConfig::from_env(),
        }
    }

    /// Overrides the observability deployment (scrape endpoint, sampling
    /// cadence, flight-recorder dump) — tests pass an explicit config
    /// instead of mutating the process environment.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the processors' storage redial backoff ladder.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Arms a scripted fault plan on the processors' transport (see
    /// [`ClusterConfig::faults`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the end-to-end tracing level.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceLevel) -> Self {
        self.trace = trace;
        self
    }

    /// Overrides the processor↔storage fetch path.
    #[must_use]
    pub fn with_fetch(mut self, fetch: FetchMode) -> Self {
        self.fetch = fetch;
        self
    }

    /// Overrides the readiness backend every peer's poll loop runs on.
    #[must_use]
    pub fn with_reactor(mut self, reactor: PollerKind) -> Self {
        self.reactor = reactor;
        self
    }

    /// Overrides the per-processor in-flight query window (the engine's
    /// [`EngineConfig::overlap`] knob): 1 = strictly serial, 2+ =
    /// cross-query fetch overlap.
    #[must_use]
    pub fn with_overlap(mut self, overlap: usize) -> Self {
        self.engine.overlap = overlap.max(1);
        self
    }

    /// The per-processor in-flight query window this cluster runs with.
    pub fn overlap(&self) -> usize {
        self.engine.overlap.max(1)
    }

    /// Overrides the speculative-prefetch policy and budget (the engine's
    /// [`grouting_engine::EngineConfig::prefetch`] knob; default off).
    /// Only the batched fetch path speculates — scalar-mode processors
    /// ignore it.
    #[must_use]
    pub fn with_prefetch(mut self, prefetch: grouting_query::PrefetchConfig) -> Self {
        self.engine.prefetch = prefetch;
        self
    }

    /// The speculative-prefetch configuration this cluster runs with.
    pub fn prefetch(&self) -> grouting_query::PrefetchConfig {
        self.engine.prefetch
    }
}

/// Everything a cluster run produced, assembled client-side purely from
/// frames received over the wire.
#[derive(Debug)]
pub struct ClusterRun {
    /// Query results in sequence order.
    pub results: Vec<QueryResult>,
    /// Per-query lifecycle records (completion order).
    pub timeline: Timeline,
    /// The router's end-of-run totals.
    pub snapshot: RunSnapshot,
    /// Periodic mid-run snapshots, in emission order (empty unless
    /// [`ClusterConfig::snapshot_every`] was set).
    pub mid_snapshots: Vec<RunSnapshot>,
    /// The trace layer's view of the run — per-stage latency histograms,
    /// reactor telemetry, and (at [`TraceLevel::Spans`]) the last query
    /// spans. `None` when the run traced at [`TraceLevel::Off`].
    pub trace: Option<TraceSnapshot>,
    /// Wall-clock duration observed by the client.
    pub wall_ns: u64,
}

impl ClusterRun {
    /// Cache hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        self.snapshot.hit_rate()
    }

    /// Wall-clock throughput in queries/second.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Rejects configurations that would otherwise panic inside a service
/// thread (where the failure surfaces as an opaque join error) with a
/// [`WireError::Protocol`] naming the offending field up front.
pub(crate) fn validate_config(assets: &EngineAssets, config: &ClusterConfig) -> WireResult<()> {
    use grouting_route::RoutingKind;
    let bad = |field: &str, why: &str| {
        Err(WireError::Protocol(format!(
            "invalid cluster config: {field} {why}"
        )))
    };
    if config.engine.processors == 0 {
        return bad("engine.processors", "must be at least 1");
    }
    if config.engine.routing == RoutingKind::Landmark && assets.landmarks.is_none() {
        return bad(
            "engine.routing",
            "is landmark but assets.landmarks is missing",
        );
    }
    if config.engine.routing == RoutingKind::Embed && assets.embedding.is_none() {
        return bad("engine.routing", "is embed but assets.embedding is missing");
    }
    Ok(())
}

/// Launches router + `P` processors + `M` storage servers as transport
/// peers, streams `queries` through the cluster, and tears everything
/// down.
///
/// `M` is `assets.tier.server_count()` — one storage endpoint per tier
/// server. The tier handle itself stays on the storage side of the wire;
/// processors see only addresses and the placement function.
///
/// # Errors
///
/// Propagates transport failures, protocol violations, and router errors.
/// A config that would panic inside a service thread — a smart routing
/// scheme without its preprocessing asset, or zero processors — is
/// rejected up front with an error naming the field.
pub fn launch_cluster(
    assets: &EngineAssets,
    queries: &[Query],
    config: &ClusterConfig,
) -> WireResult<ClusterRun> {
    validate_config(assets, config)?;
    let transport = config.transport.build();
    let net = NetworkModel::from(config.net);
    let p = config.engine.processors;
    // One shared telemetry sink for every peer in this deployment (all
    // peers are threads of this process); absent when tracing is off so
    // the hot paths skip their clock reads entirely.
    let telemetry = config
        .trace
        .enabled()
        .then(|| Arc::new(TelemetryCounters::new()));

    // The router listener binds before anything else spawns: its address
    // doubles as the cluster's observability sink, so storage endpoints
    // need it at spawn time to push sampled registries there.
    let router_listener = transport.listen(&transport.any_addr())?;
    let router_addr = router_listener.addr();

    // Storage endpoints, one per tier server.
    let obs_push_addr = config.obs.enabled().then(|| router_addr.clone());
    let mut storage_handles: Vec<ServiceHandle> = Vec::new();
    for id in 0..assets.tier.server_count() {
        storage_handles.push(StorageService::spawn_opts(
            Arc::clone(&transport),
            &transport.any_addr(),
            Arc::clone(&assets.tier),
            StorageOptions {
                net,
                poller: config.reactor,
                telemetry: telemetry.clone(),
                obs: config.obs.clone(),
                push_addr: obs_push_addr.clone(),
                id: id as u16,
            },
        )?);
    }
    let storage_addrs: Vec<String> = storage_handles
        .iter()
        .map(|h| h.addr().to_string())
        .collect();

    // The router node.
    let router_assets = assets.clone();
    let router_config = config.engine;
    let router_opts = RouterOptions {
        snapshot_every: config.snapshot_every,
        poller: config.reactor,
        trace: config.trace,
        telemetry: telemetry.clone(),
        obs: config.obs.clone(),
    };
    let router = std::thread::spawn(move || {
        run_router(
            router_listener,
            &router_assets,
            &router_config,
            &router_opts,
        )
    });

    // The processor fleet. Scripted faults (programmatic plan, or
    // `GROUTING_FAULTS` when none was set) arm only here: the processors'
    // dials and sends misbehave; every other peer stays honest so the
    // test exercises exactly the client-side recovery paths.
    let fault_plan = if config.faults.is_empty() {
        FaultPlan::from_env()
    } else {
        config.faults.clone()
    };
    let proc_transport = FaultyTransport::wrap(Arc::clone(&transport), fault_plan);
    let partitioner = assets.tier.partitioner();
    let processors: Vec<_> = (0..p)
        .map(|id| {
            ProcessorService::spawn_opts(
                Arc::clone(&proc_transport),
                id,
                router_addr.clone(),
                storage_addrs.clone(),
                Arc::clone(&partitioner),
                config.engine,
                config.fetch,
                ProcessorOptions {
                    poller: config.reactor,
                    telemetry: telemetry.clone(),
                    // The tier IS the replica-chain layout: its factor
                    // tells the wire path how far fetches may fail over.
                    replication: assets.tier.replication(),
                    retry: config.retry,
                    stop: None,
                    ready: None,
                    obs: config.obs.clone(),
                },
            )
        })
        .collect();

    // The client: stream the workload, then collect completions.
    let run = drive_client(&*transport, &router_addr, queries, config.trace);
    if run.is_err() {
        // The router is still parked on its event loop; tell it to abort
        // so the joins below cannot hang on a half-started run.
        if let Ok(mut abort) = transport.dial(&router_addr) {
            let _ = abort.send(&Frame::Shutdown);
        }
    }

    // Teardown order: router exits on its own once the workload drains
    // (or errored, or was aborted above); processors exit on its
    // Shutdown; storage last. A panicked tier thread (e.g. a processor
    // whose storage fetch path died) degrades to an error, not a panic.
    let router_result = router
        .join()
        .map_err(|_| WireError::Protocol("router thread panicked".to_string()))?;
    let mut dead_processors = 0usize;
    for handle in processors {
        // Both a panic and a processor that bailed with a wire error count
        // as dead — only a clean Shutdown-driven exit is healthy.
        if !matches!(handle.join(), Ok(Ok(()))) {
            dead_processors += 1;
        }
    }
    for handle in storage_handles {
        handle.shutdown();
    }

    // Error precedence: the router supervises every peer, so its error is
    // usually the root cause (the client only sees a generic "incomplete
    // results") — unless the router merely echoes the abort *we* sent
    // after the client failed, in which case the client error wins.
    let snapshot = match router_result {
        Ok(snapshot) => snapshot,
        Err(WireError::Protocol(m)) if m.starts_with("run aborted") && run.is_err() => {
            return Err(run.unwrap_err())
        }
        Err(router_err) => return Err(router_err),
    };
    let (results, timeline, client_snapshot, mid_snapshots, trace, wall_ns) = run?;
    if dead_processors > 0 {
        return Err(WireError::Protocol(format!(
            "{dead_processors} processor thread(s) died mid-run"
        )));
    }
    debug_assert_eq!(
        client_snapshot, snapshot,
        "router sent a different snapshot"
    );
    Ok(ClusterRun {
        results,
        timeline,
        snapshot,
        mid_snapshots,
        trace,
        wall_ns,
    })
}

type ClientRun = (
    Vec<QueryResult>,
    Timeline,
    RunSnapshot,
    Vec<RunSnapshot>,
    Option<TraceSnapshot>,
    u64,
);

fn drive_client(
    transport: &dyn Transport,
    router_addr: &str,
    queries: &[Query],
    trace: TraceLevel,
) -> WireResult<ClientRun> {
    let started = now_ns();
    let mut conn = transport.dial(router_addr)?;
    conn.send(&Frame::Hello {
        role: Role::Client,
        id: 0,
    })?;
    for (seq, query) in queries.iter().enumerate() {
        conn.send(&Frame::Submit {
            seq: seq as u64,
            query: *query,
            // Stamped at send time: the router's queue-wait stage starts
            // here, so client→router transit is charged to the queue.
            submitted_ns: trace.enabled().then(now_ns),
        })?;
    }
    conn.send(&Frame::SubmitEnd)?;

    let mut results: Vec<Option<QueryResult>> = vec![None; queries.len()];
    let mut timeline = Timeline::new();
    // The last Metrics frame before Shutdown is the run's final snapshot;
    // anything earlier is a periodic mid-run emission.
    let mut snapshots: Vec<RunSnapshot> = Vec::new();
    // The completion stage — processor marks a query done to client holds
    // the result — is only observable here, so the client records it and
    // folds it into the router's trace snapshot below.
    let mut traces: Vec<TraceSnapshot> = Vec::new();
    let mut completion_stages = grouting_trace::StageStats::default();
    loop {
        match conn.recv() {
            Ok(Frame::Completion(c)) => {
                let seq = c.seq as usize;
                if seq >= results.len() || results[seq].is_some() {
                    return Err(WireError::Protocol(format!(
                        "unexpected completion for seq {seq}"
                    )));
                }
                if trace.enabled() {
                    completion_stages
                        .record(Stage::Completion, now_ns().saturating_sub(c.completed_ns));
                }
                results[seq] = Some(c.result);
                timeline.push(QueryRecord {
                    seq: c.seq,
                    arrived: c.arrived_ns,
                    started: c.started_ns,
                    completed: c.completed_ns,
                    processor: c.processor as usize,
                });
            }
            Ok(Frame::Metrics { snapshot, trace }) => {
                snapshots.push(snapshot);
                traces.extend(trace.map(|t| *t));
            }
            Ok(Frame::Shutdown) | Err(WireError::Closed) => break,
            Ok(other) => return Err(WireError::Protocol(format!("client got {}", other.kind()))),
            Err(e) => return Err(e),
        }
    }

    let results: Option<Vec<QueryResult>> = results.into_iter().collect();
    let results = results
        .ok_or_else(|| WireError::Protocol("run ended with incomplete results".to_string()))?;
    let snapshot = snapshots
        .pop()
        .ok_or_else(|| WireError::Protocol("run ended without a snapshot".to_string()))?;
    // The router's final trace snapshot is cumulative, so earlier periodic
    // ones are subsumed; graft the client-observed completion stage in.
    let run_trace = traces.pop().map(|mut t| {
        t.stages.merge(&completion_stages);
        t
    });
    Ok((
        results,
        timeline,
        snapshot,
        snapshots,
        run_trace,
        now_ns().saturating_sub(started),
    ))
}
