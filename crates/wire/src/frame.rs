//! The cluster's message set and its binary encoding.
//!
//! Every exchange between the router, the query processors, and the
//! storage servers is one of the frames below, encoded little-endian in
//! the style of `grouting_graph::codec` (a tag byte, then fixed-width
//! fields, variable-length sections carrying explicit counts). On the wire
//! each frame travels behind a `u32` length prefix (see
//! [`crate::transport`]); the encoding here is the payload only, so the
//! in-process transport can carry the identical bytes without a length
//! prefix and both paths exercise the same codec.
//!
//! Message set (paper §3.2's router/processor protocol, plus the decoupled
//! storage fetch path):
//!
//! * [`Frame::Hello`] — a peer introduces itself to the router;
//! * [`Frame::Submit`]/[`Frame::SubmitEnd`] — a client streams a workload;
//! * [`Frame::Dispatch`] — the router hands one query to a processor
//!   (ack-driven: at most one outstanding per processor);
//! * [`Frame::Completion`] — the processor's acknowledgement: result,
//!   access stats, lifecycle timestamps;
//! * [`Frame::FetchRequest`]/[`Frame::FetchResponse`] — a processor's
//!   cache-miss path to a storage server (the value is the *encoded*
//!   adjacency record, so byte accounting matches the in-proc engine);
//! * [`Frame::MetricsRequest`]/[`Frame::Metrics`] — run-total snapshots;
//! * [`Frame::ObsPush`] — a node's sampled metrics registry, forwarded
//!   to the router so one scrape of the router reads the whole cluster;
//! * [`Frame::Shutdown`] — orderly teardown.
//!
//! # Optional trace blocks
//!
//! When tracing is on (`GROUTING_TRACE=stats|spans`), four frames carry
//! an optional trace block *appended after* their PR 6 fields: `Submit`
//! (client submit stamp), `Dispatch` (trace level + dispatch stamp, which
//! is also how processors learn the run's trace level),
//! `FetchBatchRequest` (issue stamp), and `Completion` (the processor's
//! [`QueryTrace`] span block). Presence is signalled by bytes remaining
//! after the base fields — with tracing off nothing is appended, so the
//! encoding is byte-identical to an untraced deployment (pinned by the
//! `wire_agreement` suite), and a PR 6-shaped frame decodes to a frame
//! with an absent block.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use grouting_graph::{NodeId, NodeLabelId};
use grouting_metrics::{FailoverStats, HeatMap, RunSnapshot};
use grouting_obs::RegistrySnapshot;
use grouting_query::{AccessStats, PrefetchStats, Query, QueryResult};
use grouting_trace::{QueryTrace, TraceLevel, TraceSnapshot};

use crate::error::{WireError, WireResult};

/// Hard cap on a single frame's payload; anything larger is treated as
/// stream corruption rather than an allocation request.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const TAG_HELLO: u8 = 1;
const TAG_SUBMIT: u8 = 2;
const TAG_SUBMIT_END: u8 = 3;
const TAG_DISPATCH: u8 = 4;
const TAG_COMPLETION: u8 = 5;
const TAG_FETCH_REQUEST: u8 = 6;
const TAG_FETCH_RESPONSE: u8 = 7;
const TAG_METRICS_REQUEST: u8 = 8;
const TAG_METRICS: u8 = 9;
const TAG_SHUTDOWN: u8 = 10;
const TAG_FETCH_BATCH_REQUEST: u8 = 11;
const TAG_FETCH_BATCH_RESPONSE: u8 = 12;
const TAG_OBS_PUSH: u8 = 13;

/// Who a connection speaks for, announced in [`Frame::Hello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A workload driver submitting queries and collecting completions.
    Client,
    /// A query processor ready for ack-driven dispatch.
    Processor,
}

/// The trace context a [`Frame::Dispatch`] carries when tracing is on.
///
/// Doubles as the trace-level plumbing to processors: a processor that
/// receives a dispatch with this block knows the run's level and starts
/// producing [`QueryTrace`] blocks on its completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchTrace {
    /// The run's trace level (never [`TraceLevel::Off`] — off means the
    /// block is absent entirely).
    pub level: TraceLevel,
    /// Router dispatch timestamp (`now_ns` domain).
    pub dispatched_ns: u64,
}

/// One finished query's record, as acknowledged over the wire.
///
/// The processor fills everything except `arrived_ns` (only the router
/// knows when the query arrived); the router stamps it before forwarding
/// the completion to the client, making the forwarded frame a complete
/// lifecycle record.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Workload sequence number.
    pub seq: u64,
    /// Processor that served the query.
    pub processor: u32,
    /// The query's answer.
    pub result: QueryResult,
    /// Cache/storage access statistics.
    pub stats: AccessStats,
    /// The serving processor's *cumulative* speculative-prefetch tally
    /// (issued/hits/wasted since it started). Cumulative rather than
    /// per-query because speculation crosses query boundaries — one
    /// query's piggybacked bytes serve another's demand — so the router
    /// keeps the latest value per processor and sums those for the run
    /// snapshot. Zeros whenever prefetching is off.
    pub prefetch: PrefetchStats,
    /// The serving processor's *cumulative* storage-failover tally
    /// (redials, replica failovers, resubmitted batches since it
    /// started) — cumulative for the same reason as `prefetch`: recovery
    /// crosses query boundaries, so the router keeps the latest value per
    /// processor and sums those for the run snapshot. Zeros while the
    /// storage tier stays healthy.
    pub failover: FailoverStats,
    /// Router arrival timestamp (0 until the router stamps it).
    pub arrived_ns: u64,
    /// Execution start timestamp.
    pub started_ns: u64,
    /// Execution completion timestamp.
    pub completed_ns: u64,
    /// The serving processor's *cumulative* per-partition workload heat
    /// (demand and speculative fetches per partition slot since it
    /// started) — cumulative for the same reason as `prefetch`, and
    /// counted unconditionally so the frame bytes are identical with
    /// observability sampling on or off. Empty until the processor's
    /// first fetch.
    pub heat: HeatMap,
    /// The processor-measured span block (fetch wait vs compute, per
    /// level at `spans`). `None` when tracing is off, keeping the frame
    /// byte-identical to an untraced run.
    pub trace: Option<QueryTrace>,
}

/// A protocol message between cluster peers.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Peer introduction: role plus processor id (0 for clients).
    Hello {
        /// What the peer is.
        role: Role,
        /// Processor id (`0` for clients).
        id: u32,
    },
    /// Client → router: one workload query.
    Submit {
        /// Workload sequence number.
        seq: u64,
        /// The query.
        query: Query,
        /// Client submit stamp, present when the client traces.
        submitted_ns: Option<u64>,
    },
    /// Client → router: no more submissions will follow.
    SubmitEnd,
    /// Router → processor: execute one query.
    Dispatch {
        /// Workload sequence number.
        seq: u64,
        /// The query.
        query: Query,
        /// Trace context, present when the router traces.
        trace: Option<DispatchTrace>,
    },
    /// Processor → router → client: one finished query.
    Completion(Completion),
    /// Processor → storage: adjacency record wanted.
    FetchRequest {
        /// The node whose record is wanted.
        node: NodeId,
    },
    /// Storage → processor: the encoded record, or a miss.
    FetchResponse {
        /// The requested node (lets a pool detect desynced streams).
        node: NodeId,
        /// Serving server id and encoded adjacency value, `None` when the
        /// node is not stored.
        payload: Option<(u16, Bytes)>,
    },
    /// Processor → storage: one frontier's worth of adjacency records
    /// wanted in a single exchange (the `grouting-flow` batch path).
    FetchBatchRequest {
        /// Correlation id: echoed in the response so a pipelined
        /// connection can match out-of-order replies to their requests.
        req_id: u64,
        /// The nodes whose records are wanted, in request order.
        nodes: Vec<NodeId>,
        /// Issue stamp, present when the requesting processor traces.
        issued_ns: Option<u64>,
    },
    /// Storage → processor: the batched records, in request order. A
    /// server may stream one batch's answer as several of these frames
    /// (chunked so no frame exceeds [`MAX_FRAME_BYTES`] however large the
    /// frontier); the requester concatenates frames with the same `req_id`
    /// until every requested node is answered.
    FetchBatchResponse {
        /// The correlation id of the request being answered.
        req_id: u64,
        /// Per-node serving server id and encoded adjacency value, `None`
        /// where the node is not stored.
        payloads: Vec<Option<(u16, Bytes)>>,
    },
    /// Processor/storage → router: one node's sampled metrics registry,
    /// absorbed into the router's cluster-wide scrape view. Only emitted
    /// while observability sampling is on.
    ObsPush {
        /// The node's registry at its latest sampling tick.
        snapshot: RegistrySnapshot,
    },
    /// Client → router: ask for the current run snapshot.
    MetricsRequest,
    /// Router → client: run totals, plus the trace layer's aggregate when
    /// tracing is on.
    Metrics {
        /// The counters every runtime accumulates.
        snapshot: RunSnapshot,
        /// Stage histograms, reactor telemetry, and recent spans; `None`
        /// when tracing is off (byte-identical to an untraced run).
        /// Boxed so this rare frame doesn't inflate every [`Frame`] move.
        trace: Option<Box<TraceSnapshot>>,
    },
    /// Orderly teardown of the receiving peer/connection.
    Shutdown,
}

impl Frame {
    /// Short frame name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Submit { .. } => "submit",
            Frame::SubmitEnd => "submit-end",
            Frame::Dispatch { .. } => "dispatch",
            Frame::Completion(_) => "completion",
            Frame::FetchRequest { .. } => "fetch-request",
            Frame::FetchResponse { .. } => "fetch-response",
            Frame::FetchBatchRequest { .. } => "fetch-batch-request",
            Frame::FetchBatchResponse { .. } => "fetch-batch-response",
            Frame::ObsPush { .. } => "obs-push",
            Frame::MetricsRequest => "metrics-request",
            Frame::Metrics { .. } => "metrics",
            Frame::Shutdown => "shutdown",
        }
    }

    /// Encodes this frame to its payload bytes (no length prefix).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            Frame::Hello { role, id } => {
                buf.put_u8(TAG_HELLO);
                buf.put_u8(match role {
                    Role::Client => 0,
                    Role::Processor => 1,
                });
                buf.put_u32_le(*id);
            }
            Frame::Submit {
                seq,
                query,
                submitted_ns,
            } => {
                buf.put_u8(TAG_SUBMIT);
                buf.put_u64_le(*seq);
                put_query(&mut buf, query);
                if let Some(ns) = submitted_ns {
                    buf.put_u64_le(*ns);
                }
            }
            Frame::SubmitEnd => buf.put_u8(TAG_SUBMIT_END),
            Frame::Dispatch { seq, query, trace } => {
                buf.put_u8(TAG_DISPATCH);
                buf.put_u64_le(*seq);
                put_query(&mut buf, query);
                if let Some(t) = trace {
                    buf.put_u8(t.level.as_u8());
                    buf.put_u64_le(t.dispatched_ns);
                }
            }
            Frame::Completion(c) => {
                buf.put_u8(TAG_COMPLETION);
                buf.put_u64_le(c.seq);
                buf.put_u32_le(c.processor);
                put_result(&mut buf, &c.result);
                buf.put_u64_le(c.stats.cache_hits);
                buf.put_u64_le(c.stats.cache_misses);
                buf.put_u64_le(c.stats.miss_bytes);
                buf.put_u64_le(c.stats.evictions);
                buf.put_u64_le(c.prefetch.issued);
                buf.put_u64_le(c.prefetch.hits);
                buf.put_u64_le(c.prefetch.wasted_bytes);
                buf.put_u64_le(c.failover.redials);
                buf.put_u64_le(c.failover.replica_failovers);
                buf.put_u64_le(c.failover.batches_resubmitted);
                buf.put_u64_le(c.arrived_ns);
                buf.put_u64_le(c.started_ns);
                buf.put_u64_le(c.completed_ns);
                c.heat.encode_into(&mut buf);
                if let Some(t) = &c.trace {
                    t.encode_into(&mut buf);
                }
            }
            Frame::FetchRequest { node } => {
                buf.put_u8(TAG_FETCH_REQUEST);
                buf.put_u32_le(node.raw());
            }
            Frame::FetchResponse { node, payload } => {
                buf.put_u8(TAG_FETCH_RESPONSE);
                buf.put_u32_le(node.raw());
                match payload {
                    None => buf.put_u8(0),
                    Some((server, value)) => {
                        buf.put_u8(1);
                        buf.put_u16_le(*server);
                        buf.put_u32_le(value.len() as u32);
                        buf.put_slice(value);
                    }
                }
            }
            Frame::FetchBatchRequest {
                req_id,
                nodes,
                issued_ns,
            } => {
                buf.put_u8(TAG_FETCH_BATCH_REQUEST);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(nodes.len() as u32);
                for node in nodes {
                    buf.put_u32_le(node.raw());
                }
                if let Some(ns) = issued_ns {
                    buf.put_u64_le(*ns);
                }
            }
            Frame::FetchBatchResponse { req_id, payloads } => {
                buf.put_u8(TAG_FETCH_BATCH_RESPONSE);
                buf.put_u64_le(*req_id);
                buf.put_u32_le(payloads.len() as u32);
                for payload in payloads {
                    match payload {
                        None => buf.put_u8(0),
                        Some((server, value)) => {
                            buf.put_u8(1);
                            buf.put_u16_le(*server);
                            buf.put_u32_le(value.len() as u32);
                            buf.put_slice(value);
                        }
                    }
                }
            }
            Frame::ObsPush { snapshot } => {
                buf.put_u8(TAG_OBS_PUSH);
                snapshot.encode_into(&mut buf);
            }
            Frame::MetricsRequest => buf.put_u8(TAG_METRICS_REQUEST),
            Frame::Metrics { snapshot, trace } => {
                buf.put_u8(TAG_METRICS);
                buf.put_slice(&snapshot.encode());
                if let Some(t) = trace {
                    t.encode_into(&mut buf);
                }
            }
            Frame::Shutdown => buf.put_u8(TAG_SHUTDOWN),
        }
        buf.freeze()
    }

    /// The exact byte length [`Frame::encode`] would produce, computed
    /// without allocating or copying payloads — cheap enough for the
    /// reactor to count wire bytes per frame even when the frame carries
    /// a multi-megabyte batch response.
    pub fn encoded_len(&self) -> usize {
        match self {
            Frame::Hello { .. } => 1 + 1 + 4,
            Frame::Submit {
                query,
                submitted_ns,
                ..
            } => 1 + 8 + query_encoded_len(query) + submitted_ns.map_or(0, |_| 8),
            Frame::SubmitEnd => 1,
            Frame::Dispatch { query, trace, .. } => {
                1 + 8 + query_encoded_len(query) + trace.map_or(0, |_| 9)
            }
            Frame::Completion(c) => {
                1 + 8
                    + 4
                    + result_encoded_len(&c.result)
                    + 8 * 13
                    + c.heat.encoded_len()
                    + c.trace.as_ref().map_or(0, QueryTrace::encoded_len)
            }
            Frame::FetchRequest { .. } => 1 + 4,
            Frame::FetchResponse { payload, .. } => {
                1 + 4
                    + match payload {
                        None => 1,
                        Some((_, value)) => 1 + 2 + 4 + value.len(),
                    }
            }
            Frame::FetchBatchRequest {
                nodes, issued_ns, ..
            } => 1 + 8 + 4 + 4 * nodes.len() + issued_ns.map_or(0, |_| 8),
            Frame::FetchBatchResponse { payloads, .. } => {
                1 + 8
                    + 4
                    + payloads
                        .iter()
                        .map(|p| match p {
                            None => 1,
                            Some((_, value)) => 1 + 2 + 4 + value.len(),
                        })
                        .sum::<usize>()
            }
            Frame::ObsPush { snapshot } => 1 + snapshot.encoded_len(),
            Frame::MetricsRequest => 1,
            Frame::Metrics { snapshot, trace } => {
                1 + snapshot.encoded_len() + trace.as_ref().map_or(0, |t| t.encoded_len())
            }
            Frame::Shutdown => 1,
        }
    }

    /// Encodes this frame as a chunk sequence whose concatenation is
    /// byte-identical to [`Frame::encode`]'s output, with each response
    /// payload handed out as its own zero-copy [`Bytes`] view — so a
    /// vectored send can scatter-gather a large batch response straight
    /// from the storage tier's buffers instead of flattening it into one
    /// allocation. Frames without payload sections return a single chunk.
    pub fn encode_chunks(&self) -> Vec<Bytes> {
        match self {
            Frame::FetchResponse {
                node,
                payload: Some((server, value)),
            } => {
                let mut meta = BytesMut::with_capacity(12);
                meta.put_u8(TAG_FETCH_RESPONSE);
                meta.put_u32_le(node.raw());
                meta.put_u8(1);
                meta.put_u16_le(*server);
                meta.put_u32_le(value.len() as u32);
                let mut chunks = vec![meta.freeze()];
                if !value.is_empty() {
                    chunks.push(value.clone());
                }
                chunks
            }
            Frame::FetchBatchResponse { req_id, payloads } => {
                // Fixed-width fields accumulate into one meta buffer;
                // `cuts` marks where a payload interleaves. The chunks are
                // then meta slices and payload views — payload bytes are
                // never copied.
                let mut meta = BytesMut::with_capacity(13 + payloads.len() * 7);
                let mut cuts: Vec<(usize, Bytes)> = Vec::new();
                meta.put_u8(TAG_FETCH_BATCH_RESPONSE);
                meta.put_u64_le(*req_id);
                meta.put_u32_le(payloads.len() as u32);
                for payload in payloads {
                    match payload {
                        None => meta.put_u8(0),
                        Some((server, value)) => {
                            meta.put_u8(1);
                            meta.put_u16_le(*server);
                            meta.put_u32_le(value.len() as u32);
                            if !value.is_empty() {
                                cuts.push((meta.len(), value.clone()));
                            }
                        }
                    }
                }
                let meta = meta.freeze();
                let mut chunks = Vec::with_capacity(cuts.len() * 2 + 1);
                let mut at = 0;
                for (cut, value) in cuts {
                    if cut > at {
                        chunks.push(meta.slice(at..cut));
                    }
                    chunks.push(value);
                    at = cut;
                }
                if at < meta.len() || chunks.is_empty() {
                    chunks.push(meta.slice(at..));
                }
                chunks
            }
            _ => vec![self.encode()],
        }
    }

    /// Decodes a frame from payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Codec`] on truncated, trailing, or malformed
    /// input.
    pub fn decode(mut data: Bytes) -> WireResult<Frame> {
        need(&data, 1)?;
        let tag = data.get_u8();
        let frame = match tag {
            TAG_HELLO => {
                need(&data, 5)?;
                let role = match data.get_u8() {
                    0 => Role::Client,
                    1 => Role::Processor,
                    r => return Err(WireError::Codec(format!("unknown role {r}"))),
                };
                Frame::Hello {
                    role,
                    id: data.get_u32_le(),
                }
            }
            TAG_SUBMIT | TAG_DISPATCH => {
                need(&data, 8)?;
                let seq = data.get_u64_le();
                let query = get_query(&mut data)?;
                if tag == TAG_SUBMIT {
                    let submitted_ns = if data.has_remaining() {
                        need(&data, 8)?;
                        Some(data.get_u64_le())
                    } else {
                        None
                    };
                    Frame::Submit {
                        seq,
                        query,
                        submitted_ns,
                    }
                } else {
                    let trace = if data.has_remaining() {
                        need(&data, 9)?;
                        let level = TraceLevel::from_u8(data.get_u8()).map_err(WireError::Codec)?;
                        if level == TraceLevel::Off {
                            return Err(WireError::Codec(
                                "dispatch trace block with level off".to_string(),
                            ));
                        }
                        Some(DispatchTrace {
                            level,
                            dispatched_ns: data.get_u64_le(),
                        })
                    } else {
                        None
                    };
                    Frame::Dispatch { seq, query, trace }
                }
            }
            TAG_SUBMIT_END => Frame::SubmitEnd,
            TAG_COMPLETION => {
                need(&data, 12)?;
                let seq = data.get_u64_le();
                let processor = data.get_u32_le();
                let result = get_result(&mut data)?;
                need(&data, 13 * 8)?;
                let stats = AccessStats {
                    cache_hits: data.get_u64_le(),
                    cache_misses: data.get_u64_le(),
                    miss_bytes: data.get_u64_le(),
                    evictions: data.get_u64_le(),
                };
                let prefetch = PrefetchStats {
                    issued: data.get_u64_le(),
                    hits: data.get_u64_le(),
                    wasted_bytes: data.get_u64_le(),
                };
                let failover = FailoverStats {
                    redials: data.get_u64_le(),
                    replica_failovers: data.get_u64_le(),
                    batches_resubmitted: data.get_u64_le(),
                };
                let arrived_ns = data.get_u64_le();
                let started_ns = data.get_u64_le();
                let completed_ns = data.get_u64_le();
                let heat = HeatMap::decode_prefix(&mut data).map_err(WireError::Codec)?;
                let trace = if data.has_remaining() {
                    Some(QueryTrace::decode_prefix(&mut data).map_err(WireError::Codec)?)
                } else {
                    None
                };
                Frame::Completion(Completion {
                    seq,
                    processor,
                    result,
                    stats,
                    prefetch,
                    failover,
                    arrived_ns,
                    started_ns,
                    completed_ns,
                    heat,
                    trace,
                })
            }
            TAG_FETCH_REQUEST => {
                need(&data, 4)?;
                Frame::FetchRequest {
                    node: NodeId::new(data.get_u32_le()),
                }
            }
            TAG_FETCH_RESPONSE => {
                need(&data, 5)?;
                let node = NodeId::new(data.get_u32_le());
                let payload = match data.get_u8() {
                    0 => None,
                    1 => {
                        need(&data, 6)?;
                        let server = data.get_u16_le();
                        let len = data.get_u32_le() as usize;
                        need(&data, len)?;
                        let value = data.slice(0..len);
                        data.advance(len);
                        Some((server, value))
                    }
                    f => return Err(WireError::Codec(format!("bad payload flag {f}"))),
                };
                Frame::FetchResponse { node, payload }
            }
            TAG_FETCH_BATCH_REQUEST => {
                need(&data, 12)?;
                let req_id = data.get_u64_le();
                let count = data.get_u32_le() as usize;
                need(&data, count.saturating_mul(4))?;
                let nodes = (0..count).map(|_| NodeId::new(data.get_u32_le())).collect();
                let issued_ns = if data.has_remaining() {
                    need(&data, 8)?;
                    Some(data.get_u64_le())
                } else {
                    None
                };
                Frame::FetchBatchRequest {
                    req_id,
                    nodes,
                    issued_ns,
                }
            }
            TAG_FETCH_BATCH_RESPONSE => {
                need(&data, 12)?;
                let req_id = data.get_u64_le();
                let count = data.get_u32_le() as usize;
                let mut payloads = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    need(&data, 1)?;
                    let payload = match data.get_u8() {
                        0 => None,
                        1 => {
                            need(&data, 6)?;
                            let server = data.get_u16_le();
                            let len = data.get_u32_le() as usize;
                            need(&data, len)?;
                            let value = data.slice(0..len);
                            data.advance(len);
                            Some((server, value))
                        }
                        f => return Err(WireError::Codec(format!("bad payload flag {f}"))),
                    };
                    payloads.push(payload);
                }
                Frame::FetchBatchResponse { req_id, payloads }
            }
            TAG_OBS_PUSH => Frame::ObsPush {
                snapshot: RegistrySnapshot::decode_prefix(&mut data).map_err(WireError::Codec)?,
            },
            TAG_METRICS_REQUEST => Frame::MetricsRequest,
            TAG_METRICS => {
                let snapshot = RunSnapshot::decode_prefix(&mut data).map_err(WireError::Codec)?;
                let trace = if data.has_remaining() {
                    Some(Box::new(
                        TraceSnapshot::decode_prefix(&mut data).map_err(WireError::Codec)?,
                    ))
                } else {
                    None
                };
                Frame::Metrics { snapshot, trace }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            t => return Err(WireError::Codec(format!("unknown frame tag {t}"))),
        };
        if data.has_remaining() {
            return Err(WireError::Codec(format!(
                "{} trailing bytes after {} frame",
                data.remaining(),
                frame.kind()
            )));
        }
        Ok(frame)
    }
}

const QUERY_AGG: u8 = 0;
const QUERY_RWR: u8 = 1;
const QUERY_REACH: u8 = 2;
const QUERY_LREACH: u8 = 3;

fn query_encoded_len(query: &Query) -> usize {
    match query {
        Query::NeighborAggregation { label, .. } => 1 + 4 + 4 + 1 + label.map_or(0, |_| 2),
        Query::RandomWalk { .. } => 1 + 4 + 4 + 8 + 8,
        Query::Reachability { .. } => 1 + 4 + 4 + 4,
        Query::ConstrainedReachability { .. } => 1 + 4 + 4 + 4 + 2,
    }
}

fn put_query(buf: &mut BytesMut, query: &Query) {
    match query {
        Query::NeighborAggregation { node, hops, label } => {
            buf.put_u8(QUERY_AGG);
            buf.put_u32_le(node.raw());
            buf.put_u32_le(*hops);
            match label {
                None => buf.put_u8(0),
                Some(l) => {
                    buf.put_u8(1);
                    buf.put_u16_le(l.0);
                }
            }
        }
        Query::RandomWalk {
            node,
            steps,
            restart_prob,
            seed,
        } => {
            buf.put_u8(QUERY_RWR);
            buf.put_u32_le(node.raw());
            buf.put_u32_le(*steps);
            buf.put_u64_le(restart_prob.to_bits());
            buf.put_u64_le(*seed);
        }
        Query::Reachability {
            source,
            target,
            hops,
        } => {
            buf.put_u8(QUERY_REACH);
            buf.put_u32_le(source.raw());
            buf.put_u32_le(target.raw());
            buf.put_u32_le(*hops);
        }
        Query::ConstrainedReachability {
            source,
            target,
            hops,
            via_label,
        } => {
            buf.put_u8(QUERY_LREACH);
            buf.put_u32_le(source.raw());
            buf.put_u32_le(target.raw());
            buf.put_u32_le(*hops);
            buf.put_u16_le(via_label.0);
        }
    }
}

fn get_query(data: &mut Bytes) -> WireResult<Query> {
    need(data, 1)?;
    match data.get_u8() {
        QUERY_AGG => {
            need(data, 9)?;
            let node = NodeId::new(data.get_u32_le());
            let hops = data.get_u32_le();
            let label = match data.get_u8() {
                0 => None,
                1 => {
                    need(data, 2)?;
                    Some(NodeLabelId::new(data.get_u16_le()))
                }
                f => return Err(WireError::Codec(format!("bad label flag {f}"))),
            };
            Ok(Query::NeighborAggregation { node, hops, label })
        }
        QUERY_RWR => {
            need(data, 24)?;
            Ok(Query::RandomWalk {
                node: NodeId::new(data.get_u32_le()),
                steps: data.get_u32_le(),
                restart_prob: f64::from_bits(data.get_u64_le()),
                seed: data.get_u64_le(),
            })
        }
        QUERY_REACH => {
            need(data, 12)?;
            Ok(Query::Reachability {
                source: NodeId::new(data.get_u32_le()),
                target: NodeId::new(data.get_u32_le()),
                hops: data.get_u32_le(),
            })
        }
        QUERY_LREACH => {
            need(data, 14)?;
            Ok(Query::ConstrainedReachability {
                source: NodeId::new(data.get_u32_le()),
                target: NodeId::new(data.get_u32_le()),
                hops: data.get_u32_le(),
                via_label: NodeLabelId::new(data.get_u16_le()),
            })
        }
        t => Err(WireError::Codec(format!("unknown query tag {t}"))),
    }
}

const RESULT_COUNT: u8 = 0;
const RESULT_WALK: u8 = 1;
const RESULT_REACHABLE: u8 = 2;

fn result_encoded_len(result: &QueryResult) -> usize {
    match result {
        QueryResult::Count(_) => 1 + 8,
        QueryResult::Walk { .. } => 1 + 4 + 8,
        QueryResult::Reachable(_) => 1 + 1,
    }
}

fn put_result(buf: &mut BytesMut, result: &QueryResult) {
    match result {
        QueryResult::Count(c) => {
            buf.put_u8(RESULT_COUNT);
            buf.put_u64_le(*c);
        }
        QueryResult::Walk { end, visited } => {
            buf.put_u8(RESULT_WALK);
            buf.put_u32_le(end.raw());
            buf.put_u64_le(*visited);
        }
        QueryResult::Reachable(r) => {
            buf.put_u8(RESULT_REACHABLE);
            buf.put_u8(u8::from(*r));
        }
    }
}

fn get_result(data: &mut Bytes) -> WireResult<QueryResult> {
    need(data, 1)?;
    match data.get_u8() {
        RESULT_COUNT => {
            need(data, 8)?;
            Ok(QueryResult::Count(data.get_u64_le()))
        }
        RESULT_WALK => {
            need(data, 12)?;
            Ok(QueryResult::Walk {
                end: NodeId::new(data.get_u32_le()),
                visited: data.get_u64_le(),
            })
        }
        RESULT_REACHABLE => {
            need(data, 1)?;
            match data.get_u8() {
                0 => Ok(QueryResult::Reachable(false)),
                1 => Ok(QueryResult::Reachable(true)),
                b => Err(WireError::Codec(format!("bad bool {b}"))),
            }
        }
        t => Err(WireError::Codec(format!("unknown result tag {t}"))),
    }
}

fn need(data: &Bytes, n: usize) -> WireResult<()> {
    if data.remaining() < n {
        Err(WireError::Codec(format!(
            "need {n} bytes, have {}",
            data.remaining()
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn heat(cells: &[(u64, u64)]) -> HeatMap {
        let mut h = HeatMap::new();
        for (slot, (d, s)) in cells.iter().enumerate() {
            h.record_demand(slot, *d);
            h.record_speculative(slot, *s);
        }
        h
    }

    fn obs_snapshot() -> RegistrySnapshot {
        let mut reg = grouting_obs::Registry::new(grouting_obs::NodeRole::Storage, 2);
        reg.begin(77_000);
        reg.counter("grouting_cache_hits_total", 41);
        reg.gauge_with("grouting_queue_depth", &[("lane", "demand")], 3.5);
        reg.snapshot()
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                role: Role::Client,
                id: 0,
            },
            Frame::Hello {
                role: Role::Processor,
                id: 6,
            },
            Frame::Submit {
                seq: 42,
                query: Query::NeighborAggregation {
                    node: n(7),
                    hops: 2,
                    label: Some(NodeLabelId::new(3)),
                },
                submitted_ns: None,
            },
            Frame::SubmitEnd,
            Frame::Dispatch {
                seq: 43,
                query: Query::RandomWalk {
                    node: n(9),
                    steps: 16,
                    restart_prob: 0.15,
                    seed: 99,
                },
                trace: None,
            },
            Frame::Completion(Completion {
                seq: 43,
                processor: 2,
                result: QueryResult::Walk {
                    end: n(4),
                    visited: 11,
                },
                stats: AccessStats {
                    cache_hits: 5,
                    cache_misses: 6,
                    miss_bytes: 300,
                    evictions: 1,
                },
                prefetch: PrefetchStats {
                    issued: 12,
                    hits: 9,
                    wasted_bytes: 256,
                },
                failover: FailoverStats {
                    redials: 2,
                    replica_failovers: 1,
                    batches_resubmitted: 3,
                },
                arrived_ns: 10,
                started_ns: 20,
                completed_ns: 30,
                heat: heat(&[(3, 1), (0, 2)]),
                trace: None,
            }),
            Frame::ObsPush {
                snapshot: obs_snapshot(),
            },
            Frame::FetchRequest { node: n(123) },
            Frame::FetchResponse {
                node: n(123),
                payload: Some((1, Bytes::from(vec![1u8, 2, 3]))),
            },
            Frame::FetchResponse {
                node: n(999),
                payload: None,
            },
            Frame::FetchBatchRequest {
                req_id: 7,
                nodes: vec![n(1), n(5), n(9)],
                issued_ns: None,
            },
            Frame::FetchBatchRequest {
                req_id: 8,
                nodes: Vec::new(),
                issued_ns: None,
            },
            Frame::FetchBatchResponse {
                req_id: 7,
                payloads: vec![
                    Some((0, Bytes::from(vec![4u8, 5]))),
                    None,
                    Some((2, Bytes::new())),
                ],
            },
            Frame::FetchBatchResponse {
                req_id: 8,
                payloads: Vec::new(),
            },
            Frame::MetricsRequest,
            Frame::Metrics {
                snapshot: RunSnapshot {
                    queries: 10,
                    cache_hits: 7,
                    cache_misses: 3,
                    evictions: 0,
                    stolen: 1,
                    prefetch_issued: 4,
                    prefetch_hits: 2,
                    prefetch_wasted_bytes: 64,
                    redials: 2,
                    replica_failovers: 1,
                    batches_resubmitted: 3,
                    windows_resubmitted: 1,
                    per_processor: vec![5, 5],
                    partition_heat: heat(&[(3, 1), (0, 2)]),
                    region_heat: heat(&[(7, 0)]),
                },
                trace: None,
            },
            Frame::Shutdown,
        ]
    }

    /// The trace-carrying variants of every frame that grew an optional
    /// block, paired with the same frame with the block stripped.
    fn traced_frame_pairs() -> Vec<(Frame, Frame)> {
        let mut trace_snapshot = TraceSnapshot::new(grouting_trace::TraceLevel::Spans);
        trace_snapshot
            .stages
            .record(grouting_trace::Stage::DispatchRtt, 42_000);
        trace_snapshot.reactor.frames_in = 5;
        trace_snapshot.spans.push(grouting_trace::QuerySpan {
            seq: 9,
            processor: 1,
            levels: 2,
            queue_ns: 100,
            rtt_ns: 9_000,
            fetch_wait_ns: 4_000,
            compute_ns: 3_000,
            completion_ns: 500,
        });
        let completion = Completion {
            seq: 43,
            processor: 2,
            result: QueryResult::Count(7),
            stats: AccessStats {
                cache_hits: 5,
                cache_misses: 6,
                miss_bytes: 300,
                evictions: 1,
            },
            prefetch: PrefetchStats {
                issued: 12,
                hits: 9,
                wasted_bytes: 256,
            },
            failover: FailoverStats {
                redials: 1,
                replica_failovers: 0,
                batches_resubmitted: 1,
            },
            arrived_ns: 10,
            started_ns: 20,
            completed_ns: 30,
            heat: heat(&[(5, 2)]),
            trace: None,
        };
        let query = Query::NeighborAggregation {
            node: n(7),
            hops: 2,
            label: None,
        };
        vec![
            (
                Frame::Submit {
                    seq: 42,
                    query,
                    submitted_ns: Some(123_456),
                },
                Frame::Submit {
                    seq: 42,
                    query,
                    submitted_ns: None,
                },
            ),
            (
                Frame::Dispatch {
                    seq: 43,
                    query,
                    trace: Some(DispatchTrace {
                        level: grouting_trace::TraceLevel::Stats,
                        dispatched_ns: 9_999,
                    }),
                },
                Frame::Dispatch {
                    seq: 43,
                    query,
                    trace: None,
                },
            ),
            (
                Frame::Completion(Completion {
                    trace: Some(QueryTrace {
                        fetch_wait_ns: 4_000,
                        compute_ns: 3_000,
                        levels: 2,
                        level_spans: vec![(2_500, 1_800), (1_500, 1_200)],
                    }),
                    ..completion.clone()
                }),
                Frame::Completion(completion),
            ),
            (
                Frame::FetchBatchRequest {
                    req_id: 7,
                    nodes: vec![n(1), n(5)],
                    issued_ns: Some(77_000),
                },
                Frame::FetchBatchRequest {
                    req_id: 7,
                    nodes: vec![n(1), n(5)],
                    issued_ns: None,
                },
            ),
            (
                Frame::Metrics {
                    snapshot: RunSnapshot {
                        queries: 10,
                        cache_hits: 7,
                        cache_misses: 3,
                        evictions: 0,
                        stolen: 1,
                        prefetch_issued: 4,
                        prefetch_hits: 2,
                        prefetch_wasted_bytes: 64,
                        redials: 0,
                        replica_failovers: 0,
                        batches_resubmitted: 0,
                        windows_resubmitted: 0,
                        per_processor: vec![5, 5],
                        partition_heat: heat(&[(9, 4), (2, 0), (0, 1)]),
                        region_heat: heat(&[(5, 5)]),
                    },
                    trace: Some(Box::new(trace_snapshot)),
                },
                Frame::Metrics {
                    snapshot: RunSnapshot {
                        queries: 10,
                        cache_hits: 7,
                        cache_misses: 3,
                        evictions: 0,
                        stolen: 1,
                        prefetch_issued: 4,
                        prefetch_hits: 2,
                        prefetch_wasted_bytes: 64,
                        redials: 0,
                        replica_failovers: 0,
                        batches_resubmitted: 0,
                        windows_resubmitted: 0,
                        per_processor: vec![5, 5],
                        partition_heat: heat(&[(9, 4), (2, 0), (0, 1)]),
                        region_heat: heat(&[(5, 5)]),
                    },
                    trace: None,
                },
            ),
        ]
    }

    #[test]
    fn traced_frames_round_trip() {
        for (traced, _) in traced_frame_pairs() {
            let bytes = traced.encode();
            assert_eq!(Frame::decode(bytes).unwrap(), traced, "{}", traced.kind());
        }
    }

    /// Tracing rides as a pure suffix: the traced encoding starts with
    /// the exact untraced bytes, so a trace-off deployment emits frames
    /// byte-identical to the pre-trace protocol — and pre-trace bytes
    /// decode to frames with the block absent.
    #[test]
    fn trace_blocks_are_strict_suffixes() {
        for (traced, untraced) in traced_frame_pairs() {
            let with = traced.encode();
            let without = untraced.encode();
            assert!(with.len() > without.len(), "{}", traced.kind());
            assert_eq!(
                &with[..without.len()],
                &without[..],
                "{} block is not a suffix",
                traced.kind()
            );
            assert_eq!(
                Frame::decode(without).unwrap(),
                untraced,
                "{} old-shape bytes stopped decoding",
                traced.kind()
            );
        }
    }

    /// Cutting a traced frame either errors or (exactly at the block
    /// boundary) yields the legitimate untraced frame — never a third
    /// interpretation, and never a panic.
    #[test]
    fn traced_truncation_never_misdecodes() {
        for (traced, untraced) in traced_frame_pairs() {
            let bytes = traced.encode();
            let base = untraced.encode().len();
            for cut in 0..bytes.len() {
                match Frame::decode(bytes.slice(0..cut)) {
                    Ok(frame) => {
                        assert_eq!(cut, base, "{} cut {cut} decoded", traced.kind());
                        assert_eq!(frame, untraced);
                    }
                    Err(_) => assert_ne!(cut, base, "{} base shape rejected", traced.kind()),
                }
            }
        }
    }

    #[test]
    fn traced_frames_reject_trailing_bytes() {
        for (traced, _) in traced_frame_pairs() {
            let mut raw = traced.encode().to_vec();
            raw.push(0xAB);
            assert!(
                Frame::decode(Bytes::from(raw)).is_err(),
                "{} accepted trailing byte after trace block",
                traced.kind()
            );
        }
    }

    #[test]
    fn dispatch_trace_with_level_off_is_rejected() {
        let traced = Frame::Dispatch {
            seq: 1,
            query: Query::NeighborAggregation {
                node: n(1),
                hops: 1,
                label: None,
            },
            trace: Some(DispatchTrace {
                level: grouting_trace::TraceLevel::Stats,
                dispatched_ns: 5,
            }),
        };
        let mut raw = traced.encode().to_vec();
        let level_at = raw.len() - 9;
        raw[level_at] = 0; // TraceLevel::Off on the wire
        assert!(Frame::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let back = Frame::decode(bytes).unwrap();
            assert_eq!(back, frame, "{}", frame.kind());
        }
    }

    #[test]
    fn every_query_kind_round_trips() {
        let queries = [
            Query::NeighborAggregation {
                node: n(1),
                hops: 3,
                label: None,
            },
            Query::Reachability {
                source: n(1),
                target: n(2),
                hops: 4,
            },
            Query::ConstrainedReachability {
                source: n(3),
                target: n(4),
                hops: 2,
                via_label: NodeLabelId::new(9),
            },
        ];
        for q in queries {
            let f = Frame::Submit {
                seq: 1,
                query: q,
                submitted_ns: None,
            };
            assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn encoded_len_matches_encode() {
        for frame in sample_frames() {
            assert_eq!(
                frame.encoded_len(),
                frame.encode().len(),
                "{}",
                frame.kind()
            );
        }
        for (traced, untraced) in traced_frame_pairs() {
            assert_eq!(
                traced.encoded_len(),
                traced.encode().len(),
                "{}",
                traced.kind()
            );
            assert_eq!(untraced.encoded_len(), untraced.encode().len());
        }
    }

    #[test]
    fn encode_chunks_concatenation_matches_encode() {
        for frame in sample_frames() {
            let flat = frame.encode();
            let chunks = frame.encode_chunks();
            let mut joined = Vec::new();
            for c in &chunks {
                joined.extend_from_slice(c);
            }
            assert_eq!(&joined[..], &flat[..], "{}", frame.kind());
            assert!(
                chunks.iter().all(|c| !c.is_empty()),
                "{} emitted an empty chunk",
                frame.kind()
            );
        }
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                assert!(
                    Frame::decode(bytes.slice(0..cut)).is_err(),
                    "{} cut at {cut} decoded",
                    frame.kind()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for frame in sample_frames() {
            let mut raw = frame.encode().to_vec();
            raw.push(0xAB);
            assert!(
                Frame::decode(Bytes::from(raw)).is_err(),
                "{} accepted trailing byte",
                frame.kind()
            );
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(Frame::decode(Bytes::from(vec![200u8])).is_err());
        assert!(Frame::decode(Bytes::new()).is_err());
        // Unknown query tag inside a submit.
        assert!(Frame::decode(Bytes::from(vec![TAG_SUBMIT, 0, 0, 0, 0, 0, 0, 0, 0, 77])).is_err());
    }

    /// The largest batch a real deployment would ship (a whole hot
    /// frontier): well beyond any test workload, still far under
    /// `MAX_FRAME_BYTES`.
    #[test]
    fn max_size_batch_round_trips() {
        let nodes: Vec<NodeId> = (0..100_000).map(n).collect();
        let request = Frame::FetchBatchRequest {
            req_id: u64::MAX,
            nodes: nodes.clone(),
            issued_ns: None,
        };
        let encoded = request.encode();
        assert!(encoded.len() < MAX_FRAME_BYTES);
        assert_eq!(Frame::decode(encoded).unwrap(), request);

        let payloads: Vec<Option<(u16, Bytes)>> = (0..100_000u32)
            .map(|i| {
                if i % 7 == 0 {
                    None
                } else {
                    Some(((i % 5) as u16, Bytes::from(i.to_le_bytes().to_vec())))
                }
            })
            .collect();
        let response = Frame::FetchBatchResponse {
            req_id: u64::MAX,
            payloads,
        };
        let encoded = response.encode();
        assert!(encoded.len() < MAX_FRAME_BYTES);
        assert_eq!(Frame::decode(encoded).unwrap(), response);
    }

    #[test]
    fn batch_request_with_absurd_count_is_rejected() {
        // A claimed count far larger than the remaining bytes must error
        // out of the `need` check, not attempt the allocation.
        let mut raw = vec![TAG_FETCH_BATCH_REQUEST];
        raw.extend_from_slice(&1u64.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 8]);
        assert!(Frame::decode(Bytes::from(raw)).is_err());
    }

    proptest::proptest! {
        #[test]
        fn prop_fetch_batch_request_round_trip(
            req_id in 0u64..u64::MAX,
            nodes in proptest::collection::vec(0u32..1_000_000, 0..300),
        ) {
            let f = Frame::FetchBatchRequest {
                req_id,
                nodes: nodes.into_iter().map(n).collect(),
                issued_ns: None,
            };
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_fetch_batch_response_round_trip(
            req_id in 0u64..u64::MAX,
            payloads in proptest::collection::vec(
                proptest::option::of((0u16..512, proptest::collection::vec(0u8..=255, 0..64))),
                0..100,
            ),
        ) {
            let f = Frame::FetchBatchResponse {
                req_id,
                payloads: payloads
                    .into_iter()
                    .map(|p| p.map(|(s, v)| (s, Bytes::from(v))))
                    .collect(),
            };
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_submit_round_trip(
            seq in 0u64..u64::MAX,
            kind in 0u8..4,
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
            hops in 0u32..16,
            label in proptest::option::of(0u16..512),
            prob in 0.0f64..1.0,
            seed in 0u64..u64::MAX,
            submitted_ns in proptest::option::of(0u64..1 << 50),
        ) {
            let query = match kind {
                0 => Query::NeighborAggregation {
                    node: n(a),
                    hops,
                    label: label.map(NodeLabelId::new),
                },
                1 => Query::RandomWalk { node: n(a), steps: hops, restart_prob: prob, seed },
                2 => Query::Reachability { source: n(a), target: n(b), hops },
                _ => Query::ConstrainedReachability {
                    source: n(a),
                    target: n(b),
                    hops,
                    via_label: NodeLabelId::new(label.unwrap_or(1)),
                },
            };
            let f = Frame::Submit {
                seq,
                query,
                submitted_ns,
            };
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_completion_round_trip(
            seq in 0u64..u64::MAX,
            processor in 0u32..64,
            rkind in 0u8..3,
            v in 0u64..1 << 50,
            node in 0u32..1_000_000,
            hits in 0u64..1 << 40,
            misses in 0u64..1 << 40,
            bytes_ in 0u64..1 << 40,
            ts in 0u64..1 << 50,
            heat_cells in proptest::collection::vec((0u64..1 << 40, 0u64..1 << 40), 0..5),
            trace in proptest::option::of((
                0u64..1 << 40,
                0u64..1 << 40,
                0u32..16,
                proptest::collection::vec((0u64..1 << 40, 0u64..1 << 40), 0..4),
            )),
        ) {
            let result = match rkind {
                0 => QueryResult::Count(v),
                1 => QueryResult::Walk { end: n(node), visited: v },
                _ => QueryResult::Reachable(v % 2 == 0),
            };
            let f = Frame::Completion(Completion {
                seq,
                processor,
                result,
                stats: AccessStats {
                    cache_hits: hits,
                    cache_misses: misses,
                    miss_bytes: bytes_,
                    evictions: misses / 7,
                },
                prefetch: PrefetchStats {
                    issued: hits / 3,
                    hits: hits / 4,
                    wasted_bytes: bytes_ / 2,
                },
                failover: FailoverStats {
                    redials: misses / 5,
                    replica_failovers: misses / 11,
                    batches_resubmitted: misses / 13,
                },
                arrived_ns: ts,
                started_ns: ts + 1,
                completed_ns: ts + 2,
                heat: heat(&heat_cells),
                trace: trace.map(|(fetch_wait_ns, compute_ns, levels, level_spans)| QueryTrace {
                    fetch_wait_ns,
                    compute_ns,
                    levels,
                    level_spans,
                }),
            });
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_fetch_response_round_trip(
            node in 0u32..1_000_000,
            server in 0u16..256,
            payload in proptest::option::of(proptest::collection::vec(0u8..=255, 0..200)),
        ) {
            let f = Frame::FetchResponse {
                node: n(node),
                payload: payload.map(|v| (server, Bytes::from(v))),
            };
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_metrics_round_trip(
            queries in 0u64..1 << 50,
            hits in 0u64..1 << 50,
            per in proptest::collection::vec(0u64..1 << 40, 0..10),
            stage_ns in proptest::option::of(1u64..1 << 40),
        ) {
            let f = Frame::Metrics {
                snapshot: RunSnapshot {
                    queries,
                    cache_hits: hits,
                    cache_misses: queries / 3,
                    evictions: hits / 5,
                    stolen: queries / 9,
                    prefetch_issued: hits / 2,
                    prefetch_hits: hits / 3,
                    prefetch_wasted_bytes: queries / 2,
                    redials: queries / 5,
                    replica_failovers: queries / 7,
                    batches_resubmitted: queries / 11,
                    windows_resubmitted: queries / 13,
                    per_processor: per,
                    partition_heat: heat(&[(queries % 97, hits % 89), (hits % 83, 0)]),
                    region_heat: heat(&[(queries % 13, queries % 7)]),
                },
                trace: stage_ns.map(|ns| {
                    let mut t = TraceSnapshot::new(grouting_trace::TraceLevel::Stats);
                    t.stages.record(grouting_trace::Stage::DispatchRtt, ns);
                    t.reactor.busy_ns = ns / 2;
                    Box::new(t)
                }),
            };
            proptest::prop_assert_eq!(Frame::decode(f.encode()).unwrap(), f);
        }

        #[test]
        fn prop_random_bytes_never_panic(
            raw in proptest::collection::vec(0u8..=255, 0..64),
        ) {
            // Decoding arbitrary garbage must error, not panic.
            let _ = Frame::decode(Bytes::from(raw));
        }

        /// Every frame type in the protocol round-trips, with randomised
        /// field values where the type has any.
        #[test]
        fn prop_any_frame_round_trips(
            kind in 0u8..13,
            seq in 0u64..u64::MAX,
            id in 0u32..1024,
            node in 0u32..1_000_000,
            server in 0u16..512,
            payload in proptest::collection::vec(0u8..=255, 0..64),
            count in 0u64..1 << 50,
        ) {
            let frame = match kind {
                0 => Frame::Hello {
                    role: if id % 2 == 0 { Role::Client } else { Role::Processor },
                    id,
                },
                1 => Frame::Submit {
                    seq,
                    query: Query::NeighborAggregation { node: n(node), hops: id % 8, label: None },
                    submitted_ns: (seq % 2 == 0).then_some(seq / 2),
                },
                2 => Frame::SubmitEnd,
                3 => Frame::Dispatch {
                    seq,
                    query: Query::Reachability { source: n(node), target: n(id), hops: 3 },
                    trace: (seq % 2 == 0).then_some(DispatchTrace {
                        level: if seq % 4 == 0 {
                            grouting_trace::TraceLevel::Stats
                        } else {
                            grouting_trace::TraceLevel::Spans
                        },
                        dispatched_ns: seq / 3,
                    }),
                },
                4 => Frame::Completion(Completion {
                    seq,
                    processor: id,
                    result: QueryResult::Count(count),
                    stats: AccessStats {
                        cache_hits: count / 2,
                        cache_misses: count / 3,
                        miss_bytes: count,
                        evictions: count / 9,
                    },
                    prefetch: PrefetchStats {
                        issued: count / 4,
                        hits: count / 5,
                        wasted_bytes: count / 2,
                    },
                    failover: FailoverStats {
                        redials: count / 6,
                        replica_failovers: count / 7,
                        batches_resubmitted: count / 8,
                    },
                    arrived_ns: seq / 3,
                    started_ns: seq / 2,
                    completed_ns: seq,
                    heat: heat(&[(count / 3, count / 5); 2][..(id % 3) as usize]),
                    trace: (seq % 2 == 0).then(|| QueryTrace {
                        fetch_wait_ns: seq / 5,
                        compute_ns: seq / 7,
                        levels: id % 8,
                        level_spans: vec![(seq / 9, seq / 11); (id % 3) as usize],
                    }),
                }),
                5 => Frame::FetchRequest { node: n(node) },
                6 => Frame::FetchResponse {
                    node: n(node),
                    payload: Some((server, Bytes::from(payload))),
                },
                7 => Frame::MetricsRequest,
                8 => Frame::Metrics {
                    snapshot: RunSnapshot {
                        queries: count,
                        cache_hits: count / 2,
                        cache_misses: count / 3,
                        evictions: count / 5,
                        stolen: count / 7,
                        prefetch_issued: count / 11,
                        prefetch_hits: count / 13,
                        prefetch_wasted_bytes: count / 2,
                        redials: count / 17,
                        replica_failovers: count / 19,
                        batches_resubmitted: count / 23,
                        windows_resubmitted: count / 29,
                        per_processor: vec![count; (id % 6) as usize],
                        partition_heat: heat(&[(count % 101, count % 51), (count % 11, 0)]),
                        region_heat: heat(&[(count % 5, count % 3)]),
                    },
                    trace: (seq % 2 == 0).then(|| {
                        let mut t = TraceSnapshot::new(grouting_trace::TraceLevel::Stats);
                        t.stages.record(grouting_trace::Stage::RouterQueue, count.max(1));
                        Box::new(t)
                    }),
                },
                9 => Frame::FetchBatchRequest {
                    req_id: seq,
                    nodes: (0..id % 40).map(|i| n(node.wrapping_add(i))).collect(),
                    issued_ns: (seq % 2 == 0).then_some(seq / 4),
                },
                10 => Frame::FetchBatchResponse {
                    req_id: seq,
                    payloads: (0..id % 40)
                        .map(|i| {
                            (i % 3 != 0).then(|| (server, Bytes::from(payload.clone())))
                        })
                        .collect(),
                },
                11 => {
                    let role = match id % 3 {
                        0 => grouting_obs::NodeRole::Router,
                        1 => grouting_obs::NodeRole::Processor,
                        _ => grouting_obs::NodeRole::Storage,
                    };
                    let mut reg = grouting_obs::Registry::new(role, (id % 512) as u16);
                    reg.begin(seq);
                    for i in 0..id % 5 {
                        let slot = i.to_string();
                        reg.counter_with(
                            "grouting_partition_demand_total",
                            &[("partition", &slot)],
                            count.wrapping_add(u64::from(i)),
                        );
                    }
                    reg.gauge("grouting_queue_depth", count as f64 / 7.0);
                    Frame::ObsPush {
                        snapshot: reg.snapshot(),
                    }
                }
                _ => Frame::Shutdown,
            };
            proptest::prop_assert_eq!(Frame::decode(frame.encode()).unwrap(), frame);
        }
    }
}
