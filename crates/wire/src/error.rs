//! Wire-layer errors.

use std::fmt;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket I/O failed.
    Io(std::io::Error),
    /// A frame failed to encode/decode (truncated, oversized, bad tag).
    Codec(String),
    /// The peer closed the connection.
    Closed,
    /// No endpoint is listening at the dialled address.
    Unroutable(String),
    /// A peer sent a frame the protocol does not allow in this state.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Codec(m) => write!(f, "wire codec: {m}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Unroutable(addr) => write!(f, "no listener at {addr}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => WireError::Closed,
            _ => WireError::Io(e),
        }
    }
}

/// Result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eof_maps_to_closed() {
        let e = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(WireError::from(e), WireError::Closed));
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(WireError::from(other), WireError::Io(_)));
    }

    #[test]
    fn displays_are_informative() {
        assert!(WireError::Closed.to_string().contains("closed"));
        assert!(WireError::Unroutable("x:1".into())
            .to_string()
            .contains("x:1"));
        assert!(WireError::Codec("bad tag".into())
            .to_string()
            .contains("bad tag"));
    }
}
