//! `grouting-flow`: pipelined, frontier-batched adjacency fetching.
//!
//! The scalar fetch path ([`crate::service::RemoteStorageSource`]) issues
//! one blocking request/reply exchange per frontier node, so a multi-hop
//! BFS pays one loopback RTT (~16 µs) per discovered node, serialised.
//! This module keeps many fetches in flight per processor instead:
//!
//! * [`BatchMux`] — a connection multiplexer holding one framed connection
//!   per storage server. Batches are *submitted* (written, correlation id
//!   assigned) separately from being *collected*, so a caller can put one
//!   [`Frame::FetchBatchRequest`] on the wire towards every storage server
//!   before waiting for any reply. Collection runs a readiness loop over
//!   the pending connections — non-blocking polls
//!   ([`crate::transport::FrameStream::try_recv`], `set_nonblocking`
//!   under TCP) draining whichever server answers first, with replies
//!   matched to requests by `req_id` so out-of-order completion is fine;
//! * [`MultiplexedStorageSource`] — the [`BatchSource`] a batched-mode
//!   processor plugs behind its cache: it groups a frontier's miss set by
//!   the placement function and ships exactly one batch per storage
//!   server per hop;
//! * [`FetchMode`] — the scalar/batched toggle carried by cluster
//!   configuration, `GROUTING_BATCH=0` in the environment forcing the
//!   scalar path for comparison runs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use grouting_graph::NodeId;
use grouting_partition::Partitioner;
use grouting_query::{BatchSource, RecordSource};

use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::transport::{FrameSink, FrameStream, Transport};

/// Which processor↔storage fetch path a deployment runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FetchMode {
    /// One blocking request/reply round trip per node (the PR 2 path).
    Scalar,
    /// Frontier-batched, pipelined fetching through [`BatchMux`].
    #[default]
    Batched,
}

impl FetchMode {
    /// Honours the `GROUTING_BATCH` toggle: batched by default,
    /// `GROUTING_BATCH=0` (or `false`/`off`) forcing the scalar path so CI
    /// and benches can exercise both.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_BATCH") {
            Ok(v)
                if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") =>
            {
                FetchMode::Scalar
            }
            _ => FetchMode::Batched,
        }
    }
}

impl std::fmt::Display for FetchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchMode::Scalar => write!(f, "scalar"),
            FetchMode::Batched => write!(f, "batched"),
        }
    }
}

/// One batch's worth of per-node payloads: the serving server id and
/// encoded adjacency value, `None` where the node is not stored.
pub type BatchPayloads = Vec<Option<(u16, Bytes)>>;

/// One storage connection's multiplexer state.
struct MuxConn {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
    /// Payloads received so far per correlation id. A storage server may
    /// stream one batch's answer as *several* [`Frame::FetchBatchResponse`]
    /// frames (it chunks responses that would otherwise exceed the frame
    /// cap), so entries accumulate here until the requested node count is
    /// reached — including replies to requests the caller is not currently
    /// waiting on.
    ready: HashMap<u64, BatchPayloads>,
    /// The nodes of each outstanding request, recorded at submit: a
    /// request is complete when its `ready` entry reaches this length,
    /// and a reconnected connection resubmits exactly these.
    pending: HashMap<u64, Vec<NodeId>>,
}

/// A pipelined batch-fetch multiplexer over the storage endpoints.
///
/// One lazily dialled connection per storage server; any number of
/// batches may be in flight per connection, correlated by `req_id`. The
/// submit/collect split is the pipelining: submitting writes the request
/// and returns immediately, so a frontier's batches reach every storage
/// server before the first reply is awaited.
pub struct BatchMux {
    transport: Arc<dyn Transport>,
    addrs: Vec<String>,
    conns: Vec<Option<MuxConn>>,
    next_req_id: u64,
    reconnects: u64,
}

impl BatchMux {
    /// A multiplexer towards `storage_addrs` (index = storage server id).
    pub fn new(transport: Arc<dyn Transport>, storage_addrs: &[String]) -> Self {
        Self {
            transport,
            addrs: storage_addrs.to_vec(),
            conns: storage_addrs.iter().map(|_| None).collect(),
            next_req_id: 0,
            reconnects: 0,
        }
    }

    /// Number of storage servers this multiplexer addresses.
    pub fn server_count(&self) -> usize {
        self.addrs.len()
    }

    /// Times a dead connection was replaced by a fresh dial (with its
    /// outstanding requests resubmitted) — the batched counterpart of
    /// [`crate::transport::ConnectionPool::reconnects`].
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn conn(&mut self, server: usize) -> WireResult<&mut MuxConn> {
        if self.conns[server].is_none() {
            let (sink, stream) = self.transport.dial(&self.addrs[server])?.split();
            self.conns[server] = Some(MuxConn {
                sink,
                stream,
                ready: HashMap::new(),
                pending: HashMap::new(),
            });
        }
        Ok(self.conns[server].as_mut().expect("just dialled"))
    }

    /// Replaces a dead connection with a fresh dial and resubmits every
    /// outstanding request on it, masking a storage restart exactly as the
    /// scalar path's pooled reconnect does. Partially accumulated chunks
    /// are discarded — the fresh connection re-answers each request in
    /// full, so nothing is double-counted.
    ///
    /// # Errors
    ///
    /// Propagates dial/resubmission failures (the peer is really gone).
    fn reconnect(&mut self, server: usize) -> WireResult<()> {
        let pending = self.conns[server]
            .take()
            .map(|c| c.pending)
            .unwrap_or_default();
        let (sink, stream) = self.transport.dial(&self.addrs[server])?.split();
        let mut conn = MuxConn {
            sink,
            stream,
            ready: HashMap::new(),
            pending,
        };
        for (req_id, nodes) in &conn.pending {
            conn.sink.send(&Frame::FetchBatchRequest {
                req_id: *req_id,
                nodes: nodes.clone(),
            })?;
        }
        self.conns[server] = Some(conn);
        self.reconnects += 1;
        Ok(())
    }

    /// Puts one batch request on the wire towards `server` and returns its
    /// correlation id without waiting for the reply. A send failure on a
    /// kept connection (peer restarted since the last exchange) is retried
    /// exactly once on a fresh dial.
    ///
    /// # Errors
    ///
    /// Propagates dial failures and repeated send failures.
    pub fn submit(&mut self, server: usize, nodes: &[NodeId]) -> WireResult<u64> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let frame = Frame::FetchBatchRequest {
            req_id,
            nodes: nodes.to_vec(),
        };
        let conn = self.conn(server)?;
        conn.pending.insert(req_id, nodes.to_vec());
        if conn.sink.send(&frame).is_err() {
            // The reconnect resubmits everything pending, this request
            // included.
            self.reconnect(server)?;
        }
        Ok(req_id)
    }

    /// Waits for one submitted batch (see [`BatchMux::collect_many`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures and protocol violations.
    pub fn collect(&mut self, server: usize, req_id: u64) -> WireResult<BatchPayloads> {
        let mut out = self.collect_many(&[(server, req_id)])?;
        Ok(out.pop().expect("one requested, one returned"))
    }

    /// Readiness loop: waits until every `(server, req_id)` in `wanted`
    /// has its response, returning payload vectors in `wanted` order.
    ///
    /// Each iteration polls every still-pending connection without
    /// blocking, so whichever storage server answers first is drained
    /// first; replies for *other* outstanding requests on the same
    /// connection are stashed by correlation id rather than rejected,
    /// which is what makes out-of-order completion safe.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, and [`WireError::Protocol`] when a
    /// storage server sends anything but a batch response.
    pub fn collect_many(&mut self, wanted: &[(usize, u64)]) -> WireResult<Vec<BatchPayloads>> {
        let mut out: Vec<Option<BatchPayloads>> = vec![None; wanted.len()];
        let mut remaining = wanted.len();
        let mut idle_rounds = 0u32;
        // One reconnect attempt per server per collect: masks a storage
        // restart without looping forever against a peer that is gone.
        let mut reconnected = vec![false; self.conns.len()];
        while remaining > 0 {
            let mut progressed = false;
            for (slot, &(server, req_id)) in wanted.iter().enumerate() {
                if out[slot].is_some() {
                    continue;
                }
                let conn = self.conns[server].as_mut().ok_or_else(|| {
                    WireError::Protocol(format!("server {server}: collect before submit"))
                })?;
                let expected = conn.pending.get(&req_id).map(Vec::len).ok_or_else(|| {
                    WireError::Protocol(format!(
                        "server {server}: collect of unknown request {req_id}"
                    ))
                })?;
                // Complete once every requested node has been answered —
                // possibly across several chunked response frames. The
                // server sends at least one frame even for an empty batch,
                // so presence of the entry marks "response began".
                if let Some(got) = conn.ready.get(&req_id) {
                    match got.len().cmp(&expected) {
                        std::cmp::Ordering::Equal => {
                            out[slot] = conn.ready.remove(&req_id);
                            conn.pending.remove(&req_id);
                            remaining -= 1;
                            progressed = true;
                            continue;
                        }
                        std::cmp::Ordering::Greater => {
                            return Err(WireError::Protocol(format!(
                                "storage server {server} answered {} nodes to a {expected}-node \
                                 batch",
                                got.len()
                            )))
                        }
                        std::cmp::Ordering::Less => {}
                    }
                }
                match conn.stream.try_recv() {
                    Ok(Some(Frame::FetchBatchResponse {
                        req_id: got,
                        payloads,
                    })) => {
                        progressed = true;
                        conn.ready.entry(got).or_default().extend(payloads);
                    }
                    Ok(Some(other)) => {
                        return Err(WireError::Protocol(format!(
                            "storage server {server} sent {} to a batch fetch",
                            other.kind()
                        )))
                    }
                    Ok(None) => {}
                    Err(_) if !reconnected[server] => {
                        reconnected[server] = true;
                        self.reconnect(server)?;
                        progressed = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            // Spin briefly (replies on loopback land within microseconds),
            // then back off so a genuinely slow server doesn't cost a core.
            if progressed {
                idle_rounds = 0;
            } else {
                idle_rounds += 1;
                if idle_rounds < 64 {
                    std::hint::spin_loop();
                } else if idle_rounds < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
            }
        }
        Ok(out.into_iter().map(|p| p.expect("collected")).collect())
    }
}

/// The batched-mode miss path behind a processor's cache: a frontier's
/// miss set grouped per storage server, one pipelined batch frame each.
///
/// Single-node fetches (reachability expansions, random-walk steps) travel
/// as one-element batches over the same multiplexed connections, so a
/// batched processor speaks only the batch protocol.
pub struct MultiplexedStorageSource {
    partitioner: Arc<dyn Partitioner>,
    mux: BatchMux,
}

impl MultiplexedStorageSource {
    /// A source fetching from `storage_addrs` (index = storage server id)
    /// with `partitioner` as the placement function.
    pub fn new(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        partitioner: Arc<dyn Partitioner>,
    ) -> Self {
        Self {
            partitioner,
            mux: BatchMux::new(transport, storage_addrs),
        }
    }

    fn home(&self, node: NodeId) -> usize {
        self.partitioner.assign(node) % self.mux.server_count()
    }
}

impl RecordSource for MultiplexedStorageSource {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        let home = self.home(node);
        let exchange = self
            .mux
            .submit(home, std::slice::from_ref(&node))
            .and_then(|req_id| self.mux.collect(home, req_id));
        match exchange {
            Ok(mut payloads) => {
                assert_eq!(payloads.len(), 1, "one node in, one payload out");
                payloads.pop().expect("length checked")
            }
            Err(e) => panic!("storage batch fetch failed: {e}"),
        }
    }
}

/// Most nodes a single [`Frame::FetchBatchRequest`] may carry: keeps the
/// encoded request (13 + 4·N bytes) around 4 MiB, far under
/// [`crate::frame::MAX_FRAME_BYTES`], however large the frontier — a
/// per-server miss set beyond this is simply pipelined as several
/// requests on the same connection.
pub const MAX_BATCH_REQUEST_NODES: usize = 1 << 20;

impl BatchSource for MultiplexedStorageSource {
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        if nodes.is_empty() {
            return Vec::new();
        }
        // Group the frontier per storage server, remembering where each
        // node sits in the caller's order.
        let servers = self.mux.server_count();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); servers];
        for (i, &node) in nodes.iter().enumerate() {
            groups[self.home(node)].push(i);
        }
        // Submit phase: every involved server's batch goes on the wire
        // before any reply is awaited — the pipelining that amortises the
        // per-exchange RTT across the whole frontier. Requests past the
        // per-frame node cap become several pipelined requests.
        let mut wanted: Vec<(usize, u64, &[usize])> = Vec::new();
        let mut batch: Vec<NodeId> = Vec::new();
        for (server, group) in groups.iter().enumerate() {
            for slots in group.chunks(MAX_BATCH_REQUEST_NODES) {
                batch.clear();
                batch.extend(slots.iter().map(|&i| nodes[i]));
                match self.mux.submit(server, &batch) {
                    Ok(req_id) => wanted.push((server, req_id, slots)),
                    Err(e) => panic!("storage batch submit failed: {e}"),
                }
            }
        }
        // Collect phase: readiness loop over every pending connection.
        let requests: Vec<(usize, u64)> = wanted.iter().map(|&(s, r, _)| (s, r)).collect();
        let responses = match self.mux.collect_many(&requests) {
            Ok(r) => r,
            Err(e) => panic!("storage batch fetch failed: {e}"),
        };
        let mut out: Vec<Option<(u16, Bytes)>> = vec![None; nodes.len()];
        for (&(server, _, slots), payloads) in wanted.iter().zip(responses) {
            assert_eq!(
                payloads.len(),
                slots.len(),
                "server {server} answered a different batch size"
            );
            for (&slot, payload) in slots.iter().zip(payloads) {
                out[slot] = payload;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, Listener, TcpTransport};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn payload(i: u32) -> Option<(u16, Bytes)> {
        Some((0, Bytes::from(i.to_le_bytes().to_vec())))
    }

    /// A storage stand-in that answers every batch with one payload per
    /// node, optionally holding replies back to force reordering.
    fn batch_server(
        mut listener: Box<dyn Listener>,
        reverse_pairs: bool,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let Ok(mut conn) = listener.accept() else {
                return;
            };
            let mut held: Vec<Frame> = Vec::new();
            loop {
                match conn.recv() {
                    Ok(Frame::FetchBatchRequest { req_id, nodes }) => {
                        let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                        let response = Frame::FetchBatchResponse { req_id, payloads };
                        if reverse_pairs {
                            // Answer requests two at a time, newest first,
                            // to prove req_id correlation.
                            held.push(response);
                            if held.len() == 2 {
                                for f in held.drain(..).rev() {
                                    if conn.send(&f).is_err() {
                                        return;
                                    }
                                }
                            }
                        } else if conn.send(&response).is_err() {
                            return;
                        }
                    }
                    Ok(Frame::Shutdown) | Err(_) => return,
                    Ok(_) => return,
                }
            }
        })
    }

    fn mux_round_trips_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = batch_server(listener, false);
        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let nodes: Vec<NodeId> = (0..100).map(n).collect();
        let req = mux.submit(0, &nodes).unwrap();
        let payloads = mux.collect(0, req).unwrap();
        assert_eq!(payloads.len(), nodes.len());
        for (node, got) in nodes.iter().zip(&payloads) {
            assert_eq!(*got, payload(node.raw()));
        }
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_mux_round_trips() {
        mux_round_trips_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_mux_round_trips() {
        mux_round_trips_over(Arc::new(TcpTransport::new()));
    }

    fn out_of_order_replies_correlate_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = batch_server(listener, true);
        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);

        // Two batches pipelined on one connection; the server replies to
        // the *second* first, so collecting in submit order exercises the
        // stash-and-match path both ways.
        let first = mux.submit(0, &[n(1), n(2)]).unwrap();
        let second = mux.submit(0, &[n(7)]).unwrap();
        assert_ne!(first, second);
        let got_first = mux.collect(0, first).unwrap();
        let got_second = mux.collect(0, second).unwrap();
        assert_eq!(got_first, vec![payload(1), payload(2)]);
        assert_eq!(got_second, vec![payload(7)]);
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_out_of_order_replies_correlate() {
        out_of_order_replies_correlate_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_out_of_order_replies_correlate() {
        out_of_order_replies_correlate_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn chunked_responses_reassemble_by_node_count() {
        // A server may stream one batch's answer as several frames (the
        // storage service does this past its soft byte budget); the mux
        // must concatenate them — even interleaved with another request's
        // chunks — until every node is answered.
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut held: Vec<(u64, Vec<NodeId>)> = Vec::new();
            for _ in 0..2 {
                match conn.recv().unwrap() {
                    Frame::FetchBatchRequest { req_id, nodes } => held.push((req_id, nodes)),
                    other => panic!("server got {}", other.kind()),
                }
            }
            // Answer both requests in per-node chunks, alternating between
            // the two correlation ids.
            let mut cursors = [0usize, 0];
            loop {
                let mut sent = false;
                for (i, (req_id, nodes)) in held.iter().enumerate() {
                    if cursors[i] < nodes.len() {
                        let w = nodes[cursors[i]];
                        cursors[i] += 1;
                        conn.send(&Frame::FetchBatchResponse {
                            req_id: *req_id,
                            payloads: vec![payload(w.raw())],
                        })
                        .unwrap();
                        sent = true;
                    }
                }
                if !sent {
                    break;
                }
            }
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let first = mux.submit(0, &[n(1), n(2), n(3)]).unwrap();
        let second = mux.submit(0, &[n(10), n(11)]).unwrap();
        assert_eq!(
            mux.collect(0, first).unwrap(),
            vec![payload(1), payload(2), payload(3)]
        );
        assert_eq!(
            mux.collect(0, second).unwrap(),
            vec![payload(10), payload(11)]
        );
        server.join().unwrap();
    }

    fn mux_reconnects_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        // Serve two connections in sequence: the first dies with a request
        // unanswered, forcing the mux to redial and resubmit it.
        let mut listener = listener;
        let server = std::thread::spawn(move || {
            // First connection: answer one batch, read the next request,
            // then drop it on the floor.
            let mut conn = listener.accept().unwrap();
            match conn.recv().unwrap() {
                Frame::FetchBatchRequest { req_id, nodes } => {
                    let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                    conn.send(&Frame::FetchBatchResponse { req_id, payloads })
                        .unwrap();
                }
                other => panic!("server got {}", other.kind()),
            }
            let _ = conn.recv();
            drop(conn);
            // Second connection: serve whatever is resubmitted.
            let mut conn = listener.accept().unwrap();
            while let Ok(Frame::FetchBatchRequest { req_id, nodes }) = conn.recv() {
                let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                if conn
                    .send(&Frame::FetchBatchResponse { req_id, payloads })
                    .is_err()
                {
                    break;
                }
            }
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let first = mux.submit(0, &[n(1)]).unwrap();
        assert_eq!(mux.collect(0, first).unwrap(), vec![payload(1)]);
        // The server dies holding this one; the mux must mask it.
        let second = mux.submit(0, &[n(2), n(3)]).unwrap();
        assert_eq!(
            mux.collect(0, second).unwrap(),
            vec![payload(2), payload(3)]
        );
        assert_eq!(mux.reconnects(), 1);
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_mux_reconnects_after_peer_death() {
        mux_reconnects_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_mux_reconnects_after_peer_death() {
        mux_reconnects_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn collect_many_drains_multiple_servers() {
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..3 {
            let listener = transport.listen(&transport.any_addr()).unwrap();
            addrs.push(listener.addr());
            servers.push(batch_server(listener, false));
        }
        let mut mux = BatchMux::new(Arc::clone(&transport), &addrs);
        let wanted: Vec<(usize, u64)> = (0..3)
            .map(|s| {
                let nodes: Vec<NodeId> = (0..4).map(|i| n(s as u32 * 10 + i)).collect();
                (s, mux.submit(s, &nodes).unwrap())
            })
            .collect();
        let responses = mux.collect_many(&wanted).unwrap();
        for (s, payloads) in responses.iter().enumerate() {
            assert_eq!(payloads.len(), 4);
            assert_eq!(payloads[0], payload(s as u32 * 10));
        }
        drop(mux);
        for s in servers {
            s.join().unwrap();
        }
    }

    #[test]
    fn fetch_mode_env_values() {
        // Only the parser; the env var itself belongs to CI.
        assert_eq!(FetchMode::default(), FetchMode::Batched);
        assert_eq!(FetchMode::Scalar.to_string(), "scalar");
        assert_eq!(FetchMode::Batched.to_string(), "batched");
    }
}
