//! `grouting-flow`: pipelined, frontier-batched adjacency fetching.
//!
//! The scalar fetch path ([`crate::service::RemoteStorageSource`]) issues
//! one blocking request/reply exchange per frontier node, so a multi-hop
//! BFS pays one loopback RTT (~16 µs) per discovered node, serialised.
//! This module keeps many fetches in flight per processor instead:
//!
//! * [`BatchMux`] — a connection multiplexer holding one framed connection
//!   per storage server. Batches are *submitted* (written, correlation id
//!   assigned) separately from being *collected*, so a caller can put one
//!   [`Frame::FetchBatchRequest`] on the wire towards every storage server
//!   before waiting for any reply. Collection runs a readiness loop over
//!   the pending connections — non-blocking polls
//!   ([`crate::transport::FrameStream::try_recv`], `set_nonblocking`
//!   under TCP) draining whichever server answers first, with replies
//!   matched to requests by `req_id` so out-of-order completion is fine;
//! * [`MultiplexedStorageSource`] — the [`BatchSource`] a batched-mode
//!   processor plugs behind its cache: it groups a frontier's miss set by
//!   the placement function and ships exactly one batch per storage
//!   server per hop;
//! * [`FetchMode`] — the scalar/batched toggle carried by cluster
//!   configuration, `GROUTING_BATCH=0` in the environment forcing the
//!   scalar path for comparison runs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use grouting_graph::NodeId;
use grouting_metrics::FailoverStats;
use grouting_partition::Partitioner;
use grouting_query::{BatchSource, RecordSource};
use grouting_trace::TelemetryCounters;

use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::reactor::{sample_pool, Poller, PollerKind};
use crate::transport::{Connection, FrameSink, FrameStream, RetryPolicy, Transport};

/// Which processor↔storage fetch path a deployment runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FetchMode {
    /// One blocking request/reply round trip per node (the PR 2 path).
    Scalar,
    /// Frontier-batched, pipelined fetching through [`BatchMux`].
    #[default]
    Batched,
}

impl FetchMode {
    /// Honours the `GROUTING_BATCH` toggle: batched by default,
    /// `GROUTING_BATCH=0` (or `false`/`off`) forcing the scalar path so CI
    /// and benches can exercise both.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_BATCH") {
            Ok(v)
                if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") =>
            {
                FetchMode::Scalar
            }
            _ => FetchMode::Batched,
        }
    }
}

impl std::fmt::Display for FetchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchMode::Scalar => write!(f, "scalar"),
            FetchMode::Batched => write!(f, "batched"),
        }
    }
}

/// One batch's worth of per-node payloads: the serving server id and
/// encoded adjacency value, `None` where the node is not stored.
pub type BatchPayloads = Vec<Option<(u16, Bytes)>>;

/// How long an idle collect loop parks on the readiness backend before
/// re-sweeping anyway (a safety net; with epoll the arrival of any reply
/// byte wakes the wait early).
const COLLECT_IDLE_WAIT: Duration = Duration::from_millis(5);

/// One storage connection's multiplexer state.
struct MuxConn {
    sink: Box<dyn FrameSink>,
    stream: Box<dyn FrameStream>,
    /// Raw descriptor registered with the poller (`None` for fd-less
    /// transports, which degrade the wait to the sweep ladder).
    fd: Option<i32>,
    /// Payloads received so far per correlation id. A storage server may
    /// stream one batch's answer as *several* [`Frame::FetchBatchResponse`]
    /// frames (it chunks responses that would otherwise exceed the frame
    /// cap), so entries accumulate here until the requested node count is
    /// reached — including replies to requests the caller is not currently
    /// waiting on.
    ready: HashMap<u64, BatchPayloads>,
    /// The nodes of each outstanding request, recorded at submit: a
    /// request is complete when its `ready` entry reaches this length,
    /// and a reconnected connection resubmits exactly these.
    pending: HashMap<u64, Vec<NodeId>>,
    /// Last buffer-pool counters folded into telemetry (delta sampling).
    pool_seen: (u64, u64),
}

/// A pipelined batch-fetch multiplexer over the storage endpoints.
///
/// One lazily dialled connection per storage server; any number of
/// batches may be in flight per connection, correlated by `req_id`. The
/// submit/collect split is the pipelining: submitting writes the request
/// and returns immediately, so a frontier's batches reach every storage
/// server before the first reply is awaited.
pub struct BatchMux {
    transport: Arc<dyn Transport>,
    addrs: Vec<String>,
    conns: Vec<Option<MuxConn>>,
    next_req_id: u64,
    reconnects: u64,
    /// Replica-chain length of the storage tier: node `home`'s payload is
    /// also served by endpoints `(home + k) % servers` for
    /// `k < replication`, so a recovery redial may land on any of them.
    replication: usize,
    /// Backoff schedule the recovery redial ladder paces itself by.
    retry: RetryPolicy,
    /// Recovery counters (dial attempts, chain failovers, resubmissions).
    failover: FailoverStats,
    /// Readiness backend the collect loops park on when every pending
    /// stream has reported `WouldBlock`. Connection tokens are the server
    /// index; callers may register extra descriptors (a processor's router
    /// connection) under tokens ≥ [`BatchMux::EXTERNAL_TOKEN_BASE`].
    poller: Box<dyn Poller>,
    /// Scratch for ready tokens (reused across waits).
    poll_scratch: Vec<u64>,
    /// Batches submitted and not yet fully collected, across servers.
    outstanding: u64,
    /// Deployment-shared telemetry. Doubles as the trace switch: when set,
    /// batch requests carry their issue stamp and pool/batch-depth
    /// counters accumulate; when unset the mux's frames are byte-identical
    /// to an untraced deployment.
    telemetry: Option<Arc<TelemetryCounters>>,
}

impl BatchMux {
    /// First token available to [`BatchMux::register_external`] — far
    /// above any storage server index.
    pub const EXTERNAL_TOKEN_BASE: u64 = 1 << 32;

    /// A multiplexer towards `storage_addrs` (index = storage server id),
    /// on the readiness backend `GROUTING_REACTOR` selects.
    pub fn new(transport: Arc<dyn Transport>, storage_addrs: &[String]) -> Self {
        Self::with_poller(transport, storage_addrs, PollerKind::from_env())
    }

    /// A multiplexer on an explicitly chosen readiness backend.
    pub fn with_poller(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        kind: PollerKind,
    ) -> Self {
        Self {
            transport,
            addrs: storage_addrs.to_vec(),
            conns: storage_addrs.iter().map(|_| None).collect(),
            next_req_id: 0,
            reconnects: 0,
            replication: 1,
            retry: RetryPolicy::from_env(),
            failover: FailoverStats::default(),
            poller: kind.build(),
            poll_scratch: Vec::new(),
            outstanding: 0,
            telemetry: None,
        }
    }

    /// Wires deployment-shared telemetry into the multiplexer: batch
    /// submissions count (with outstanding-depth peaks), receive-pool
    /// reuse is sampled, and every batch request carries its issue stamp.
    pub fn set_telemetry(&mut self, telemetry: Arc<TelemetryCounters>) {
        self.telemetry = Some(telemetry);
    }

    /// Registers a caller-owned descriptor (token ≥
    /// [`BatchMux::EXTERNAL_TOKEN_BASE`]) with the readiness backend, so
    /// an idle wait also wakes on that connection's traffic. An `fd` of
    /// `None` (fd-less transport) degrades every wait to the sweep ladder.
    pub fn register_external(&mut self, token: u64, fd: Option<i32>) {
        debug_assert!(token >= Self::EXTERNAL_TOKEN_BASE);
        self.poller.register(token, fd);
    }

    /// Parks on the readiness backend until any registered connection has
    /// traffic, or `timeout` passes. Only safe to call when every pending
    /// stream last reported `WouldBlock` (see
    /// [`crate::transport::FrameStream::try_recv`]) — which is exactly the
    /// no-progress state the collect loops call it from.
    pub fn idle_wait(&mut self, timeout: Duration) {
        let mut ready = std::mem::take(&mut self.poll_scratch);
        ready.clear();
        let _ = self.poller.wait(&mut ready, timeout);
        self.poll_scratch = ready;
    }

    /// Tells the readiness backend progress happened, resetting its idle
    /// ladder so the next wait spins briefly before blocking.
    pub fn note_progress(&mut self) {
        self.poller.reset();
    }

    /// Number of storage servers this multiplexer addresses.
    pub fn server_count(&self) -> usize {
        self.addrs.len()
    }

    /// Times a dead connection was replaced by a fresh dial (with its
    /// outstanding requests resubmitted) — the batched counterpart of
    /// [`crate::transport::ConnectionPool::reconnects`].
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Declares the storage tier's replica-chain length: a home server's
    /// payloads are also served by the next `replication - 1` endpoints
    /// (mod server count), so a recovery redial that cannot reach the
    /// primary fails over down the chain instead of giving up. `1` (the
    /// default) means unreplicated.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Overrides the recovery backoff schedule (defaults to
    /// `GROUTING_RETRY`, see [`RetryPolicy::from_env`]).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Recovery counters so far: dial attempts made by recovery paths,
    /// times a home's traffic failed over to a replica endpoint, and
    /// batches resubmitted on fresh connections.
    pub fn failover_stats(&self) -> FailoverStats {
        self.failover
    }

    /// Dials *somewhere* that serves home `server`'s data: the replica
    /// chain is walked primary-first on every backoff attempt, so a
    /// restarted primary is recovered on the first failure event after its
    /// re-join rather than being abandoned for good.
    ///
    /// # Errors
    ///
    /// The final attempt's error once every chain endpoint has refused
    /// through the whole ladder.
    fn redial(&mut self, server: usize) -> WireResult<(usize, Connection)> {
        let chain = self.replication.min(self.addrs.len()).max(1);
        let mut last = None;
        for attempt in 0..self.retry.attempts {
            for k in 0..chain {
                let target = (server + k) % self.addrs.len();
                self.failover.redials += 1;
                match self.transport.dial_once(&self.addrs[target]) {
                    Ok(conn) => return Ok((target, conn)),
                    Err(e) => last = Some(e),
                }
            }
            if attempt + 1 < self.retry.attempts {
                std::thread::sleep(self.retry.delay(attempt, server as u64));
            }
        }
        Err(last.unwrap_or_else(|| WireError::Unroutable(self.addrs[server].clone())))
    }

    fn conn(&mut self, server: usize) -> WireResult<&mut MuxConn> {
        if self.conns[server].is_none() {
            // First use. Without replicas: the patient dial (peers may
            // still be starting). With a chain: one fast attempt at the
            // primary, then the recovery ladder — its paced walk covers
            // both a still-starting primary and a dead one that must fail
            // over, without waiting out the transport's startup grace.
            let fresh = if self.replication > 1 {
                match self.transport.dial_once(&self.addrs[server]) {
                    Ok(conn) => conn,
                    Err(_) => {
                        let (target, conn) = self.redial(server)?;
                        if target != server {
                            self.failover.replica_failovers += 1;
                        }
                        conn
                    }
                }
            } else {
                self.transport.dial(&self.addrs[server])?
            };
            let (sink, stream) = fresh.split();
            let fd = stream.raw_fd();
            self.poller.register(server as u64, fd);
            self.conns[server] = Some(MuxConn {
                sink,
                stream,
                fd,
                ready: HashMap::new(),
                pending: HashMap::new(),
                pool_seen: (0, 0),
            });
        }
        Ok(self.conns[server].as_mut().expect("just dialled"))
    }

    /// Replaces a dead connection with a fresh dial — down the replica
    /// chain when the primary stays unreachable through the backoff ladder
    /// — and resubmits every outstanding request on it, masking a storage
    /// endpoint death exactly as the scalar path's pooled reconnect does.
    /// Partially accumulated chunks are discarded — the fresh connection
    /// re-answers each request in full, so nothing is double-counted.
    ///
    /// # Errors
    ///
    /// Propagates dial/resubmission failures (the whole chain is gone).
    fn reconnect(&mut self, server: usize) -> WireResult<()> {
        let (pending, old_fd) = self.conns[server]
            .take()
            .map(|c| (c.pending, c.fd))
            .unwrap_or_default();
        // The old connection (and its fd) is gone by now; deregister
        // BEFORE dialling so a kernel-recycled descriptor number cannot be
        // mistaken for the old registration.
        self.poller.deregister(server as u64, old_fd);
        let (target, fresh) = self.redial(server)?;
        if target != server {
            self.failover.replica_failovers += 1;
        }
        let (sink, stream) = fresh.split();
        let fd = stream.raw_fd();
        self.poller.register(server as u64, fd);
        let mut conn = MuxConn {
            sink,
            stream,
            fd,
            ready: HashMap::new(),
            pending,
            pool_seen: (0, 0),
        };
        let resubmit_ns = self.telemetry.as_ref().map(|_| crate::service::now_ns());
        for (req_id, nodes) in &conn.pending {
            conn.sink.send(&Frame::FetchBatchRequest {
                req_id: *req_id,
                nodes: nodes.clone(),
                issued_ns: resubmit_ns,
            })?;
            self.failover.batches_resubmitted += 1;
        }
        self.conns[server] = Some(conn);
        self.reconnects += 1;
        Ok(())
    }

    /// Puts one batch request on the wire towards `server` and returns its
    /// correlation id without waiting for the reply. A send failure on a
    /// kept connection (peer restarted since the last exchange) is retried
    /// exactly once on a fresh dial.
    ///
    /// # Errors
    ///
    /// Propagates dial failures and repeated send failures.
    pub fn submit(&mut self, server: usize, nodes: &[NodeId]) -> WireResult<u64> {
        let req_id = self.next_req_id;
        self.next_req_id += 1;
        let frame = Frame::FetchBatchRequest {
            req_id,
            nodes: nodes.to_vec(),
            issued_ns: self.telemetry.as_ref().map(|_| crate::service::now_ns()),
        };
        let conn = self.conn(server)?;
        conn.pending.insert(req_id, nodes.to_vec());
        if conn.sink.send(&frame).is_err() {
            // The reconnect resubmits everything pending, this request
            // included.
            self.reconnect(server)?;
        }
        self.outstanding += 1;
        if let Some(t) = &self.telemetry {
            t.batch_submitted(self.outstanding);
        }
        Ok(req_id)
    }

    /// Waits for one submitted batch (see [`BatchMux::collect_many`]).
    ///
    /// # Errors
    ///
    /// Propagates transport failures and protocol violations.
    pub fn collect(&mut self, server: usize, req_id: u64) -> WireResult<BatchPayloads> {
        let mut out = self.collect_many(&[(server, req_id)])?;
        Ok(out.pop().expect("one requested, one returned"))
    }

    /// Drains at most one ready frame from `server`'s connection into the
    /// reassembly map, returning whether a frame landed.
    ///
    /// Chunked responses accumulate under their correlation id until the
    /// requested node count is reached; a frame answering a request that
    /// is *not* outstanding — a server bug, or a stale chunk after its
    /// request completed — is rejected rather than stashed, so the
    /// reassembly map cannot leak entries nobody will ever collect.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on non-batch frames and unknown correlation
    /// ids; transport errors (the caller decides whether to reconnect).
    pub fn poll_server(&mut self, server: usize) -> WireResult<bool> {
        let conn = self.conns[server]
            .as_mut()
            .ok_or_else(|| WireError::Protocol(format!("server {server}: poll before submit")))?;
        match conn.stream.try_recv() {
            Ok(Some(Frame::FetchBatchResponse {
                req_id: got,
                payloads,
            })) => {
                if !conn.pending.contains_key(&got) {
                    return Err(WireError::Protocol(format!(
                        "storage server {server} answered request {got}, which is not outstanding"
                    )));
                }
                conn.ready.entry(got).or_default().extend(payloads);
                sample_pool(&self.telemetry, conn.stream.as_ref(), &mut conn.pool_seen);
                Ok(true)
            }
            Ok(Some(other)) => Err(WireError::Protocol(format!(
                "storage server {server} sent {} to a batch fetch",
                other.kind()
            ))),
            Ok(None) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Takes `req_id`'s payloads if its response has fully arrived
    /// (possibly across several chunked frames). Purely local: no I/O.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when the request was never submitted or the
    /// server answered more nodes than were asked.
    pub fn take_ready(&mut self, server: usize, req_id: u64) -> WireResult<Option<BatchPayloads>> {
        let conn = self.conns[server].as_mut().ok_or_else(|| {
            WireError::Protocol(format!("server {server}: collect before submit"))
        })?;
        let expected = conn.pending.get(&req_id).map(Vec::len).ok_or_else(|| {
            WireError::Protocol(format!(
                "server {server}: collect of unknown request {req_id}"
            ))
        })?;
        // Complete once every requested node has been answered — possibly
        // across several chunked response frames. The server sends at
        // least one frame even for an empty batch, so presence of the
        // entry marks "response began".
        let Some(got) = conn.ready.get(&req_id) else {
            return Ok(None);
        };
        match got.len().cmp(&expected) {
            std::cmp::Ordering::Equal => {
                let payloads = conn.ready.remove(&req_id);
                conn.pending.remove(&req_id);
                self.outstanding = self.outstanding.saturating_sub(1);
                Ok(payloads)
            }
            std::cmp::Ordering::Greater => Err(WireError::Protocol(format!(
                "storage server {server} answered {} nodes to a {expected}-node batch",
                got.len()
            ))),
            std::cmp::Ordering::Less => Ok(None),
        }
    }

    /// Masks one connection failure observed by a poll: redials and
    /// resubmits (at most once per server per `budget`), or propagates
    /// the error when the budget is spent or the failure is a protocol
    /// violation (reconnecting cannot repair a misbehaving server).
    fn mask_poll_failure(
        &mut self,
        server: usize,
        error: WireError,
        budget: &mut [bool],
    ) -> WireResult<()> {
        if matches!(error, WireError::Protocol(_)) || budget[server] {
            return Err(error);
        }
        budget[server] = true;
        self.reconnect(server)
    }

    /// Readiness loop: waits until every `(server, req_id)` in `wanted`
    /// has its response, returning payload vectors in `wanted` order.
    ///
    /// Each iteration polls every still-pending connection without
    /// blocking, so whichever storage server answers first is drained
    /// first; replies for *other* outstanding requests on the same
    /// connection are stashed by correlation id rather than rejected,
    /// which is what makes out-of-order completion safe.
    ///
    /// # Errors
    ///
    /// Propagates transport failures, and [`WireError::Protocol`] when a
    /// storage server sends anything but a batch response.
    pub fn collect_many(&mut self, wanted: &[(usize, u64)]) -> WireResult<Vec<BatchPayloads>> {
        let mut out: Vec<Option<BatchPayloads>> = vec![None; wanted.len()];
        let mut remaining = wanted.len();
        // One reconnect attempt per server per collect: masks a storage
        // restart without looping forever against a peer that is gone.
        let mut reconnected = vec![false; self.conns.len()];
        while remaining > 0 {
            let mut progressed = false;
            for (slot, &(server, req_id)) in wanted.iter().enumerate() {
                if out[slot].is_some() {
                    continue;
                }
                if let Some(payloads) = self.take_ready(server, req_id)? {
                    out[slot] = Some(payloads);
                    remaining -= 1;
                    progressed = true;
                    continue;
                }
                match self.poll_server(server) {
                    Ok(landed) => progressed |= landed,
                    Err(e) => {
                        self.mask_poll_failure(server, e, &mut reconnected)?;
                        progressed = true;
                    }
                }
            }
            // An empty sweep means every pending stream reported
            // `WouldBlock`; park on the readiness backend until a reply
            // byte lands (epoll) or briefly yield (sweep ladder) so a slow
            // server doesn't cost a core.
            if progressed {
                self.note_progress();
            } else {
                self.idle_wait(COLLECT_IDLE_WAIT);
            }
        }
        Ok(out.into_iter().map(|p| p.expect("collected")).collect())
    }
}

/// The batched-mode miss path behind a processor's cache: a frontier's
/// miss set grouped per storage server, one pipelined batch frame each.
///
/// Single-node fetches (reachability expansions, random-walk steps) travel
/// as one-element batches over the same multiplexed connections, so a
/// batched processor speaks only the batch protocol.
pub struct MultiplexedStorageSource {
    partitioner: Arc<dyn Partitioner>,
    mux: BatchMux,
}

impl MultiplexedStorageSource {
    /// A source fetching from `storage_addrs` (index = storage server id)
    /// with `partitioner` as the placement function, on the readiness
    /// backend `GROUTING_REACTOR` selects.
    pub fn new(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        partitioner: Arc<dyn Partitioner>,
    ) -> Self {
        Self::with_poller(
            transport,
            storage_addrs,
            partitioner,
            PollerKind::from_env(),
        )
    }

    /// A source on an explicitly chosen readiness backend.
    pub fn with_poller(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        partitioner: Arc<dyn Partitioner>,
        kind: PollerKind,
    ) -> Self {
        Self {
            partitioner,
            mux: BatchMux::with_poller(transport, storage_addrs, kind),
        }
    }

    /// Registers a caller-owned descriptor with the underlying
    /// multiplexer's readiness backend (see
    /// [`BatchMux::register_external`]).
    pub fn register_external(&mut self, token: u64, fd: Option<i32>) {
        self.mux.register_external(token, fd);
    }

    /// Parks until any registered connection has traffic (see
    /// [`BatchMux::idle_wait`]).
    pub fn idle_wait(&mut self, timeout: Duration) {
        self.mux.idle_wait(timeout);
    }

    /// Resets the readiness backend's idle ladder (see
    /// [`BatchMux::note_progress`]).
    pub fn note_progress(&mut self) {
        self.mux.note_progress();
    }

    /// Routes the multiplexer's batch-depth and buffer-pool telemetry
    /// into `telemetry` (see [`BatchMux::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Arc<TelemetryCounters>) {
        self.mux.set_telemetry(telemetry);
    }

    /// Declares the tier's replica-chain length (see
    /// [`BatchMux::with_replication`]).
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.mux = self.mux.with_replication(replication);
        self
    }

    /// Overrides the recovery backoff schedule (see
    /// [`BatchMux::with_retry`]).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.mux = self.mux.with_retry(retry);
        self
    }

    /// Recovery counters so far (see [`BatchMux::failover_stats`]).
    pub fn failover_stats(&self) -> FailoverStats {
        self.mux.failover_stats()
    }

    fn home(&self, node: NodeId) -> usize {
        self.partitioner.assign(node) % self.mux.server_count()
    }
}

impl RecordSource for MultiplexedStorageSource {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        let home = self.home(node);
        let exchange = self
            .mux
            .submit(home, std::slice::from_ref(&node))
            .and_then(|req_id| self.mux.collect(home, req_id));
        match exchange {
            Ok(mut payloads) => {
                assert_eq!(payloads.len(), 1, "one node in, one payload out");
                payloads.pop().expect("length checked")
            }
            Err(e) => panic!("storage batch fetch failed: {e}"),
        }
    }
}

/// Most nodes a single [`Frame::FetchBatchRequest`] may carry: keeps the
/// encoded request (13 + 4·N bytes) around 4 MiB, far under
/// [`crate::frame::MAX_FRAME_BYTES`], however large the frontier — a
/// per-server miss set beyond this is simply pipelined as several
/// requests on the same connection.
pub const MAX_BATCH_REQUEST_NODES: usize = 1 << 20;

/// A submitted-but-uncollected frontier fetch: the per-server requests on
/// the wire, the responses gathered so far, and where each node's payload
/// lands in the caller's order.
///
/// Returned by [`MultiplexedStorageSource::submit_frontier`] and polled
/// with [`MultiplexedStorageSource::try_collect`] — the split that lets a
/// processor run another query's compute stage while this fetch is in
/// flight.
pub struct PendingBatch {
    /// (server, correlation id, caller slots) per request on the wire.
    requests: Vec<(usize, u64, Vec<usize>)>,
    /// Fully reassembled responses, indexed like `requests`.
    collected: Vec<Option<BatchPayloads>>,
    /// Requests still awaited.
    remaining: usize,
    /// Caller's frontier length (shapes the final payload vector).
    node_count: usize,
    /// One reconnect attempt per server over this batch's lifetime.
    reconnected: Vec<bool>,
}

impl PendingBatch {
    /// Nodes the frontier asked for (the length of the eventual payload
    /// vector).
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

impl MultiplexedStorageSource {
    /// Puts a whole frontier's batch requests on the wire — grouped per
    /// storage server by the placement function, chunked under the
    /// per-frame node cap — without waiting for any reply.
    ///
    /// # Errors
    ///
    /// Propagates dial and send failures.
    pub fn submit_frontier(&mut self, nodes: &[NodeId]) -> WireResult<PendingBatch> {
        let servers = self.mux.server_count();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); servers];
        for (i, &node) in nodes.iter().enumerate() {
            groups[self.home(node)].push(i);
        }
        let mut requests: Vec<(usize, u64, Vec<usize>)> = Vec::new();
        let mut batch: Vec<NodeId> = Vec::new();
        for (server, group) in groups.iter().enumerate() {
            for slots in group.chunks(MAX_BATCH_REQUEST_NODES) {
                batch.clear();
                batch.extend(slots.iter().map(|&i| nodes[i]));
                let req_id = self.mux.submit(server, &batch)?;
                requests.push((server, req_id, slots.to_vec()));
            }
        }
        let remaining = requests.len();
        let collected = requests.iter().map(|_| None).collect();
        Ok(PendingBatch {
            requests,
            collected,
            remaining,
            node_count: nodes.len(),
            reconnected: vec![false; servers],
        })
    }

    /// Polls the in-flight batch without blocking: `Ok(Some)` with the
    /// full frontier's payloads (caller order) once every involved server
    /// has answered, `Ok(None)` while responses are still travelling.
    ///
    /// A dead connection is masked by one redial-and-resubmit per server
    /// per batch, mirroring [`BatchMux::collect_many`].
    ///
    /// # Errors
    ///
    /// Propagates transport failures past the reconnect budget and
    /// protocol violations.
    pub fn try_collect(&mut self, pending: &mut PendingBatch) -> WireResult<Option<BatchPayloads>> {
        for (i, &(server, req_id, _)) in pending.requests.iter().enumerate() {
            if pending.collected[i].is_some() {
                continue;
            }
            loop {
                if let Some(payloads) = self.mux.take_ready(server, req_id)? {
                    pending.collected[i] = Some(payloads);
                    pending.remaining -= 1;
                    break;
                }
                match self.mux.poll_server(server) {
                    Ok(true) => continue,
                    Ok(false) => break,
                    Err(e) => {
                        self.mux
                            .mask_poll_failure(server, e, &mut pending.reconnected)?;
                    }
                }
            }
        }
        if pending.remaining > 0 {
            return Ok(None);
        }
        let mut out: BatchPayloads = vec![None; pending.node_count];
        for ((server, _, slots), payloads) in
            pending.requests.iter().zip(pending.collected.drain(..))
        {
            let payloads = payloads.expect("remaining == 0 means all collected");
            assert_eq!(
                payloads.len(),
                slots.len(),
                "server {server} answered a different batch size"
            );
            for (&slot, payload) in slots.iter().zip(payloads) {
                out[slot] = payload;
            }
        }
        Ok(Some(out))
    }
}

impl BatchSource for MultiplexedStorageSource {
    fn fetch_batch(&mut self, nodes: &[NodeId]) -> Vec<Option<(u16, Bytes)>> {
        if nodes.is_empty() {
            return Vec::new();
        }
        // Submit phase: every involved server's batch goes on the wire
        // before any reply is awaited — the pipelining that amortises the
        // per-exchange RTT across the whole frontier.
        let mut pending = match self.submit_frontier(nodes) {
            Ok(p) => p,
            Err(e) => panic!("storage batch submit failed: {e}"),
        };
        // Collect phase: readiness loop over every pending connection —
        // the same submit/poll primitives the overlapped pipeline drives,
        // just awaited inline. An unproductive poll round means every
        // involved stream reported `WouldBlock`, so parking on the
        // readiness backend is safe.
        loop {
            let before = pending.remaining;
            match self.try_collect(&mut pending) {
                Ok(Some(out)) => return out,
                Ok(None) => {
                    if pending.remaining < before {
                        self.mux.note_progress();
                    } else {
                        self.mux.idle_wait(COLLECT_IDLE_WAIT);
                    }
                }
                Err(e) => panic!("storage batch fetch failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, Listener, TcpTransport};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn payload(i: u32) -> Option<(u16, Bytes)> {
        Some((0, Bytes::from(i.to_le_bytes().to_vec())))
    }

    /// A storage stand-in that answers every batch with one payload per
    /// node, optionally holding replies back to force reordering.
    fn batch_server(
        mut listener: Box<dyn Listener>,
        reverse_pairs: bool,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let Ok(mut conn) = listener.accept() else {
                return;
            };
            let mut held: Vec<Frame> = Vec::new();
            loop {
                match conn.recv() {
                    Ok(Frame::FetchBatchRequest { req_id, nodes, .. }) => {
                        let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                        let response = Frame::FetchBatchResponse { req_id, payloads };
                        if reverse_pairs {
                            // Answer requests two at a time, newest first,
                            // to prove req_id correlation.
                            held.push(response);
                            if held.len() == 2 {
                                for f in held.drain(..).rev() {
                                    if conn.send(&f).is_err() {
                                        return;
                                    }
                                }
                            }
                        } else if conn.send(&response).is_err() {
                            return;
                        }
                    }
                    Ok(Frame::Shutdown) | Err(_) => return,
                    Ok(_) => return,
                }
            }
        })
    }

    fn mux_round_trips_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = batch_server(listener, false);
        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let nodes: Vec<NodeId> = (0..100).map(n).collect();
        let req = mux.submit(0, &nodes).unwrap();
        let payloads = mux.collect(0, req).unwrap();
        assert_eq!(payloads.len(), nodes.len());
        for (node, got) in nodes.iter().zip(&payloads) {
            assert_eq!(*got, payload(node.raw()));
        }
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_mux_round_trips() {
        mux_round_trips_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_mux_round_trips() {
        mux_round_trips_over(Arc::new(TcpTransport::new()));
    }

    fn out_of_order_replies_correlate_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = batch_server(listener, true);
        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);

        // Two batches pipelined on one connection; the server replies to
        // the *second* first, so collecting in submit order exercises the
        // stash-and-match path both ways.
        let first = mux.submit(0, &[n(1), n(2)]).unwrap();
        let second = mux.submit(0, &[n(7)]).unwrap();
        assert_ne!(first, second);
        let got_first = mux.collect(0, first).unwrap();
        let got_second = mux.collect(0, second).unwrap();
        assert_eq!(got_first, vec![payload(1), payload(2)]);
        assert_eq!(got_second, vec![payload(7)]);
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_out_of_order_replies_correlate() {
        out_of_order_replies_correlate_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_out_of_order_replies_correlate() {
        out_of_order_replies_correlate_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn chunked_responses_reassemble_by_node_count() {
        // A server may stream one batch's answer as several frames (the
        // storage service does this past its soft byte budget); the mux
        // must concatenate them — even interleaved with another request's
        // chunks — until every node is answered.
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut held: Vec<(u64, Vec<NodeId>)> = Vec::new();
            for _ in 0..2 {
                match conn.recv().unwrap() {
                    Frame::FetchBatchRequest { req_id, nodes, .. } => held.push((req_id, nodes)),
                    other => panic!("server got {}", other.kind()),
                }
            }
            // Answer both requests in per-node chunks, alternating between
            // the two correlation ids.
            let mut cursors = [0usize, 0];
            loop {
                let mut sent = false;
                for (i, (req_id, nodes)) in held.iter().enumerate() {
                    if cursors[i] < nodes.len() {
                        let w = nodes[cursors[i]];
                        cursors[i] += 1;
                        conn.send(&Frame::FetchBatchResponse {
                            req_id: *req_id,
                            payloads: vec![payload(w.raw())],
                        })
                        .unwrap();
                        sent = true;
                    }
                }
                if !sent {
                    break;
                }
            }
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let first = mux.submit(0, &[n(1), n(2), n(3)]).unwrap();
        let second = mux.submit(0, &[n(10), n(11)]).unwrap();
        assert_eq!(
            mux.collect(0, first).unwrap(),
            vec![payload(1), payload(2), payload(3)]
        );
        assert_eq!(
            mux.collect(0, second).unwrap(),
            vec![payload(10), payload(11)]
        );
        server.join().unwrap();
    }

    fn mux_reconnects_over(transport: Arc<dyn Transport>) {
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        // Serve two connections in sequence: the first dies with a request
        // unanswered, forcing the mux to redial and resubmit it.
        let mut listener = listener;
        let server = std::thread::spawn(move || {
            // First connection: answer one batch, read the next request,
            // then drop it on the floor.
            let mut conn = listener.accept().unwrap();
            match conn.recv().unwrap() {
                Frame::FetchBatchRequest { req_id, nodes, .. } => {
                    let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                    conn.send(&Frame::FetchBatchResponse { req_id, payloads })
                        .unwrap();
                }
                other => panic!("server got {}", other.kind()),
            }
            let _ = conn.recv();
            drop(conn);
            // Second connection: serve whatever is resubmitted.
            let mut conn = listener.accept().unwrap();
            while let Ok(Frame::FetchBatchRequest { req_id, nodes, .. }) = conn.recv() {
                let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                if conn
                    .send(&Frame::FetchBatchResponse { req_id, payloads })
                    .is_err()
                {
                    break;
                }
            }
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let first = mux.submit(0, &[n(1)]).unwrap();
        assert_eq!(mux.collect(0, first).unwrap(), vec![payload(1)]);
        // The server dies holding this one; the mux must mask it.
        let second = mux.submit(0, &[n(2), n(3)]).unwrap();
        assert_eq!(
            mux.collect(0, second).unwrap(),
            vec![payload(2), payload(3)]
        );
        assert_eq!(mux.reconnects(), 1);
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_mux_reconnects_after_peer_death() {
        mux_reconnects_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_mux_reconnects_after_peer_death() {
        mux_reconnects_over(Arc::new(TcpTransport::new()));
    }

    /// A connection dying *mid-batch*, with chunked responses partially
    /// received, must not leak reassembly state: the partial chunks are
    /// discarded with the dead connection, the resubmitted request is
    /// re-answered in full on the fresh one, and nothing is double-counted
    /// (stale chunks surviving the reconnect would trip the
    /// answered-more-nodes-than-asked protocol check).
    fn mux_mid_batch_death_discards_partial_chunks_over(transport: Arc<dyn Transport>) {
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            // First connection: stream 2 of the 4 requested nodes as
            // per-node chunks, then die mid-response.
            let mut conn = listener.accept().unwrap();
            let (req_id, nodes) = match conn.recv().unwrap() {
                Frame::FetchBatchRequest { req_id, nodes, .. } => (req_id, nodes),
                other => panic!("server got {}", other.kind()),
            };
            assert_eq!(nodes.len(), 4);
            for w in &nodes[..2] {
                conn.send(&Frame::FetchBatchResponse {
                    req_id,
                    payloads: vec![payload(w.raw())],
                })
                .unwrap();
            }
            drop(conn);
            // Second connection: answer the resubmission in full (also
            // chunked, to exercise reassembly on the fresh connection).
            let mut conn = listener.accept().unwrap();
            while let Ok(Frame::FetchBatchRequest { req_id, nodes, .. }) = conn.recv() {
                for w in &nodes {
                    if conn
                        .send(&Frame::FetchBatchResponse {
                            req_id,
                            payloads: vec![payload(w.raw())],
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let req = mux.submit(0, &[n(1), n(2), n(3), n(4)]).unwrap();
        let got = mux.collect(0, req).unwrap();
        assert_eq!(
            got,
            vec![payload(1), payload(2), payload(3), payload(4)],
            "resubmitted batch must be answered in full, exactly once"
        );
        assert_eq!(mux.reconnects(), 1);
        // The mux is healthy afterwards: a new exchange works and no stale
        // reassembly entries interfere.
        let req = mux.submit(0, &[n(9)]).unwrap();
        assert_eq!(mux.collect(0, req).unwrap(), vec![payload(9)]);
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn inproc_mid_batch_death_discards_partial_chunks() {
        mux_mid_batch_death_discards_partial_chunks_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn tcp_mid_batch_death_discards_partial_chunks() {
        mux_mid_batch_death_discards_partial_chunks_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn response_to_unknown_request_is_rejected_not_leaked() {
        // A server answering a correlation id that is not outstanding
        // (bug, or a stale chunk after its request completed) used to be
        // stashed in the reassembly map forever; it must be a protocol
        // error instead.
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let req_id = match conn.recv().unwrap() {
                Frame::FetchBatchRequest { req_id, nodes, .. } => {
                    let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                    conn.send(&Frame::FetchBatchResponse { req_id, payloads })
                        .unwrap();
                    req_id
                }
                other => panic!("server got {}", other.kind()),
            };
            // A spurious extra chunk for the just-completed request.
            conn.send(&Frame::FetchBatchResponse {
                req_id,
                payloads: vec![payload(99)],
            })
            .unwrap();
            // Hold the connection open until the client has judged it.
            let _ = conn.recv();
        });

        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr]);
        let first = mux.submit(0, &[n(1)]).unwrap();
        assert_eq!(mux.collect(0, first).unwrap(), vec![payload(1)]);
        // Collecting the next request hits the stale chunk: the mux must
        // reject it as a protocol violation, not hoard it.
        let second = mux.submit(0, &[n(2)]).unwrap();
        let err = mux.collect(0, second).unwrap_err();
        assert!(
            matches!(err, WireError::Protocol(ref m) if m.contains("not outstanding")),
            "got {err}"
        );
        drop(mux);
        server.join().unwrap();
    }

    #[test]
    fn submit_frontier_try_collect_round_trips() {
        // The staged (non-blocking) surface delivers the same payloads as
        // the blocking fetch_batch, in caller order, across servers.
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..3 {
            let listener = transport.listen(&transport.any_addr()).unwrap();
            addrs.push(listener.addr());
            servers.push(batch_server(listener, false));
        }
        let partitioner: Arc<dyn Partitioner> =
            Arc::new(grouting_partition::HashPartitioner::new(3));
        let mut source = MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, partitioner);
        let nodes: Vec<NodeId> = (0..30).map(n).collect();
        let mut pending = source.submit_frontier(&nodes).unwrap();
        assert_eq!(pending.node_count(), nodes.len());
        let got = loop {
            if let Some(out) = source.try_collect(&mut pending).unwrap() {
                break out;
            }
            std::thread::yield_now();
        };
        assert_eq!(got.len(), nodes.len());
        for (node, p) in nodes.iter().zip(&got) {
            assert_eq!(*p, payload(node.raw()), "node {node}");
        }
        drop(source);
        for s in servers {
            s.join().unwrap();
        }
    }

    #[test]
    fn collect_many_drains_multiple_servers() {
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let mut addrs = Vec::new();
        let mut servers = Vec::new();
        for _ in 0..3 {
            let listener = transport.listen(&transport.any_addr()).unwrap();
            addrs.push(listener.addr());
            servers.push(batch_server(listener, false));
        }
        let mut mux = BatchMux::new(Arc::clone(&transport), &addrs);
        let wanted: Vec<(usize, u64)> = (0..3)
            .map(|s| {
                let nodes: Vec<NodeId> = (0..4).map(|i| n(s as u32 * 10 + i)).collect();
                (s, mux.submit(s, &nodes).unwrap())
            })
            .collect();
        let responses = mux.collect_many(&wanted).unwrap();
        for (s, payloads) in responses.iter().enumerate() {
            assert_eq!(payloads.len(), 4);
            assert_eq!(payloads[0], payload(s as u32 * 10));
        }
        drop(mux);
        for s in servers {
            s.join().unwrap();
        }
    }

    #[test]
    fn fetch_mode_env_values() {
        // Only the parser; the env var itself belongs to CI.
        assert_eq!(FetchMode::default(), FetchMode::Batched);
        assert_eq!(FetchMode::Scalar.to_string(), "scalar");
        assert_eq!(FetchMode::Batched.to_string(), "batched");
    }

    /// A batch server that accepts ONE connection, unbinds its listener
    /// immediately (so recovery redials to it fail fast once it dies),
    /// answers `answer` requests, then dies holding the next one.
    fn flaky_batch_server(
        mut listener: Box<dyn Listener>,
        answer: usize,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let Ok(mut conn) = listener.accept() else {
                return;
            };
            drop(listener);
            for _ in 0..answer {
                match conn.recv() {
                    Ok(Frame::FetchBatchRequest { req_id, nodes, .. }) => {
                        let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                        conn.send(&Frame::FetchBatchResponse { req_id, payloads })
                            .unwrap();
                    }
                    _ => return,
                }
            }
            let _ = conn.recv();
        })
    }

    #[test]
    fn mux_fails_over_to_replica_then_recovers_primary() {
        use crate::transport::RetryPolicy;
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let a = transport.listen(&transport.any_addr()).unwrap();
        let addr_a = a.addr();
        let b = transport.listen(&transport.any_addr()).unwrap();
        let addr_b = b.addr();
        // Both endpoints serve home 0's data (replica chain of length 2);
        // each answers one request and dies holding the next.
        let sa = flaky_batch_server(a, 1);
        let sb = flaky_batch_server(b, 1);
        let mut mux = BatchMux::new(Arc::clone(&transport), &[addr_a.clone(), addr_b])
            .with_replication(2)
            .with_retry(RetryPolicy::new(2, Duration::from_millis(1)));

        // Exchange 1: served by the primary endpoint.
        let req = mux.submit(0, &[n(1)]).unwrap();
        assert_eq!(mux.collect(0, req).unwrap(), vec![payload(1)]);

        // Exchange 2: the primary dies holding it; recovery walks the
        // chain and the replica re-answers the resubmission.
        let req = mux.submit(0, &[n(2)]).unwrap();
        assert_eq!(mux.collect(0, req).unwrap(), vec![payload(2)]);
        assert_eq!(mux.failover_stats().replica_failovers, 1);

        // The primary re-joins at its old address; when the replica dies
        // in turn, the chain walk (primary-first) recovers the primary.
        let a2 = transport.listen(&addr_a).unwrap();
        let sa2 = batch_server(a2, false);
        let req = mux.submit(0, &[n(3)]).unwrap();
        assert_eq!(mux.collect(0, req).unwrap(), vec![payload(3)]);

        let stats = mux.failover_stats();
        assert_eq!(
            stats.replica_failovers, 1,
            "the recovery after the replica's death lands back on the primary"
        );
        assert_eq!(stats.batches_resubmitted, 2);
        assert_eq!(stats.redials, 3, "primary-fail, replica-ok, primary-ok");
        assert_eq!(mux.reconnects(), 2);
        drop(mux);
        sa.join().unwrap();
        sb.join().unwrap();
        sa2.join().unwrap();
    }

    /// A batch server that survives any number of client connection
    /// deaths: each torn or dropped connection just moves it back to
    /// accept. Stopped by a [`Frame::Shutdown`].
    fn resilient_batch_server(mut listener: Box<dyn Listener>) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || loop {
            let Ok(mut conn) = listener.accept() else {
                return;
            };
            loop {
                match conn.recv() {
                    Ok(Frame::FetchBatchRequest { req_id, nodes, .. }) => {
                        let payloads = nodes.iter().map(|w| payload(w.raw())).collect();
                        if conn
                            .send(&Frame::FetchBatchResponse { req_id, payloads })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Ok(Frame::Shutdown) => return,
                    Ok(_) | Err(_) => break,
                }
            }
        })
    }

    proptest::proptest! {
        /// A connection killed mid-frame — the fault layer tears one
        /// scripted request to `keep` bytes, anywhere in a pipelined
        /// sequence — never corrupts the stream: the server never decodes
        /// a torn frame as valid, the redialled connection resubmits
        /// exactly the outstanding requests, reassembly discards stale
        /// partial state, and every batch is answered in full exactly once
        /// (double answers would trip the mux's size checks). Exercised
        /// over both transports.
        #[test]
        fn prop_truncated_connection_never_corrupts_stream(
            sizes in proptest::collection::vec(1usize..6, 1..5),
            tear in 0u64..6,
            keep in 1usize..40,
        ) {
            use crate::fault::{FaultKind, FaultPlan, FaultRule, FaultyTransport};
            use crate::transport::RetryPolicy;
            let transports: Vec<Arc<dyn Transport>> =
                vec![Arc::new(InProcTransport::new()), Arc::new(TcpTransport::new())];
            for transport in transports {
                let listener = transport.listen(&transport.any_addr()).unwrap();
                let addr = listener.addr();
                let server = resilient_batch_server(listener);
                let plan = FaultPlan::new().with(FaultRule::new(FaultKind::TruncateFrame {
                    frame: tear,
                    keep_bytes: keep,
                }));
                let faulty = FaultyTransport::wrap(Arc::clone(&transport), plan);
                let mut mux = BatchMux::new(faulty, std::slice::from_ref(&addr))
                    .with_retry(RetryPolicy::new(4, Duration::from_millis(1)));

                // Pipeline every batch, then collect in submit order.
                let mut wanted = Vec::new();
                for (b, &size) in sizes.iter().enumerate() {
                    let nodes: Vec<NodeId> =
                        (0..size).map(|i| n((b * 100 + i) as u32)).collect();
                    let req = mux.submit(0, &nodes).unwrap();
                    wanted.push((0usize, req));
                }
                let got = mux.collect_many(&wanted).unwrap();
                for (b, (&size, payloads)) in sizes.iter().zip(&got).enumerate() {
                    let want: Vec<_> =
                        (0..size).map(|i| payload((b * 100 + i) as u32)).collect();
                    proptest::prop_assert_eq!(payloads, &want, "batch {}", b);
                }
                if tear < sizes.len() as u64 {
                    proptest::prop_assert_eq!(mux.reconnects(), 1);
                    proptest::prop_assert!(mux.failover_stats().batches_resubmitted >= 1);
                }
                drop(mux);
                let mut stop = transport.dial(&addr).unwrap();
                stop.send(&Frame::Shutdown).unwrap();
                drop(stop);
                server.join().unwrap();
            }
        }
    }
}
