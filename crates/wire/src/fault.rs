//! Deterministic fault injection for the wire transports.
//!
//! The paper's availability story (§4.1) rests on recovery paths — redial,
//! replica failover, resubmission — that only run when connections die at
//! awkward moments. This module makes those moments scriptable: a
//! [`FaultPlan`] holds an ordered list of [`FaultRule`]s, and
//! [`FaultyTransport`] wraps any [`Transport`] so that dials and the
//! connections they produce misbehave exactly as scripted. Every fault is
//! counted down deterministically (no randomness, no timing races beyond
//! the delays the script itself asks for), so a failing recovery path
//! replays identically from the same plan.
//!
//! Faults arm on the *dialling* side, which is where every recovery path
//! in this crate lives: the batch multiplexer and the scalar connection
//! pools both react to send/receive errors on connections they dialled.
//!
//! Plans come from two places:
//!
//! * programmatically, via [`FaultPlan::with`] and
//!   `ClusterConfig::with_faults`;
//! * the `GROUTING_FAULTS` environment variable — semicolon-separated
//!   rules `kill:N`, `trunc:N:K`, `delay:MS`, `refuse:MS`, each with an
//!   optional `@substr` suffix restricting it to addresses containing
//!   `substr` (e.g. `GROUTING_FAULTS="kill:3@:9100;refuse:50@:9100"`).
//!   Invalid values warn via `GROUTING_LOG`, naming the value, and are
//!   ignored.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use grouting_metrics::log_warn;

use crate::error::{WireError, WireResult};
use crate::frame::Frame;
use crate::transport::{Connection, FrameSink, FrameStream, Listener, Transport};

/// What a single fault does to the connection (or dial) it arms on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The connection dies after `N` frames have been sent through it:
    /// sends `0..N` succeed, send `N` (and everything after, both halves)
    /// fails with [`WireError::Closed`].
    KillAfterFrames(u64),
    /// Send number `frame` (0-based) goes out truncated to `keep_bytes`
    /// bytes of its encoding, then the connection dies. The peer is left
    /// holding a torn frame — the reassembly-safety scenario.
    TruncateFrame {
        /// Which send (0-based) to tear.
        frame: u64,
        /// How many bytes of the encoding to let through.
        keep_bytes: usize,
    },
    /// Every send through the connection is delayed by this much first —
    /// for latency-tolerance tests, not a failure per se.
    DelaySend(Duration),
    /// Dials to the target fail with [`WireError::Unroutable`] for this
    /// long, starting at the first refused attempt — models an endpoint
    /// that is down and later comes back.
    RefuseDials(Duration),
}

/// One scripted fault: a kind, an optional address filter, and how many
/// connections (or, for [`FaultKind::RefuseDials`], outage windows) it
/// arms on before it is spent.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring of the dialled address this rule applies to; `None`
    /// matches every dial.
    pub target: Option<String>,
    /// What happens.
    pub kind: FaultKind,
    /// How many times the rule fires before it is spent (default 1).
    pub times: u32,
}

impl FaultRule {
    /// A rule firing once on any address.
    pub fn new(kind: FaultKind) -> Self {
        Self {
            target: None,
            kind,
            times: 1,
        }
    }

    /// Restricts the rule to addresses containing `substr`.
    #[must_use]
    pub fn on(mut self, substr: impl Into<String>) -> Self {
        self.target = Some(substr.into());
        self
    }

    /// Fires up to `times` times instead of once.
    #[must_use]
    pub fn times(mut self, times: u32) -> Self {
        self.times = times.max(1);
        self
    }

    fn matches(&self, addr: &str) -> bool {
        self.target.as_deref().is_none_or(|t| addr.contains(t))
    }
}

struct RuleState {
    rule: FaultRule,
    remaining: u32,
    /// For [`FaultKind::RefuseDials`]: the end of the current outage
    /// window, opened by the first refused dial.
    refuse_until: Option<Instant>,
}

/// A shared, ordered script of [`FaultRule`]s. Cloning shares the
/// countdowns, so the plan handed to a cluster and the one a test keeps
/// observe the same spend state.
#[derive(Clone, Default)]
pub struct FaultPlan {
    rules: Arc<Mutex<Vec<RuleState>>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rules = self.rules.lock().expect("fault plan lock");
        f.debug_struct("FaultPlan")
            .field("rules", &rules.len())
            .field("remaining", &rules.iter().map(|r| r.remaining).sum::<u32>())
            .finish()
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule.
    #[must_use]
    pub fn with(self, rule: FaultRule) -> Self {
        self.push(rule);
        self
    }

    /// Appends a rule in place.
    pub fn push(&self, rule: FaultRule) {
        let mut rules = self.rules.lock().expect("fault plan lock");
        let remaining = rule.times;
        rules.push(RuleState {
            rule,
            remaining,
            refuse_until: None,
        });
    }

    /// True when no rule can still fire — wrapping a transport with such a
    /// plan is a no-op and [`FaultyTransport::wrap`] skips it.
    pub fn is_empty(&self) -> bool {
        self.rules
            .lock()
            .expect("fault plan lock")
            .iter()
            .all(|r| r.remaining == 0)
    }

    /// Parses `GROUTING_FAULTS` (see the module docs for the grammar).
    /// Unset yields an empty plan; invalid rules warn and are skipped.
    pub fn from_env() -> Self {
        match std::env::var("GROUTING_FAULTS") {
            Ok(raw) => Self::parse(&raw),
            Err(_) => Self::new(),
        }
    }

    fn parse(raw: &str) -> Self {
        let plan = Self::new();
        for spec in raw.split(';').map(str::trim).filter(|s| !s.is_empty()) {
            match Self::parse_rule(spec) {
                Some(rule) => plan.push(rule),
                None => log_warn!(
                    "invalid GROUTING_FAULTS rule {spec:?} (expected kill:N, trunc:N:K, \
                     delay:MS, or refuse:MS, optionally @substr); skipping it"
                ),
            }
        }
        plan
    }

    fn parse_rule(spec: &str) -> Option<FaultRule> {
        let (body, target) = match spec.split_once('@') {
            Some((body, target)) if !target.is_empty() => (body, Some(target.to_string())),
            Some(_) => return None,
            None => (spec, None),
        };
        let mut parts = body.split(':');
        let kind = match parts.next()?.trim() {
            "kill" => FaultKind::KillAfterFrames(parts.next()?.trim().parse().ok()?),
            "trunc" => FaultKind::TruncateFrame {
                frame: parts.next()?.trim().parse().ok()?,
                keep_bytes: parts.next()?.trim().parse().ok()?,
            },
            "delay" => {
                FaultKind::DelaySend(Duration::from_millis(parts.next()?.trim().parse().ok()?))
            }
            "refuse" => {
                FaultKind::RefuseDials(Duration::from_millis(parts.next()?.trim().parse().ok()?))
            }
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(FaultRule {
            target,
            kind,
            times: 1,
        })
    }

    /// Consults the refuse rules for a dial to `addr`. The first refused
    /// attempt opens the outage window; once it has elapsed the rule is
    /// spent and dials pass again.
    fn check_dial(&self, addr: &str) -> WireResult<()> {
        let mut rules = self.rules.lock().expect("fault plan lock");
        for state in rules.iter_mut() {
            let FaultKind::RefuseDials(window) = state.rule.kind else {
                continue;
            };
            if state.remaining == 0 || !state.rule.matches(addr) {
                continue;
            }
            let now = Instant::now();
            match state.refuse_until {
                None => {
                    state.refuse_until = Some(now + window);
                    return Err(WireError::Unroutable(format!(
                        "{addr} (scripted refuse for {window:?})"
                    )));
                }
                Some(until) if now < until => {
                    return Err(WireError::Unroutable(format!(
                        "{addr} (scripted refuse, {:?} left)",
                        until - now
                    )));
                }
                Some(_) => {
                    state.remaining -= 1;
                    state.refuse_until = None;
                }
            }
        }
        Ok(())
    }

    /// Arms the first matching connection-scoped rule (if any) on a
    /// freshly dialled connection.
    fn arm(&self, addr: &str, conn: Connection) -> Connection {
        let kind = {
            let mut rules = self.rules.lock().expect("fault plan lock");
            rules
                .iter_mut()
                .find(|s| {
                    s.remaining > 0
                        && !matches!(s.rule.kind, FaultKind::RefuseDials(_))
                        && s.rule.matches(addr)
                })
                .map(|s| {
                    s.remaining -= 1;
                    s.rule.kind
                })
        };
        let Some(kind) = kind else {
            return conn;
        };
        let fault = Arc::new(ConnFault {
            kind,
            sent: AtomicU64::new(0),
            dead: AtomicBool::new(false),
        });
        let (sink, stream) = conn.split();
        Connection::from_halves(
            Box::new(FaultySink {
                inner: Some(sink),
                fault: Arc::clone(&fault),
            }),
            Box::new(FaultyStream {
                inner: Some(stream),
                fault,
            }),
        )
    }
}

/// Shared per-connection fault state: the scripted kind, how many frames
/// the sink has let through, and whether the fault has fired.
struct ConnFault {
    kind: FaultKind,
    sent: AtomicU64,
    dead: AtomicBool,
}

struct FaultySink {
    inner: Option<Box<dyn FrameSink>>,
    fault: Arc<ConnFault>,
}

impl FrameSink for FaultySink {
    fn send(&mut self, frame: &Frame) -> WireResult<()> {
        if self.fault.dead.load(Ordering::Acquire) {
            self.inner = None;
            return Err(WireError::Closed);
        }
        let seq = self.fault.sent.fetch_add(1, Ordering::AcqRel);
        match self.fault.kind {
            FaultKind::KillAfterFrames(n) if seq >= n => {
                self.fault.dead.store(true, Ordering::Release);
                self.inner = None;
                Err(WireError::Closed)
            }
            FaultKind::TruncateFrame {
                frame: at,
                keep_bytes,
            } if seq == at => {
                if let Some(inner) = self.inner.as_mut() {
                    let _ = inner.send_truncated(frame, keep_bytes);
                }
                self.fault.dead.store(true, Ordering::Release);
                self.inner = None;
                Err(WireError::Closed)
            }
            FaultKind::DelaySend(pause) => {
                std::thread::sleep(pause);
                self.forward(frame)
            }
            _ => self.forward(frame),
        }
    }
}

impl FaultySink {
    fn forward(&mut self, frame: &Frame) -> WireResult<()> {
        match self.inner.as_mut() {
            Some(inner) => inner.send(frame),
            None => Err(WireError::Closed),
        }
    }
}

struct FaultyStream {
    inner: Option<Box<dyn FrameStream>>,
    fault: Arc<ConnFault>,
}

impl FaultyStream {
    /// Drops the inner half once the fault has fired so the peer observes
    /// the close; afterwards every receive reports [`WireError::Closed`].
    fn gate(&mut self) -> WireResult<&mut Box<dyn FrameStream>> {
        if self.fault.dead.load(Ordering::Acquire) {
            self.inner = None;
        }
        self.inner.as_mut().ok_or(WireError::Closed)
    }
}

impl FrameStream for FaultyStream {
    fn recv(&mut self) -> WireResult<Frame> {
        self.gate()?.recv()
    }

    fn try_recv(&mut self) -> WireResult<Option<Frame>> {
        self.gate()?.try_recv()
    }

    // Deliberately no `raw_fd` override returning the inner fd: a faulted
    // connection must not be parked in a kernel poller, because the fault
    // fires on the *send* side and the fd would never signal readability.
    // Reporting fd-less routes the connection onto the reactors' periodic
    // sweep path, where `try_recv` observes the death promptly.
}

/// A [`Transport`] decorator injecting the faults a [`FaultPlan`]
/// scripts. Listening is untouched; dialling consults the refuse rules
/// and arms connection-scoped rules on the connections it returns.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
}

impl FaultyTransport {
    /// Wraps `inner` — or returns it unchanged when the plan is empty, so
    /// the fault layer costs nothing unless scripted.
    pub fn wrap(inner: Arc<dyn Transport>, plan: FaultPlan) -> Arc<dyn Transport> {
        if plan.is_empty() {
            inner
        } else {
            Arc::new(Self { inner, plan })
        }
    }
}

impl Transport for FaultyTransport {
    fn listen(&self, addr: &str) -> WireResult<Box<dyn Listener>> {
        self.inner.listen(addr)
    }

    fn dial(&self, addr: &str) -> WireResult<Connection> {
        self.plan.check_dial(addr)?;
        Ok(self.plan.arm(addr, self.inner.dial(addr)?))
    }

    fn dial_once(&self, addr: &str) -> WireResult<Connection> {
        self.plan.check_dial(addr)?;
        Ok(self.plan.arm(addr, self.inner.dial_once(addr)?))
    }

    fn any_addr(&self) -> String {
        self.inner.any_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{InProcTransport, TcpTransport};
    use grouting_graph::NodeId;

    fn frame(i: u32) -> Frame {
        Frame::FetchRequest {
            node: NodeId::new(i),
        }
    }

    fn echoing(transport: &dyn Transport) -> (String, std::thread::JoinHandle<()>) {
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let server = std::thread::spawn(move || {
            while let Ok(mut conn) = listener.accept() {
                std::thread::spawn(move || {
                    while let Ok(f) = conn.recv() {
                        if matches!(f, Frame::Shutdown) {
                            return; // Shut the whole server down via drop.
                        }
                        if conn.send(&f).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, server)
    }

    fn kill_after_frames_over(inner: Arc<dyn Transport>) {
        let (addr, _server) = echoing(&*inner);
        let plan = FaultPlan::new().with(FaultRule::new(FaultKind::KillAfterFrames(2)));
        let t = FaultyTransport::wrap(Arc::clone(&inner), plan.clone());
        let mut conn = t.dial(&addr).unwrap();
        assert_eq!(conn.request(&frame(0)).unwrap(), frame(0));
        assert_eq!(conn.request(&frame(1)).unwrap(), frame(1));
        assert!(matches!(conn.send(&frame(2)), Err(WireError::Closed)));
        assert!(matches!(conn.recv(), Err(WireError::Closed)));
        // The rule is spent: a redial gets a clean connection.
        assert!(plan.is_empty());
        let mut fresh = t.dial(&addr).unwrap();
        assert_eq!(fresh.request(&frame(3)).unwrap(), frame(3));
    }

    #[test]
    fn kill_after_frames_inproc() {
        kill_after_frames_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn kill_after_frames_tcp() {
        kill_after_frames_over(Arc::new(TcpTransport::new()));
    }

    fn truncate_tears_frame_over(inner: Arc<dyn Transport>) {
        let mut listener = inner.listen(&inner.any_addr()).unwrap();
        let addr = listener.addr();
        let t = FaultyTransport::wrap(
            Arc::clone(&inner),
            FaultPlan::new().with(FaultRule::new(FaultKind::TruncateFrame {
                frame: 1,
                keep_bytes: 3,
            })),
        );
        let mut conn = t.dial(&addr).unwrap();
        let mut server_side = listener.accept().unwrap();
        conn.send(&frame(0)).unwrap();
        assert_eq!(server_side.recv().unwrap(), frame(0));
        // The second send is torn mid-frame; the sender learns immediately.
        assert!(matches!(conn.send(&frame(1)), Err(WireError::Closed)));
        drop(conn);
        // The peer never assembles a frame from the torn bytes.
        match server_side.recv() {
            Err(WireError::Closed) | Err(WireError::Codec(_)) => {}
            other => panic!("torn frame surfaced as {other:?}"),
        }
    }

    #[test]
    fn truncate_tears_frame_inproc() {
        truncate_tears_frame_over(Arc::new(InProcTransport::new()));
    }

    #[test]
    fn truncate_tears_frame_tcp() {
        truncate_tears_frame_over(Arc::new(TcpTransport::new()));
    }

    #[test]
    fn delay_send_pauses_but_delivers() {
        let inner: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let (addr, _server) = echoing(&*inner);
        let pause = Duration::from_millis(30);
        let t = FaultyTransport::wrap(
            Arc::clone(&inner),
            FaultPlan::new().with(FaultRule::new(FaultKind::DelaySend(pause)).times(2)),
        );
        let mut conn = t.dial(&addr).unwrap();
        let started = Instant::now();
        assert_eq!(conn.request(&frame(7)).unwrap(), frame(7));
        assert!(started.elapsed() >= pause);
    }

    #[test]
    fn refuse_dials_opens_then_closes_a_window() {
        let inner: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let (addr, _server) = echoing(&*inner);
        let t = FaultyTransport::wrap(
            Arc::clone(&inner),
            FaultPlan::new()
                .with(FaultRule::new(FaultKind::RefuseDials(Duration::from_millis(40))).on(&addr)),
        );
        // First attempt opens the outage window; attempts inside it fail.
        assert!(matches!(t.dial(&addr), Err(WireError::Unroutable(_))));
        assert!(matches!(t.dial(&addr), Err(WireError::Unroutable(_))));
        std::thread::sleep(Duration::from_millis(50));
        // The endpoint is "back": the dial passes and the rule is spent.
        let mut conn = t.dial(&addr).unwrap();
        assert_eq!(conn.request(&frame(1)).unwrap(), frame(1));
    }

    #[test]
    fn rules_target_by_substring() {
        let inner: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let (addr_a, _sa) = echoing(&*inner);
        let (addr_b, _sb) = echoing(&*inner);
        let t = FaultyTransport::wrap(
            Arc::clone(&inner),
            FaultPlan::new().with(FaultRule::new(FaultKind::KillAfterFrames(0)).on(&addr_a)),
        );
        // addr_b is untouched even though it dials first.
        let mut ok = t.dial(&addr_b).unwrap();
        assert_eq!(ok.request(&frame(5)).unwrap(), frame(5));
        let mut doomed = t.dial(&addr_a).unwrap();
        assert!(matches!(doomed.send(&frame(6)), Err(WireError::Closed)));
    }

    #[test]
    fn empty_plan_wrap_is_identity() {
        let inner: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let wrapped = FaultyTransport::wrap(Arc::clone(&inner), FaultPlan::new());
        assert!(Arc::ptr_eq(
            &(Arc::clone(&wrapped) as Arc<dyn Transport>),
            &wrapped
        ));
        // An armed connection from an empty plan keeps its raw fd (no
        // wrapper): sanity-check via a TCP dial through a non-empty plan
        // that targets a different address.
        let tcp: Arc<dyn Transport> = Arc::new(TcpTransport::new());
        let (addr, _server) = echoing(&*tcp);
        let t = FaultyTransport::wrap(
            Arc::clone(&tcp),
            FaultPlan::new().with(FaultRule::new(FaultKind::KillAfterFrames(1)).on("elsewhere")),
        );
        let conn = t.dial(&addr).unwrap();
        assert!(conn.raw_fd().is_some(), "unfaulted dial keeps its fd");
    }

    #[test]
    fn env_grammar_parses_and_skips_invalid() {
        let plan =
            FaultPlan::parse("kill:3@:9100; trunc:0:5 ;delay:10;refuse:250@stor;bogus:1;kill:x");
        let rules = plan.rules.lock().unwrap();
        let kinds: Vec<_> = rules.iter().map(|r| r.rule.kind).collect();
        assert_eq!(
            kinds,
            vec![
                FaultKind::KillAfterFrames(3),
                FaultKind::TruncateFrame {
                    frame: 0,
                    keep_bytes: 5
                },
                FaultKind::DelaySend(Duration::from_millis(10)),
                FaultKind::RefuseDials(Duration::from_millis(250)),
            ]
        );
        assert_eq!(rules[0].rule.target.as_deref(), Some(":9100"));
        assert_eq!(rules[3].rule.target.as_deref(), Some("stor"));
        assert!(rules.iter().all(|r| r.remaining == 1));
    }
}
