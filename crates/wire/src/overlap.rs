//! Cross-query fetch overlap: a small in-flight window per processor.
//!
//! With frontier batching (PR 3) a processor's storage pipe is busy only
//! while a query is *fetching*; the pipe idles whenever the processor is
//! computing. [`QueryPipeline`] closes that gap: it keeps up to
//! `overlap` dispatched queries in flight as [`StagedQuery`] state
//! machines over ONE cache and ONE [`MultiplexedStorageSource`], so while
//! query A's frontier batch travels, query B's compute stage runs — and
//! B's next batch goes on the wire before A's reply is awaited
//! (double-buffered frontiers).
//!
//! At `overlap == 1` the pipeline degenerates to strictly serial
//! execution whose cache operation sequence is byte-identical to
//! [`grouting_engine::Worker::run`] — the agreement contract pinned by
//! `wire_agreement` — because [`StagedQuery`] replays exactly the
//! plan/fetch/apply cycle of the blocking executor.
//!
//! Attribution under interleaving: each staged query owns its
//! [`grouting_query::AccessStats`] (swapped into the transient store per
//! step), so per-query hit/miss counts sum to the true totals even though
//! the queries share a cache. The *split* between two interleaved queries
//! touching the same cold record may differ from a serial run (whoever
//! applies first takes the miss), which is why strict stat agreement is
//! only promised at `overlap == 1`.

use std::collections::VecDeque;

use grouting_graph::NodeId;
use grouting_metrics::HeatMap;
use grouting_query::{
    CacheBackedStore, ExecOutcome, PrefetchConfig, PrefetchState, PrefetchStats, ProcessorCache,
    Query, StagedQuery, Step,
};
use grouting_trace::{QueryTrace, TraceLevel};

use crate::error::WireResult;
use crate::flow::{MultiplexedStorageSource, PendingBatch};
use crate::service::now_ns;

/// One finished query, ready to be acknowledged to the router.
pub struct CompletedQuery {
    /// Workload sequence number (from the dispatch).
    pub seq: u64,
    /// Result and per-query access statistics.
    pub outcome: ExecOutcome,
    /// When execution began (first resume), [`now_ns`] clock.
    pub started_ns: u64,
    /// When the query finished, [`now_ns`] clock.
    pub completed_ns: u64,
    /// Fetch-wait vs compute split (per level at
    /// [`TraceLevel::Spans`]); `None` when the pipeline isn't tracing.
    pub trace: Option<QueryTrace>,
}

struct ActiveQuery {
    seq: u64,
    staged: StagedQuery,
    /// The in-flight frontier fetch, `None` only transiently (a query is
    /// parked here exactly when it awaits payloads). Covers the demand
    /// miss set *plus* any speculative tail.
    pending: Option<PendingBatch>,
    /// The demand miss set `pending` answers first (its payloads lead;
    /// the rest are speculative and go to the staging buffer). Also
    /// registered with the prefetch state so other queries' predictions
    /// don't re-request bytes already travelling.
    demand: Vec<NodeId>,
    /// The speculative nodes riding on `pending`, in request order.
    spec: Vec<NodeId>,
    started_ns: u64,
    /// When the in-flight frontier went on the wire (tracing only; the
    /// gap to payload consumption is the level's fetch wait).
    fetch_started_ns: u64,
    /// Accumulated span block (all zeros while tracing is off).
    trace: QueryTrace,
}

/// The per-processor overlap engine: dispatched queries wait in a FIFO,
/// up to `overlap` of them run as interleaved staged executions.
///
/// With prefetching configured ([`QueryPipeline::with_prefetch`]), every
/// frontier batch going out piggybacks the configured predictor's
/// speculative nodes; their payloads land in a processor-wide staging
/// buffer that later frontiers (of *any* query in the pipeline) are
/// served from without a wire exchange. Demand-side accounting is
/// byte-identical with speculation on or off.
pub struct QueryPipeline {
    overlap: usize,
    queue: VecDeque<(u64, Query)>,
    active: VecDeque<ActiveQuery>,
    prefetch: PrefetchState,
    trace: TraceLevel,
    /// Cumulative per-storage-server workload heat: demand counts fold in
    /// as queries complete (from their miss logs), speculative counts as
    /// prefetched payloads arrive. Deterministic integer tallies, counted
    /// unconditionally — observability sampling never changes them.
    heat: HeatMap,
}

impl QueryPipeline {
    /// A pipeline admitting at most `overlap` (≥ 1) concurrent queries,
    /// with speculation off and tracing off.
    pub fn new(overlap: usize) -> Self {
        Self {
            overlap: overlap.max(1),
            queue: VecDeque::new(),
            active: VecDeque::new(),
            prefetch: PrefetchState::new(PrefetchConfig::OFF),
            trace: TraceLevel::Off,
            heat: HeatMap::new(),
        }
    }

    /// Raises the pipeline's trace level (never lowers it). The processor
    /// calls this with the level its dispatch frames carry, so the first
    /// traced dispatch switches instrumentation on for every query that
    /// resumes afterwards.
    pub fn set_trace(&mut self, level: TraceLevel) {
        self.trace = self.trace.max(level);
    }

    /// Equips the pipeline with speculative frontier prefetching per
    /// `config` ([`PrefetchConfig::OFF`] keeps it inert).
    #[must_use]
    pub fn with_prefetch(mut self, config: PrefetchConfig) -> Self {
        self.prefetch = PrefetchState::new(config);
        self
    }

    /// The cumulative speculative tally (zeros while prefetching is off).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch.stats()
    }

    /// The cumulative per-storage-server heat (demand misses of completed
    /// queries plus speculative payloads staged so far).
    pub fn heat(&self) -> &HeatMap {
        &self.heat
    }

    /// Accepts a dispatched query (admitted into execution by the next
    /// [`QueryPipeline::step`] once a slot frees up).
    pub fn push(&mut self, seq: u64, query: Query) {
        self.queue.push_back((seq, query));
    }

    /// Queries accepted but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.active.len()
    }

    /// Whether nothing is queued or executing.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    /// Drives every in-flight query one round: admits queued queries into
    /// free slots (running their compute until the first fetch), polls
    /// each awaited frontier fetch, and resumes whichever queries have
    /// their payloads — submitting their next frontier before returning.
    /// Never blocks; returns the queries that finished this round.
    ///
    /// # Errors
    ///
    /// Propagates storage-path failures (dial/submit/poll past the
    /// reconnect budget, protocol violations).
    pub fn step(
        &mut self,
        source: &mut MultiplexedStorageSource,
        cache: &mut ProcessorCache,
    ) -> WireResult<Vec<CompletedQuery>> {
        let mut completed = Vec::new();

        // Admit queued queries into free slots, oldest first. Each new
        // query computes up to its first remote fetch, which goes on the
        // wire immediately — this is the submit-before-await that keeps
        // the storage pipe full while older queries compute.
        while self.active.len() < self.overlap {
            if !self.admit_next(source, cache, &mut completed)? {
                break;
            }
        }

        // Poll every awaited fetch, oldest query first; resume those whose
        // payloads have fully arrived.
        let mut slot = 0;
        while slot < self.active.len() {
            let active = &mut self.active[slot];
            let pending = active
                .pending
                .as_mut()
                .expect("parked queries await a fetch");
            let Some(mut payloads) = source.try_collect(pending)? else {
                slot += 1;
                continue;
            };
            active.pending = None;
            // The level's fetch wait ends the moment its payloads are
            // consumed; the resume that follows is its compute.
            let fetch_ns = if self.trace.enabled() {
                now_ns().saturating_sub(active.fetch_started_ns)
            } else {
                0
            };
            // The speculative tail goes to the staging buffer; the staged
            // query sees exactly the demand payloads it asked for.
            let demand_nodes = std::mem::take(&mut active.demand);
            let spec_payloads = payloads.split_off(demand_nodes.len());
            let spec_nodes = std::mem::take(&mut active.spec);
            for (server, _) in spec_payloads.iter().flatten() {
                self.heat.record_speculative(*server as usize, 1);
            }
            self.prefetch.demand_arrived(&demand_nodes);
            let resume_started_ns = if self.trace.enabled() { now_ns() } else { 0 };
            let (step, spec) = {
                let active = &mut self.active[slot];
                let mut store =
                    CacheBackedStore::with_prefetch(&mut *source, cache, &mut self.prefetch);
                store.absorb_speculative(&spec_nodes, spec_payloads);
                let step = active.staged.resume(&mut store, Some(payloads));
                let spec = match &step {
                    Step::Fetch(miss) => store.plan_speculative(active.staged.frontier(), miss),
                    Step::Done(_) => Vec::new(),
                };
                (step, spec)
            };
            if self.trace.enabled() {
                let compute_ns = now_ns().saturating_sub(resume_started_ns);
                let active = &mut self.active[slot];
                active.trace.fetch_wait_ns += fetch_ns;
                active.trace.compute_ns += compute_ns;
                active.trace.levels += 1;
                if self.trace.spans() {
                    active.trace.level_spans.push((fetch_ns, compute_ns));
                }
            }
            match step {
                Step::Fetch(miss) => {
                    self.submit(source, slot, miss, spec)?;
                    slot += 1;
                }
                Step::Done(outcome) => {
                    let mut finished = self.active.remove(slot).expect("slot in bounds");
                    for ev in finished.staged.take_miss_log() {
                        self.heat.record_demand(ev.server as usize, 1);
                    }
                    completed.push(CompletedQuery {
                        seq: finished.seq,
                        outcome,
                        started_ns: finished.started_ns,
                        completed_ns: now_ns(),
                        trace: self.trace.enabled().then_some(finished.trace),
                    });
                    // Backfill the freed slot from the queue so the window
                    // stays full without waiting for the next step call.
                    self.admit_next(source, cache, &mut completed)?;
                }
            }
        }
        Ok(completed)
    }

    /// Ships the demand miss set plus its speculative tail as one frontier
    /// submission and parks it on `self.active[slot]`.
    fn submit(
        &mut self,
        source: &mut MultiplexedStorageSource,
        slot: usize,
        miss: Vec<NodeId>,
        spec: Vec<NodeId>,
    ) -> WireResult<()> {
        let pending = if spec.is_empty() {
            source.submit_frontier(&miss)?
        } else {
            let mut combined = miss.clone();
            combined.extend(&spec);
            source.submit_frontier(&combined)?
        };
        // Other queries' predictions must not re-request these bytes
        // while they travel.
        self.prefetch.demand_submitted(&miss);
        let active = &mut self.active[slot];
        active.pending = Some(pending);
        active.demand = miss;
        active.spec = spec;
        if self.trace.enabled() {
            active.fetch_started_ns = now_ns();
        }
        Ok(())
    }

    /// Starts the oldest queued query: runs its compute up to the first
    /// remote fetch (submitted immediately) and parks it in the active
    /// window, or records it as completed when it never needed the wire.
    /// Returns whether a query was admitted.
    fn admit_next(
        &mut self,
        source: &mut MultiplexedStorageSource,
        cache: &mut ProcessorCache,
        completed: &mut Vec<CompletedQuery>,
    ) -> WireResult<bool> {
        let Some((seq, query)) = self.queue.pop_front() else {
            return Ok(false);
        };
        let mut staged = StagedQuery::new(query);
        let started_ns = now_ns();
        let (step, spec) = {
            let mut store =
                CacheBackedStore::with_prefetch(&mut *source, cache, &mut self.prefetch);
            let step = staged.resume(&mut store, None);
            let spec = match &step {
                Step::Fetch(miss) => store.plan_speculative(staged.frontier(), miss),
                Step::Done(_) => Vec::new(),
            };
            (step, spec)
        };
        // The admission resume is level-0 compute (it precedes any fetch).
        let admit_compute_ns = if self.trace.enabled() {
            now_ns().saturating_sub(started_ns)
        } else {
            0
        };
        match step {
            Step::Fetch(miss) => {
                self.active.push_back(ActiveQuery {
                    seq,
                    staged,
                    pending: None,
                    demand: Vec::new(),
                    spec: Vec::new(),
                    started_ns,
                    fetch_started_ns: 0,
                    trace: QueryTrace {
                        compute_ns: admit_compute_ns,
                        ..QueryTrace::default()
                    },
                });
                let slot = self.active.len() - 1;
                self.submit(source, slot, miss, spec)?;
            }
            Step::Done(outcome) => {
                for ev in staged.take_miss_log() {
                    self.heat.record_demand(ev.server as usize, 1);
                }
                completed.push(CompletedQuery {
                    seq,
                    outcome,
                    started_ns,
                    completed_ns: now_ns(),
                    trace: self.trace.enabled().then(|| QueryTrace {
                        compute_ns: admit_compute_ns,
                        ..QueryTrace::default()
                    }),
                });
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::StorageService;
    use crate::transport::{InProcTransport, Transport};
    use grouting_cache::LruCache;
    use grouting_engine::Worker;
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;
    use grouting_query::PrefetchPolicy;
    use grouting_storage::{NetworkModel, StorageTier};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loaded_tier(nodes: u32, servers: usize) -> Arc<StorageTier> {
        let mut b = GraphBuilder::new();
        for i in 0..nodes {
            b.add_edge(n(i), n((i + 1) % nodes));
            b.add_edge(n(i), n((i + 3) % nodes));
        }
        let g = b.build().unwrap();
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn queries(nodes: u32, count: u32) -> Vec<Query> {
        (0..count)
            .map(|i| match i % 4 {
                3 => Query::RandomWalk {
                    node: n((i * 5) % nodes),
                    steps: 6,
                    restart_prob: 0.2,
                    seed: u64::from(i),
                },
                _ => Query::NeighborAggregation {
                    node: n((i * 7) % nodes),
                    hops: 2,
                    label: None,
                },
            })
            .collect()
    }

    /// Runs `queries` through a pipeline at `overlap` against wire-backed
    /// storage, returning (seq → outcome) in completion order.
    fn run_pipeline(overlap: usize, queries: &[Query]) -> Vec<(u64, ExecOutcome)> {
        run_pipeline_with(overlap, queries, PrefetchConfig::OFF, || {
            Box::new(LruCache::new(1 << 20))
        })
        .0
    }

    /// Like [`run_pipeline`], with a prefetch configuration and a custom
    /// cache; also returns the pipeline's speculative tally and heat map.
    fn run_pipeline_with(
        overlap: usize,
        queries: &[Query],
        prefetch: PrefetchConfig,
        make_cache: impl Fn() -> ProcessorCache,
    ) -> (Vec<(u64, ExecOutcome)>, PrefetchStats, HeatMap) {
        let tier = loaded_tier(48, 3);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let handles: Vec<_> = (0..tier.server_count())
            .map(|_| {
                StorageService::spawn(
                    Arc::clone(&transport),
                    Arc::clone(&tier),
                    NetworkModel::local(),
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        let mut source =
            MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
        let mut cache: ProcessorCache = make_cache();
        let mut pipeline = QueryPipeline::new(overlap).with_prefetch(prefetch);
        for (seq, q) in queries.iter().enumerate() {
            pipeline.push(seq as u64, *q);
        }
        let mut out = Vec::new();
        while !pipeline.is_idle() {
            for c in pipeline.step(&mut source, &mut cache).unwrap() {
                assert!(c.completed_ns >= c.started_ns);
                assert!(c.trace.is_none(), "untraced pipeline produced a trace");
                out.push((c.seq, c.outcome));
            }
            std::thread::yield_now();
        }
        let stats = pipeline.prefetch_stats();
        let heat = pipeline.heat().clone();
        drop(source);
        for h in handles {
            h.shutdown();
        }
        (out, stats, heat)
    }

    /// The serial reference: the same queries through an engine worker
    /// whose source is the tier itself.
    fn run_serial(queries: &[Query]) -> Vec<ExecOutcome> {
        run_serial_with(queries, Box::new(LruCache::new(1 << 20)))
    }

    fn run_serial_with(queries: &[Query], cache: ProcessorCache) -> Vec<ExecOutcome> {
        let tier = loaded_tier(48, 3);
        let mut worker = Worker::from_parts(0, Box::new(Arc::clone(&tier)), cache);
        queries.iter().map(|q| worker.run(q).0).collect()
    }

    #[test]
    fn overlap1_is_byte_identical_to_the_serial_worker() {
        let q = queries(48, 24);
        let serial = run_serial(&q);
        let piped = run_pipeline(1, &q);
        assert_eq!(piped.len(), q.len());
        for (i, (seq, outcome)) in piped.iter().enumerate() {
            // overlap=1 completes strictly in dispatch order.
            assert_eq!(*seq as usize, i);
            assert_eq!(outcome.result, serial[i].result, "seq {seq}");
            assert_eq!(outcome.stats, serial[i].stats, "seq {seq}");
        }
    }

    #[test]
    fn overlap2_answers_identically_and_conserves_totals() {
        let q = queries(48, 30);
        let serial = run_serial(&q);
        let piped = run_pipeline(2, &q);
        assert_eq!(piped.len(), q.len());
        let mut by_seq: Vec<Option<&ExecOutcome>> = vec![None; q.len()];
        for (seq, outcome) in &piped {
            assert!(by_seq[*seq as usize].is_none(), "duplicate completion");
            by_seq[*seq as usize] = Some(outcome);
        }
        let mut piped_accesses = 0u64;
        let mut serial_accesses = 0u64;
        for (i, slot) in by_seq.iter().enumerate() {
            let outcome = slot.expect("every query completes");
            assert_eq!(outcome.result, serial[i].result, "seq {i}");
            piped_accesses += outcome.stats.accesses();
            serial_accesses += serial[i].stats.accesses();
        }
        // Interleaving may shift which query pays a miss, but the total
        // number of record accesses is workload-determined.
        assert_eq!(piped_accesses, serial_accesses);
    }

    #[test]
    fn overlap4_handles_more_queries_than_slots() {
        let q = queries(48, 9);
        let piped = run_pipeline(4, &q);
        assert_eq!(piped.len(), q.len());
    }

    #[test]
    fn zero_overlap_is_clamped_to_serial() {
        assert_eq!(QueryPipeline::new(0).overlap, 1);
    }

    #[test]
    fn prefetching_pipeline_is_demand_identical_to_serial_worker() {
        // The pipeline's speculative piggyback over the real wire source:
        // at overlap 1 every demand-side number — answers, hits, misses,
        // bytes — must match the serial no-prefetch worker exactly, for
        // both policies.
        let q = queries(48, 24);
        let serial = run_serial(&q);
        for policy in [PrefetchPolicy::Degree, PrefetchPolicy::Hotspot] {
            let (piped, _, _) =
                run_pipeline_with(1, &q, PrefetchConfig::with_policy(policy), || {
                    Box::new(LruCache::new(1 << 20))
                });
            assert_eq!(piped.len(), q.len());
            for (i, (seq, outcome)) in piped.iter().enumerate() {
                assert_eq!(*seq as usize, i, "{policy}: overlap 1 is in order");
                assert_eq!(outcome.result, serial[i].result, "{policy} seq {seq}");
                assert_eq!(outcome.stats, serial[i].stats, "{policy} seq {seq}");
            }
        }
    }

    #[test]
    fn traced_spans_fit_inside_the_wall_clock() {
        // At TraceLevel::Spans every completion carries a QueryTrace whose
        // fetch-wait + compute intervals are disjoint sub-spans of the
        // query's execution, so their sum can never exceed the wall time —
        // and the per-level pairs must account exactly for the totals
        // beyond the admission compute.
        let q = queries(48, 16);
        let tier = loaded_tier(48, 3);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let handles: Vec<_> = (0..tier.server_count())
            .map(|_| {
                StorageService::spawn(
                    Arc::clone(&transport),
                    Arc::clone(&tier),
                    NetworkModel::local(),
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
        let mut source =
            MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
        let mut cache: ProcessorCache = Box::new(LruCache::new(1 << 20));
        let mut pipeline = QueryPipeline::new(3);
        pipeline.set_trace(grouting_trace::TraceLevel::Spans);
        for (seq, query) in q.iter().enumerate() {
            pipeline.push(seq as u64, *query);
        }
        let mut done = 0usize;
        let mut crossed_levels = false;
        while !pipeline.is_idle() {
            for c in pipeline.step(&mut source, &mut cache).unwrap() {
                let trace = c.trace.expect("traced pipeline must produce spans");
                let wall = c.completed_ns - c.started_ns;
                assert!(
                    trace.fetch_wait_ns + trace.compute_ns <= wall,
                    "seq {}: fetch {} + compute {} > wall {wall}",
                    c.seq,
                    trace.fetch_wait_ns,
                    trace.compute_ns
                );
                assert_eq!(trace.level_spans.len(), trace.levels as usize);
                let span_fetch: u64 = trace.level_spans.iter().map(|&(f, _)| f).sum();
                assert_eq!(span_fetch, trace.fetch_wait_ns);
                let span_compute: u64 = trace.level_spans.iter().map(|&(_, c)| c).sum();
                assert!(span_compute <= trace.compute_ns);
                crossed_levels |= trace.levels > 0;
                done += 1;
            }
            std::thread::yield_now();
        }
        assert_eq!(done, q.len());
        assert!(crossed_levels, "2-hop queries over the wire must fetch");
        drop(source);
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn hotspot_prefetch_stages_repeat_traffic_over_the_wire() {
        // A cache that retains nothing forces every access over the wire;
        // the history predictor stages the hot region so repeat queries
        // are served from the buffer — visible as a live speculative
        // tally, with answers still identical to the serial worker.
        let q: Vec<Query> = (0..10u32)
            .map(|i| Query::NeighborAggregation {
                node: n(i % 3),
                hops: 2,
                label: None,
            })
            .collect();
        let serial = run_serial_with(&q, Box::new(grouting_cache::NullCache::new()));
        let (piped, stats, heat) = run_pipeline_with(
            1,
            &q,
            PrefetchConfig::with_policy(PrefetchPolicy::Hotspot),
            || Box::new(grouting_cache::NullCache::new()),
        );
        for (i, (_, outcome)) in piped.iter().enumerate() {
            assert_eq!(outcome.result, serial[i].result, "seq {i}");
            assert_eq!(outcome.stats, serial[i].stats, "seq {i}");
        }
        assert!(stats.issued > 0, "speculation must fire");
        assert!(stats.hits > 0, "repeat frontiers must be served from stage");
        // Heat mirrors the accounting exactly: one demand count per miss
        // event, one speculative count per staged payload.
        let serial_misses: u64 = serial.iter().map(|o| o.stats.cache_misses).sum();
        assert_eq!(heat.total_demand(), serial_misses);
        assert!(
            heat.total_speculative() > 0,
            "staged payloads must register"
        );
        assert!(heat.total_speculative() <= stats.issued);
    }

    #[test]
    fn pipeline_heat_tracks_demand_misses_per_server() {
        let q = queries(48, 24);
        let serial = run_serial(&q);
        let (_, _, heat) = run_pipeline_with(2, &q, PrefetchConfig::OFF, || {
            Box::new(LruCache::new(1 << 20))
        });
        let serial_misses: u64 = serial.iter().map(|o| o.stats.cache_misses).sum();
        assert_eq!(heat.total_demand(), serial_misses);
        assert_eq!(heat.total_speculative(), 0, "no speculation configured");
        assert!(heat.len() <= 3, "only three storage servers exist");
    }
}
