//! Service loops exposing the engine's tiers as wire endpoints.
//!
//! Three services turn the in-process cluster into independently runnable
//! peers, one per tier of the paper's Figure 2 — each driven by ONE
//! readiness [`Reactor`] thread multiplexing all of that node's framed
//! connections, rather than a thread per connection:
//!
//! * [`StorageService`] — wraps a [`StorageTier`] handle and answers
//!   [`Frame::FetchRequest`]s and [`Frame::FetchBatchRequest`]s from every
//!   inbound connection through one poll loop, with an optional
//!   [`NetworkModel`] delay charged per exchange (the `gRouting-E`
//!   emulation knob);
//! * [`ProcessorService`] — a query processor. In [`FetchMode::Scalar`] it
//!   runs the classic blocking loop: an engine [`Worker`] over a
//!   [`RemoteStorageSource`] (pooled connections, one round trip per
//!   node), one query at a time. In [`FetchMode::Batched`] it polls its
//!   router connection and drives a [`QueryPipeline`] over a
//!   [`MultiplexedStorageSource`]: up to [`EngineConfig::overlap`]
//!   dispatched queries in flight, one query's frontier batch travelling
//!   while another's compute stage runs;
//! * [`run_router`] — the router node: accepts client and processor
//!   connections on its reactor, drives the shared [`Engine`] (admission
//!   window, strategy, queues, stealing), dispatches up to `overlap`
//!   queries ahead of acknowledgements per processor, stamps arrivals,
//!   forwards completions, masks mid-run processor deaths (mark-down +
//!   resubmission of every outstanding dispatch), re-admits restarted
//!   processors that re-dial with their old id (mark-up), answers mid-run
//!   [`Frame::MetricsRequest`]s, and emits the final [`RunSnapshot`].
//!
//! All three speak only [`Frame`]s over [`Transport`] connections, so the
//! same loops run over TCP loopback and the hermetic in-proc fabric.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use grouting_embed::landmarks::Landmarks;
use grouting_engine::{Engine, EngineAssets, EngineConfig, Worker};
use grouting_graph::NodeId;
use grouting_metrics::timeline::QueryRecord;
use grouting_metrics::{set_node_role, DecayingHeat, FailoverStats, HeatMap, RunSnapshot};
use grouting_obs::{NodeObs, NodeRole, ObsConfig};
use grouting_partition::Partitioner;
use grouting_query::{BatchSource, RecordSource};
use grouting_storage::{NetworkModel, StorageTier};
use grouting_trace::{
    span_ring_from_env, QuerySpan, QueryTrace, SpanRing, Stage, StageStats, TelemetryCounters,
    TraceLevel, TraceSnapshot,
};

use crate::error::{WireError, WireResult};
use crate::flow::{BatchMux, FetchMode, MultiplexedStorageSource};
use crate::frame::{Completion, DispatchTrace, Frame, Role};
use crate::overlap::QueryPipeline;
use crate::reactor::{PollerKind, Reactor, ReactorEvent};
use crate::transport::{ConnectionPool, Listener, RetryPolicy, Transport};

/// How long an idle service loop parks on its readiness backend before
/// re-checking its stop flag (epoll wakes early on any traffic; the sweep
/// backend degrades to the yield/sleep ladder, which returns far sooner).
const SERVICE_IDLE_WAIT: std::time::Duration = std::time::Duration::from_millis(5);

/// Monotonic nanoseconds since a process-wide epoch, shared by every
/// service so lifecycle timestamps are comparable within one machine.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Handle to a spawned background service (storage).
pub struct ServiceHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The address peers dial to reach this service.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the reactor loop and joins the service thread. The loop
    /// checks the stop flag between poll sweeps, so no wake-up dial is
    /// needed.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = join.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

/// Storage-side knobs beyond the tier handle.
pub struct StorageOptions {
    /// Emulated per-fetch wire delay ([`NetworkModel::local`] charges
    /// nothing).
    pub net: NetworkModel,
    /// Readiness backend for the node's reactor.
    pub poller: PollerKind,
    /// Deployment-shared reactor telemetry.
    pub telemetry: Option<Arc<TelemetryCounters>>,
    /// Observability: sampler cadence, scrape endpoint, flight-recorder
    /// dump flag.
    pub obs: ObsConfig,
    /// Router address to push sampled registries to (observability only).
    /// The connection is dialled lazily on the first push and never says
    /// hello — the router absorbs `ObsPush` frames from any peer.
    pub push_addr: Option<String>,
    /// This storage server's id (observability labels and log prefixes).
    pub id: u16,
}

impl Default for StorageOptions {
    fn default() -> Self {
        Self {
            net: NetworkModel::local(),
            poller: PollerKind::from_env(),
            telemetry: None,
            obs: ObsConfig::disabled(),
            push_addr: None,
            id: 0,
        }
    }
}

/// A storage server endpoint serving adjacency fetches over the wire.
pub struct StorageService;

impl StorageService {
    /// Spawns a storage endpoint on `transport`, serving `tier` with an
    /// emulated per-fetch `net` delay ([`NetworkModel::local`] charges
    /// nothing). One reactor thread serves every inbound connection —
    /// O(1) threads per storage node regardless of how many processors
    /// dial it.
    ///
    /// Emulated delays model *wire latency*, not server occupancy:
    /// microsecond-scale delays (RDMA/Ethernet presets) are spun inline
    /// for accuracy, while delays of 100 µs and up park the finished
    /// response in a due-time queue and keep serving — so concurrent
    /// exchanges overlap their emulated flight time exactly as they would
    /// over a real remote wire, instead of queueing behind one another's
    /// sleeps.
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener.
    pub fn spawn(
        transport: Arc<dyn Transport>,
        tier: Arc<StorageTier>,
        net: NetworkModel,
    ) -> WireResult<ServiceHandle> {
        Self::spawn_with_poller(transport, tier, net, PollerKind::from_env())
    }

    /// Like [`StorageService::spawn`], on an explicitly chosen readiness
    /// backend instead of the `GROUTING_REACTOR` default.
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener.
    pub fn spawn_with_poller(
        transport: Arc<dyn Transport>,
        tier: Arc<StorageTier>,
        net: NetworkModel,
        poller: PollerKind,
    ) -> WireResult<ServiceHandle> {
        Self::spawn_full(transport, tier, net, poller, None)
    }

    /// Like [`StorageService::spawn_with_poller`], additionally wiring a
    /// deployment-shared [`TelemetryCounters`] into the node's reactor so
    /// its poll-loop and frame traffic show up in traced snapshots.
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener.
    pub fn spawn_full(
        transport: Arc<dyn Transport>,
        tier: Arc<StorageTier>,
        net: NetworkModel,
        poller: PollerKind,
        telemetry: Option<Arc<TelemetryCounters>>,
    ) -> WireResult<ServiceHandle> {
        let addr = transport.any_addr();
        Self::spawn_bound(transport, &addr, tier, net, poller, telemetry)
    }

    /// Like [`StorageService::spawn_full`], binding the listener at `addr`
    /// instead of an ephemeral address — the restart half of a
    /// kill/restart cycle, where peers must find the replacement at the
    /// address they already know. (TCP listeners bind with `SO_REUSEADDR`,
    /// so a restart does not wait out `TIME_WAIT`.)
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener at `addr`.
    pub fn spawn_bound(
        transport: Arc<dyn Transport>,
        addr: &str,
        tier: Arc<StorageTier>,
        net: NetworkModel,
        poller: PollerKind,
        telemetry: Option<Arc<TelemetryCounters>>,
    ) -> WireResult<ServiceHandle> {
        Self::spawn_opts(
            transport,
            addr,
            tier,
            StorageOptions {
                net,
                poller,
                telemetry,
                ..StorageOptions::default()
            },
        )
    }

    /// Like [`StorageService::spawn_bound`], taking the full
    /// [`StorageOptions`] set — including the observability bundle and the
    /// router address sampled registries are pushed to.
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener at `addr`.
    pub fn spawn_opts(
        transport: Arc<dyn Transport>,
        addr: &str,
        tier: Arc<StorageTier>,
        opts: StorageOptions,
    ) -> WireResult<ServiceHandle> {
        let listener = transport.listen(addr)?;
        let addr = listener.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_loop = Arc::clone(&stop);
        let StorageOptions {
            net,
            poller,
            telemetry,
            obs: obs_cfg,
            push_addr,
            id,
        } = opts;
        let join = std::thread::spawn(move || {
            set_node_role(format!("storage-{id}"));
            let mut reactor = Reactor::with_poller(listener, poller);
            if let Some(t) = &telemetry {
                reactor.set_telemetry(Arc::clone(t));
            }
            let mut obs = NodeObs::new(NodeRole::Storage, id, &obs_cfg);
            // Served-request tallies (cheap enough to count always; only
            // read while observability is on).
            let (mut fetches, mut batches, mut records) = (0u64, 0u64, 0u64);
            // The lazily dialled anonymous connection `ObsPush` frames ride.
            let mut push_conn = None;
            let mut events: Vec<ReactorEvent> = Vec::new();
            // Responses whose emulated flight time has not elapsed yet.
            // Arrival order, but due times are NOT monotone (the delay
            // depends on payload bytes), so delivery scans the whole
            // queue — a large response must not head-of-line-block a
            // small one behind it. Per-connection reordering is safe:
            // batch responses correlate by req_id, and the scalar pool
            // keeps one outstanding request per connection.
            let mut in_flight: VecDeque<DelayedResponse> = VecDeque::new();
            loop {
                if stop_loop.load(Ordering::SeqCst) {
                    break;
                }
                events.clear();
                if reactor.poll(&mut events).is_err() {
                    break;
                }
                let mut progressed = false;
                for event in events.drain(..) {
                    if let ReactorEvent::Frame(conn_id, frame) = event {
                        match &frame {
                            Frame::FetchRequest { .. } => {
                                fetches += 1;
                                records += 1;
                            }
                            Frame::FetchBatchRequest { nodes, .. } => {
                                batches += 1;
                                records += nodes.len() as u64;
                            }
                            _ => {}
                        }
                        serve_storage_frame(
                            &mut reactor,
                            conn_id,
                            frame,
                            &tier,
                            net,
                            &mut in_flight,
                        );
                        progressed = true;
                    }
                }
                // Deliver every response whose flight time has elapsed.
                let now = Instant::now();
                in_flight.retain(|response| {
                    if response.due > now {
                        return true;
                    }
                    progressed = true;
                    for frame in &response.frames {
                        if reactor.send(response.conn_id, frame).is_err() {
                            reactor.close(response.conn_id);
                            break;
                        }
                    }
                    false
                });
                if let Some(o) = obs.as_mut() {
                    let delayed = in_flight.len();
                    let now = now_ns();
                    o.maybe_sample(now, |r| {
                        r.counter("grouting_storage_fetches_total", fetches);
                        r.counter("grouting_storage_batches_total", batches);
                        r.counter("grouting_storage_records_total", records);
                        r.gauge("grouting_storage_delayed_responses", delayed as f64);
                        if let Some(t) = &telemetry {
                            r.absorb_reactor(&t.snapshot());
                        }
                    });
                    if let Some(snap) = o.take_push() {
                        if push_conn.is_none() {
                            push_conn = push_addr.as_deref().and_then(|a| transport.dial(a).ok());
                        }
                        if let Some(conn) = push_conn.as_mut() {
                            if conn.send(&Frame::ObsPush { snapshot: snap }).is_err() {
                                // The router is gone (run over, or mid
                                // fault); retry the dial on the next push.
                                push_conn = None;
                            }
                        }
                    }
                    o.poll_scrape(now);
                }
                if progressed {
                    reactor.note_progress();
                } else if in_flight.is_empty() {
                    // Nothing buffered, nothing due: park on the readiness
                    // backend until a request arrives (epoll wakes on the
                    // first byte; the stop flag is re-checked on return).
                    reactor.idle_wait(SERVICE_IDLE_WAIT);
                } else {
                    // Responses are due within the emulated RTT; yielding
                    // keeps due-time precision tight without burning the
                    // core an overlapping processor is computing on.
                    std::thread::yield_now();
                }
            }
            if let Some(o) = obs.as_ref() {
                o.teardown();
            }
        });
        Ok(ServiceHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// A finished response waiting out its emulated wire latency.
struct DelayedResponse {
    due: Instant,
    conn_id: u64,
    frames: Vec<Frame>,
}

/// Emulated delays at or above this park the response in the due-time
/// queue; shorter ones are spun inline (`thread::sleep`'s ~50 µs kernel
/// timer slack would swamp them, and at that scale the server is
/// occupied-by-the-exchange anyway).
const DELAY_QUEUE_THRESHOLD_NS: u64 = 100_000;

/// Answers one frame on the storage reactor; a peer that cannot be
/// answered (dead, or speaking the wrong protocol) is retired without
/// taking the node down.
fn serve_storage_frame(
    reactor: &mut Reactor,
    conn_id: u64,
    frame: Frame,
    tier: &StorageTier,
    net: NetworkModel,
    in_flight: &mut VecDeque<DelayedResponse>,
) {
    match frame {
        Frame::FetchRequest { node } => {
            let payload = tier.get(node).map(|(server, value)| (server as u16, value));
            let delay_ns = if net.is_free() {
                0
            } else {
                net.fetch_ns(payload.as_ref().map_or(0, |(_, v)| v.len()))
            };
            let response = Frame::FetchResponse { node, payload };
            if delay_ns >= DELAY_QUEUE_THRESHOLD_NS {
                in_flight.push_back(DelayedResponse {
                    due: Instant::now() + std::time::Duration::from_nanos(delay_ns),
                    conn_id,
                    frames: vec![response],
                });
                return;
            }
            spin_for_ns(delay_ns);
            if reactor.send(conn_id, &response).is_err() {
                reactor.close(conn_id);
            }
        }
        Frame::FetchBatchRequest { req_id, nodes, .. } => {
            let payloads: Vec<Option<(u16, bytes::Bytes)>> = tier
                .get_many(&nodes)
                .into_iter()
                .map(|p| p.map(|(server, value)| (server as u16, value)))
                .collect();
            // One modelled exchange for the whole batch — exactly the
            // RTT amortisation the batch path exists for.
            let delay_ns = if net.is_free() {
                0
            } else {
                let bytes: usize = payloads
                    .iter()
                    .map(|p| p.as_ref().map_or(0, |(_, v)| v.len()))
                    .sum();
                net.fetch_ns(bytes)
            };
            if delay_ns >= DELAY_QUEUE_THRESHOLD_NS {
                let mut frames = Vec::new();
                send_batch_response(
                    |f| {
                        frames.push(f.clone());
                        Ok(())
                    },
                    req_id,
                    payloads,
                )
                .expect("buffering frames cannot fail");
                in_flight.push_back(DelayedResponse {
                    due: Instant::now() + std::time::Duration::from_nanos(delay_ns),
                    conn_id,
                    frames,
                });
                return;
            }
            spin_for_ns(delay_ns);
            if send_batch_response(|f| reactor.send(conn_id, f), req_id, payloads).is_err() {
                reactor.close(conn_id);
            }
        }
        Frame::Shutdown => reactor.close(conn_id),
        _ => {
            // A storage server only understands fetches; answer the
            // confusion explicitly, then drop the peer.
            let _ = reactor.send(conn_id, &Frame::Shutdown);
            reactor.close(conn_id);
        }
    }
}

/// Soft byte budget per [`Frame::FetchBatchResponse`]: a batch whose
/// payloads sum past this is streamed as several frames under the same
/// `req_id` (the multiplexer reassembles by node count), keeping every
/// frame comfortably under [`crate::frame::MAX_FRAME_BYTES`] no matter how
/// large the requested frontier is. A *single* record larger than the
/// frame cap still cannot be shipped — the same limit the scalar path has
/// always had.
pub const BATCH_RESPONSE_SOFT_BYTES: usize = 8 << 20;

/// Per-payload framing overhead assumed by the response chunker (flag +
/// server id + length prefix, rounded up).
const PAYLOAD_OVERHEAD: usize = 8;

fn send_batch_response(
    mut send: impl FnMut(&Frame) -> WireResult<()>,
    req_id: u64,
    payloads: Vec<Option<(u16, Bytes)>>,
) -> WireResult<()> {
    let mut rest = payloads;
    loop {
        let mut bytes = 0usize;
        let mut take = 0usize;
        while take < rest.len() {
            let sz = rest[take].as_ref().map_or(0, |(_, v)| v.len()) + PAYLOAD_OVERHEAD;
            // Always ship at least one payload per frame, else an
            // oversized record would loop forever.
            if take > 0 && bytes + sz > BATCH_RESPONSE_SOFT_BYTES {
                break;
            }
            bytes += sz;
            take += 1;
        }
        let tail = rest.split_off(take);
        send(&Frame::FetchBatchResponse {
            req_id,
            payloads: rest,
        })?;
        if tail.is_empty() {
            return Ok(());
        }
        rest = tail;
    }
}

/// Busy-waits `ns` nanoseconds — the emulation is about *relative* cost,
/// and sleeping has far too coarse a floor for microsecond RTTs. Delays
/// large enough to matter go through the due-time queue instead (see
/// [`StorageService::spawn`]).
fn spin_for_ns(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

// ---------------------------------------------------------------------------
// Processor
// ---------------------------------------------------------------------------

/// A [`RecordSource`] that fetches adjacency records from remote storage
/// endpoints over pooled framed connections.
///
/// The placement function (the tier's partitioner) is stateless metadata
/// every processor knows — exactly how the paper's processors address
/// RAMCloud servers — so a fetch dials the owning endpoint directly.
pub struct RemoteStorageSource {
    partitioner: Arc<dyn Partitioner>,
    pools: Vec<ConnectionPool>,
    timer: Arc<FetchTimer>,
    /// Replica-chain length: endpoints `(home + k) % servers` for
    /// `k < replication` can all serve a node homed on `home`.
    replication: usize,
    /// Backoff ladder pacing the replica-chain walk after the active
    /// endpoint's own pool gives up.
    retry: RetryPolicy,
    /// Sticky chain offset per home server (`0` = primary). A chain walk
    /// that finds the primary answering again resets it.
    active: Vec<usize>,
    failover: Arc<FailoverCell>,
}

/// Shared failover tally for the scalar path (the same role
/// [`FetchTimer`] plays for fetch waits): the blocking worker owns its
/// boxed source, so the processor loop keeps this handle to stamp
/// cumulative recovery counters into every completion it sends.
///
/// `redials` counts chain-walk probe attempts, `replica_failovers`
/// recoveries that landed on a non-primary endpoint, and `resubmitted`
/// requests replayed on a different connection after a failure.
#[derive(Debug, Default)]
pub struct FailoverCell {
    redials: AtomicU64,
    replica_failovers: AtomicU64,
    resubmitted: AtomicU64,
}

impl FailoverCell {
    /// The counters as a [`FailoverStats`] value.
    pub fn snapshot(&self) -> FailoverStats {
        FailoverStats {
            redials: self.redials.load(Ordering::Relaxed),
            replica_failovers: self.replica_failovers.load(Ordering::Relaxed),
            batches_resubmitted: self.resubmitted.load(Ordering::Relaxed),
        }
    }
}

/// Shared fetch-wait accumulator for the scalar path: the blocking worker
/// owns its boxed source, so the processor loop keeps this handle to read
/// how much of each query's wall time went to storage round trips. Inert
/// (one relaxed load per fetch) until a traced dispatch enables it.
#[derive(Debug, Default)]
pub struct FetchTimer {
    enabled: AtomicBool,
    waited_ns: AtomicU64,
}

impl FetchTimer {
    /// Starts accumulating (idempotent).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Total nanoseconds spent inside fetch round trips since enabled.
    pub fn total_ns(&self) -> u64 {
        self.waited_ns.load(Ordering::Relaxed)
    }
}

impl RemoteStorageSource {
    /// A source fetching from `storage_addrs` (index = storage server id)
    /// with `partitioner` as the placement function.
    pub fn new(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        partitioner: Arc<dyn Partitioner>,
    ) -> Self {
        let pools: Vec<ConnectionPool> = storage_addrs
            .iter()
            .map(|a| ConnectionPool::new(Arc::clone(&transport), a.clone(), 2))
            .collect();
        let active = vec![0; pools.len()];
        Self {
            partitioner,
            pools,
            timer: Arc::new(FetchTimer::default()),
            replication: 1,
            retry: RetryPolicy::from_env(),
            active,
            failover: Arc::new(FailoverCell::default()),
        }
    }

    /// Serve fetches from a replica chain of this length (`1` = primary
    /// only; values are clamped to the server count at use). Mirrors
    /// [`MultiplexedStorageSource::with_replication`] on the batched path.
    #[must_use]
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Overrides the redial backoff ladder — both the chain walk's pacing
    /// and every per-endpoint pool's.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        for pool in &mut self.pools {
            pool.set_retry(retry);
        }
        self
    }

    /// Total reconnects across the per-server pools.
    pub fn reconnects(&self) -> u64 {
        self.pools.iter().map(ConnectionPool::reconnects).sum()
    }

    /// The source's fetch-wait timer (see [`FetchTimer`]).
    pub fn timer(&self) -> Arc<FetchTimer> {
        Arc::clone(&self.timer)
    }

    /// The source's shared failover tally (see [`FailoverCell`]).
    pub fn failover_cell(&self) -> Arc<FailoverCell> {
        Arc::clone(&self.failover)
    }

    /// Cumulative failover counters so far.
    pub fn failover_stats(&self) -> FailoverStats {
        self.failover.snapshot()
    }

    /// One unary exchange against `home`'s replica chain: the sticky
    /// active replica first (whose pool masks a plain restart with its
    /// own redial ladder), then — on persistent failure — a paced walk
    /// over the whole chain starting at the primary, so a restarted
    /// primary is recovered at the next failure event. The same ladder
    /// [`BatchMux`] runs on the batched path.
    fn request_chain(&mut self, home: usize, frame: &Frame) -> WireResult<Frame> {
        let servers = self.pools.len();
        let chain = self.replication.min(servers).max(1);
        let offset = self.active[home] % chain;
        let first = self.pools[(home + offset) % servers].request(frame);
        if first.is_ok() || chain == 1 {
            return first;
        }
        let mut last = first;
        for attempt in 0..self.retry.attempts {
            for k in 0..chain {
                let target = (home + k) % servers;
                self.failover.redials.fetch_add(1, Ordering::Relaxed);
                match self.pools[target].try_request(frame) {
                    Ok(reply) => {
                        self.active[home] = k;
                        if k != 0 {
                            self.failover
                                .replica_failovers
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        self.failover.resubmitted.fetch_add(1, Ordering::Relaxed);
                        return Ok(reply);
                    }
                    Err(e) => last = Err(e),
                }
            }
            if attempt + 1 < self.retry.attempts {
                std::thread::sleep(self.retry.delay(attempt, home as u64));
            }
        }
        last
    }
}

impl RecordSource for RemoteStorageSource {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        let home = self.partitioner.assign(node) % self.pools.len();
        let started = self
            .timer
            .enabled
            .load(Ordering::Relaxed)
            .then(Instant::now);
        let payload = match self.request_chain(home, &Frame::FetchRequest { node }) {
            Ok(Frame::FetchResponse { node: got, payload }) => {
                assert_eq!(got, node, "storage stream desynced");
                payload
            }
            Ok(other) => panic!("storage sent {} to a fetch", other.kind()),
            Err(e) => panic!("storage fetch failed on every replica: {e}"),
        };
        if let Some(started) = started {
            self.timer
                .waited_ns
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        payload
    }
}

/// The scalar wire path deliberately keeps the default per-node loop: one
/// blocking round trip per frontier node. [`MultiplexedStorageSource`] is
/// the batched alternative.
impl BatchSource for RemoteStorageSource {}

/// Processor-side knobs beyond the engine configuration.
pub struct ProcessorOptions {
    /// Readiness backend for the batched path's storage mux (the scalar
    /// path's blocking exchanges never poll).
    pub poller: PollerKind,
    /// Deployment-shared reactor telemetry (batched path only).
    pub telemetry: Option<Arc<TelemetryCounters>>,
    /// Replica-chain length for storage failover: a fetch its home
    /// endpoint cannot serve fails over to `(home + k) % servers` for
    /// `k < replication`. `1` = no replication — an endpoint death is
    /// fatal once the redial ladder is exhausted.
    pub replication: usize,
    /// Redial backoff ladder towards storage (`None` = `GROUTING_RETRY`
    /// or the built-in default).
    pub retry: Option<RetryPolicy>,
    /// External kill switch: when raised, the processor exits its loop as
    /// if it had crashed — its connections drop and the router masks the
    /// death. The scalar loop switches from blocking to polled receive to
    /// honour it; `None` keeps the classic blocking loop.
    pub stop: Option<Arc<AtomicBool>>,
    /// Re-join acknowledgement flag: when set, the processor sends a
    /// [`Frame::MetricsRequest`] right after its hello and raises the flag
    /// once the router's [`Frame::Metrics`] reply arrives. Frames on one
    /// connection are handled in order, so a raised flag proves the router
    /// has marked this processor up — chaos harnesses wait on it before
    /// submitting work a restarted processor must be in rotation for.
    pub ready: Option<Arc<AtomicBool>>,
    /// Observability: sampler cadence, scrape endpoint, flight-recorder
    /// dump flag. Sampled registries are pushed to the router as
    /// [`Frame::ObsPush`] on the existing router connection.
    pub obs: ObsConfig,
}

impl Default for ProcessorOptions {
    fn default() -> Self {
        Self {
            poller: PollerKind::from_env(),
            telemetry: None,
            replication: 1,
            retry: None,
            stop: None,
            ready: None,
            obs: ObsConfig::disabled(),
        }
    }
}

/// A query processor endpoint: executes dispatched queries against its
/// cache, missing to remote storage.
pub struct ProcessorService;

impl ProcessorService {
    /// Spawns processor `id`: dials the router and the storage endpoints,
    /// then serves dispatched queries until the router says
    /// [`Frame::Shutdown`].
    ///
    /// The cache is built exactly as the in-proc engine builds its own
    /// ([`EngineConfig::build_cache`]), with the miss path swapped for a
    /// wire-backed source. [`FetchMode::Scalar`] runs the classic
    /// ack-driven loop: one blocking query at a time over a
    /// [`RemoteStorageSource`] (one round trip per node).
    /// [`FetchMode::Batched`] polls the router connection and drives a
    /// [`QueryPipeline`] over a [`MultiplexedStorageSource`]: up to
    /// [`EngineConfig::overlap`] dispatched queries in flight, one query's
    /// frontier batch on the wire while another computes. At `overlap = 1`
    /// the pipeline replays byte-identical cache accounting to the serial
    /// paths, which is why wire runs agree with in-proc runs on every
    /// cache statistic in either fetch mode.
    pub fn spawn(
        transport: Arc<dyn Transport>,
        id: usize,
        router_addr: String,
        storage_addrs: Vec<String>,
        partitioner: Arc<dyn Partitioner>,
        config: EngineConfig,
        fetch: FetchMode,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        Self::spawn_with_poller(
            transport,
            id,
            router_addr,
            storage_addrs,
            partitioner,
            config,
            fetch,
            PollerKind::from_env(),
        )
    }

    /// Like [`ProcessorService::spawn`], on an explicitly chosen readiness
    /// backend instead of the `GROUTING_REACTOR` default. (The scalar
    /// path's blocking per-node exchanges never poll, so the choice only
    /// affects [`FetchMode::Batched`].)
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_poller(
        transport: Arc<dyn Transport>,
        id: usize,
        router_addr: String,
        storage_addrs: Vec<String>,
        partitioner: Arc<dyn Partitioner>,
        config: EngineConfig,
        fetch: FetchMode,
        poller: PollerKind,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        Self::spawn_full(
            transport,
            id,
            router_addr,
            storage_addrs,
            partitioner,
            config,
            fetch,
            poller,
            None,
        )
    }

    /// Like [`ProcessorService::spawn_with_poller`], additionally wiring a
    /// deployment-shared [`TelemetryCounters`] into the processor's batch
    /// mux (batch depth, buffer-pool reuse). The scalar path has no mux
    /// and ignores it.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_full(
        transport: Arc<dyn Transport>,
        id: usize,
        router_addr: String,
        storage_addrs: Vec<String>,
        partitioner: Arc<dyn Partitioner>,
        config: EngineConfig,
        fetch: FetchMode,
        poller: PollerKind,
        telemetry: Option<Arc<TelemetryCounters>>,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        Self::spawn_opts(
            transport,
            id,
            router_addr,
            storage_addrs,
            partitioner,
            config,
            fetch,
            ProcessorOptions {
                poller,
                telemetry,
                ..ProcessorOptions::default()
            },
        )
    }

    /// Like [`ProcessorService::spawn_full`], taking the full
    /// [`ProcessorOptions`] set — readiness backend, telemetry,
    /// replica-chain failover, retry policy, and an external kill switch
    /// for chaos harnesses.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_opts(
        transport: Arc<dyn Transport>,
        id: usize,
        router_addr: String,
        storage_addrs: Vec<String>,
        partitioner: Arc<dyn Partitioner>,
        config: EngineConfig,
        fetch: FetchMode,
        opts: ProcessorOptions,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        std::thread::spawn(move || match fetch {
            FetchMode::Scalar => run_processor_scalar(
                &transport,
                id,
                &router_addr,
                &storage_addrs,
                partitioner,
                &config,
                &opts,
            ),
            FetchMode::Batched => run_processor_overlapped(
                &transport,
                id,
                &router_addr,
                &storage_addrs,
                partitioner,
                &config,
                opts,
            ),
        })
    }
}

/// The classic blocking processor: ack-driven dispatch, one query at a
/// time, scalar per-node fetches.
fn run_processor_scalar(
    transport: &Arc<dyn Transport>,
    id: usize,
    router_addr: &str,
    storage_addrs: &[String],
    partitioner: Arc<dyn Partitioner>,
    config: &EngineConfig,
    opts: &ProcessorOptions,
) -> WireResult<()> {
    set_node_role(format!("proc-{id}"));
    let mut remote = RemoteStorageSource::new(Arc::clone(transport), storage_addrs, partitioner)
        .with_replication(opts.replication);
    if let Some(retry) = opts.retry {
        remote = remote.with_retry(retry);
    }
    let timer = remote.timer();
    let failover = remote.failover_cell();
    let source: Box<dyn BatchSource + Send> = Box::new(remote);
    let mut worker = Worker::from_parts(id, source, config.build_cache());
    let router = transport.dial(router_addr)?;
    let (mut sink, mut stream) = router.split();
    sink.send(&Frame::Hello {
        role: Role::Processor,
        id: id as u32,
    })?;
    if opts.ready.is_some() {
        sink.send(&Frame::MetricsRequest)?;
    }
    let mut obs = NodeObs::new(NodeRole::Processor, id as u16, &opts.obs);
    // Cumulative per-processor tallies: the per-partition heat rides every
    // completion (counted unconditionally, so frames are byte-identical
    // with sampling on or off); the cache totals feed the sampler only.
    let mut heat = HeatMap::new();
    let mut cum = grouting_query::AccessStats::default();
    let mut queries_done = 0u64;
    let outcome: WireResult<()> = loop {
        if opts
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
        {
            break Ok(());
        }
        // With a kill switch armed the loop polls so the switch is seen
        // between frames; without one it blocks exactly as before.
        let frame = if opts.stop.is_some() {
            match stream.try_recv() {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    continue;
                }
                Err(WireError::Closed) => break Ok(()),
                Err(e) => break Err(e),
            }
        } else {
            match stream.recv() {
                Ok(frame) => frame,
                Err(WireError::Closed) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        match frame {
            Frame::Dispatch { seq, query, trace } => {
                if trace.is_some() {
                    timer.enable();
                }
                let fetch_before = timer.total_ns();
                let started_ns = now_ns();
                let (out, miss_log) = worker.run(&query);
                let completed_ns = now_ns();
                for ev in &miss_log {
                    heat.record_demand(ev.server as usize, 1);
                }
                cum.cache_hits += out.stats.cache_hits;
                cum.cache_misses += out.stats.cache_misses;
                cum.evictions += out.stats.evictions;
                queries_done += 1;
                // The scalar loop has no per-level staging, so the trace
                // block splits the query's wall time into "inside a fetch
                // round trip" vs "everything else" with zero levels.
                let query_trace = trace.map(|_| {
                    let fetch_wait_ns = timer.total_ns().saturating_sub(fetch_before);
                    QueryTrace {
                        fetch_wait_ns,
                        compute_ns: completed_ns
                            .saturating_sub(started_ns)
                            .saturating_sub(fetch_wait_ns),
                        levels: 0,
                        level_spans: Vec::new(),
                    }
                });
                if let Err(e) = sink.send(&Frame::Completion(Completion {
                    seq,
                    processor: id as u32,
                    result: out.result,
                    stats: out.stats,
                    // The scalar path never speculates (piggybacking on
                    // per-node round trips would *add* RTTs).
                    prefetch: grouting_query::PrefetchStats::default(),
                    failover: failover.snapshot(),
                    arrived_ns: 0,
                    started_ns,
                    completed_ns,
                    heat: heat.clone(),
                    trace: query_trace,
                })) {
                    break Err(e);
                }
            }
            Frame::Metrics { .. } if opts.ready.is_some() => {
                if let Some(ready) = &opts.ready {
                    ready.store(true, Ordering::SeqCst);
                }
            }
            Frame::Shutdown => break Ok(()),
            other => {
                break Err(WireError::Protocol(format!(
                    "processor {id} got {}",
                    other.kind()
                )))
            }
        }
        if let Some(o) = obs.as_mut() {
            let now = now_ns();
            o.maybe_sample(now, |r| {
                r.counter("grouting_queries_total", queries_done);
                r.absorb_cache(cum.cache_hits, cum.cache_misses, cum.evictions);
                r.absorb_failover(&failover.snapshot());
                r.absorb_heat("partition", &heat);
            });
            if let Some(snap) = o.take_push() {
                if let Err(e) = sink.send(&Frame::ObsPush { snapshot: snap }) {
                    break Err(e);
                }
            }
            o.poll_scrape(now);
        }
    };
    if let Some(o) = obs.as_ref() {
        o.teardown();
    }
    outcome
}

/// The overlapped processor: polls the router connection for dispatches
/// (the router sends up to `overlap` ahead of acknowledgements) and
/// drives the [`QueryPipeline`], acknowledging completions as they land —
/// possibly out of dispatch order, which the router correlates by
/// sequence number.
#[allow(clippy::too_many_arguments)]
fn run_processor_overlapped(
    transport: &Arc<dyn Transport>,
    id: usize,
    router_addr: &str,
    storage_addrs: &[String],
    partitioner: Arc<dyn Partitioner>,
    config: &EngineConfig,
    opts: ProcessorOptions,
) -> WireResult<()> {
    set_node_role(format!("proc-{id}"));
    let mut source = MultiplexedStorageSource::with_poller(
        Arc::clone(transport),
        storage_addrs,
        partitioner,
        opts.poller,
    )
    .with_replication(opts.replication);
    if let Some(retry) = opts.retry {
        source = source.with_retry(retry);
    }
    let telemetry = opts.telemetry.clone();
    if let Some(t) = opts.telemetry {
        source.set_telemetry(t);
    }
    let mut cache = config.build_cache();
    let mut pipeline = QueryPipeline::new(config.overlap.max(1)).with_prefetch(config.prefetch);
    let router = transport.dial(router_addr)?;
    let (mut sink, mut stream) = router.split();
    // The router connection joins the storage connections on the source's
    // readiness backend, so an idle processor parks on ONE wait covering
    // dispatches and fetch replies alike.
    source.register_external(BatchMux::EXTERNAL_TOKEN_BASE, stream.raw_fd());
    sink.send(&Frame::Hello {
        role: Role::Processor,
        id: id as u32,
    })?;
    let ready = opts.ready.clone();
    if ready.is_some() {
        sink.send(&Frame::MetricsRequest)?;
    }
    let mut obs = NodeObs::new(NodeRole::Processor, id as u16, &opts.obs);
    let mut cum = grouting_query::AccessStats::default();
    let mut queries_done = 0u64;
    let outcome: WireResult<()> = 'run: loop {
        if opts
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
        {
            break Ok(());
        }
        let mut progressed = false;
        // Drain whatever the router has sent — every queued dispatch goes
        // into the pipeline before any compute runs, so fetch submission
        // happens as early as possible.
        loop {
            match stream.try_recv() {
                Ok(Some(Frame::Dispatch { seq, query, trace })) => {
                    if let Some(t) = trace {
                        pipeline.set_trace(t.level);
                    }
                    pipeline.push(seq, query);
                    progressed = true;
                }
                Ok(Some(Frame::Shutdown)) | Err(WireError::Closed) => break 'run Ok(()),
                Ok(Some(Frame::Metrics { .. })) if ready.is_some() => {
                    if let Some(r) = &ready {
                        r.store(true, Ordering::SeqCst);
                    }
                    progressed = true;
                }
                Ok(Some(other)) => {
                    break 'run Err(WireError::Protocol(format!(
                        "processor {id} got {}",
                        other.kind()
                    )))
                }
                Ok(None) => break,
                Err(e) => break 'run Err(e),
            }
        }
        let finished = match pipeline.step(&mut source, &mut cache) {
            Ok(finished) => finished,
            Err(e) => break Err(e),
        };
        for done in finished {
            cum.cache_hits += done.outcome.stats.cache_hits;
            cum.cache_misses += done.outcome.stats.cache_misses;
            cum.evictions += done.outcome.stats.evictions;
            queries_done += 1;
            if let Err(e) = sink.send(&Frame::Completion(Completion {
                seq: done.seq,
                processor: id as u32,
                result: done.outcome.result,
                stats: done.outcome.stats,
                // Cumulative per-processor speculation and recovery
                // tallies; the router keeps the latest per processor for
                // the run snapshot.
                prefetch: pipeline.prefetch_stats(),
                failover: source.failover_stats(),
                arrived_ns: 0,
                started_ns: done.started_ns,
                completed_ns: done.completed_ns,
                heat: pipeline.heat().clone(),
                trace: done.trace,
            })) {
                break 'run Err(e);
            }
            progressed = true;
        }
        if let Some(o) = obs.as_mut() {
            let now = now_ns();
            o.maybe_sample(now, |r| {
                r.counter("grouting_queries_total", queries_done);
                r.gauge("grouting_pipeline_in_flight", pipeline.in_flight() as f64);
                r.absorb_cache(cum.cache_hits, cum.cache_misses, cum.evictions);
                let pf = pipeline.prefetch_stats();
                r.absorb_prefetch(pf.issued, pf.hits, pf.wasted_bytes);
                r.absorb_failover(&source.failover_stats());
                r.absorb_heat("partition", pipeline.heat());
                if let Some(t) = &telemetry {
                    r.absorb_reactor(&t.snapshot());
                }
            });
            if let Some(snap) = o.take_push() {
                if let Err(e) = sink.send(&Frame::ObsPush { snapshot: snap }) {
                    break Err(e);
                }
            }
            o.poll_scrape(now);
        }
        if progressed {
            source.note_progress();
        } else {
            // No dispatch drained, no query finished: the router stream
            // and every awaited storage stream reported `WouldBlock`
            // (pipeline.step never parks runnable compute), so blocking
            // until one of those sockets has traffic is safe.
            source.idle_wait(SERVICE_IDLE_WAIT);
        }
    };
    if let Some(o) = obs.as_ref() {
        o.teardown();
    }
    outcome
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Router-loop behaviour knobs beyond the engine configuration.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Emit a [`Frame::Metrics`] snapshot to the client every this many
    /// completions (`0` = only the final snapshot). Mid-run snapshots feed
    /// live dashboards without waiting for the workload to drain.
    pub snapshot_every: u64,
    /// Readiness backend for the router's reactor.
    pub poller: PollerKind,
    /// Trace level for the run. At [`TraceLevel::Off`] no frame carries a
    /// trace block and every emitted byte is identical to an untraced
    /// deployment; `stats` aggregates per-stage histograms; `spans`
    /// additionally keeps a bounded ring of per-query spans.
    pub trace: TraceLevel,
    /// Deployment-shared reactor telemetry, folded into traced
    /// snapshots (and wired into the router's own reactor).
    pub telemetry: Option<Arc<TelemetryCounters>>,
    /// Observability: sampler cadence, the cluster-wide scrape endpoint
    /// (the router binds `GROUTING_METRICS_ADDR` itself and renders every
    /// pushed registry alongside its own), flight-recorder dump flag.
    pub obs: ObsConfig,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            snapshot_every: 0,
            poller: PollerKind::from_env(),
            trace: TraceLevel::Off,
            telemetry: None,
            obs: ObsConfig::disabled(),
        }
    }
}

/// Runs the router node over `listener` until the workload completes.
///
/// The router owns the same [`Engine`] the in-proc runtimes drive — the
/// strategy, the per-processor queues, admission windowing, stealing, and
/// completion accounting all run through identical code; only the job and
/// ack channels are replaced by framed connections, all multiplexed
/// through ONE [`Reactor`] poll loop — no acceptor thread, no
/// reader thread per peer. Returns the run's totals (also sent to the
/// client as a [`Frame::Metrics`]).
///
/// Protocol: processors connect and announce `Hello{Processor, id}`; one
/// client connects, announces `Hello{Client}`, streams `Submit`s, and ends
/// with `SubmitEnd`. The router keeps up to [`EngineConfig::overlap`]
/// dispatches in flight per processor (the classic ack-driven one-at-a-time
/// protocol is `overlap = 1`). When every submitted query has completed,
/// the router forwards the snapshot and `Shutdown` to the client, shuts
/// processors down, and returns. A [`Frame::MetricsRequest`] from any peer
/// is answered immediately with the *current* snapshot, and
/// [`RouterOptions::snapshot_every`] streams periodic snapshots to the
/// client unprompted.
///
/// Fault masking and re-join: a processor that disconnects mid-run is
/// marked down in the routing engine ([`Engine::mark_down`]), its queued
/// work is redistributed through the strategy, and every outstanding
/// dispatched query is resubmitted under its original sequence number —
/// the run continues on the surviving processors. A restarted processor
/// re-dialling with its old id is marked up again ([`Engine::mark_up`])
/// and re-enters rotation. Losing the client, or the *last* processor, is
/// still fatal.
///
/// # Errors
///
/// Fails on transport errors towards the client, a premature client
/// disconnect, the death of every processor, or protocol violations.
///
/// # Panics
///
/// Panics if `config` requests a smart routing scheme but `assets` lacks
/// the matching preprocessing product (same contract as [`Engine::new`]).
pub fn run_router(
    listener: Box<dyn Listener>,
    assets: &EngineAssets,
    config: &EngineConfig,
    opts: &RouterOptions,
) -> WireResult<RunSnapshot> {
    set_node_role("router");
    let p = config.processors;
    let overlap = config.overlap.max(1);
    // Router half only: the processors (and their caches) are remote.
    let mut engine = Engine::new_router_only(assets, config);
    let mut reactor = Reactor::with_poller(listener, opts.poller);
    if let Some(t) = &opts.telemetry {
        reactor.set_telemetry(Arc::clone(t));
    }
    let trace = opts.trace;
    let mut obs = NodeObs::new(NodeRole::Router, 0, &opts.obs);
    // Exponentially decayed heat views (the "recent demand" the scrape
    // exposes next to the cumulative counters).
    let mut decayed_partition = DecayingHeat::new(HEAT_DECAY_TAU_NS);
    let mut decayed_region = DecayingHeat::new(HEAT_DECAY_TAU_NS);
    // Landmark set for region attribution (None without the asset).
    let landmarks = assets.landmarks.clone();

    // Router state: which connection is which peer.
    let mut processor_conn: Vec<Option<u64>> = vec![None; p];
    let mut in_flight: Vec<usize> = vec![0; p];
    // The dispatched-but-unacknowledged queries per processor (at most
    // `overlap`), kept so a dying processor's in-flight work can be
    // resubmitted.
    let mut outstanding: Vec<Vec<(u64, grouting_query::Query)>> = vec![Vec::new(); p];
    let mut ever_connected = 0usize;
    // Latest cumulative speculation tally per processor (completions carry
    // it); summed into every snapshot the router emits. A restarted
    // processor restarts its tally — the pre-death speculation is folded
    // into `prefetch_retired` when the death is noticed.
    let mut prefetch_live: Vec<grouting_query::PrefetchStats> =
        vec![grouting_query::PrefetchStats::default(); p];
    let mut prefetch_retired = grouting_query::PrefetchStats::default();
    // Same live/retired split for the processors' storage-failover
    // tallies (redials, replica failovers, resubmitted batches).
    let mut failover_live: Vec<FailoverStats> = vec![FailoverStats::default(); p];
    let mut failover_retired = FailoverStats::default();
    // Same live/retired split for the cumulative per-partition heat every
    // completion carries.
    let mut heat_live: Vec<HeatMap> = vec![HeatMap::new(); p];
    let mut heat_retired = HeatMap::new();
    // Router-local per-landmark-region heat: demand counted at dispatch
    // (anchor's nearest landmark), speculation via the per-completion
    // prefetch delta. Stays empty without a landmark asset.
    let mut region_heat = HeatMap::new();
    // Router-local: processor-death events whose outstanding dispatch
    // window was non-empty and got resubmitted wholesale.
    let mut windows_resubmitted = 0u64;
    let mut client_conn: Option<u64> = None;
    let mut backlog: VecDeque<(usize, grouting_query::Query)> = VecDeque::new();
    let mut arrivals: HashMap<u64, u64> = HashMap::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut submit_done = false;
    // Trace state (inert at TraceLevel::Off): per-stage histograms, the
    // recent-span ring, and per-seq stamps bridging submit → dispatch →
    // completion. The stamp maps are bounded by the in-flight window,
    // like `arrivals`.
    let mut stages = StageStats::default();
    let mut spans = SpanRing::new(if trace.spans() {
        span_ring_from_env()
    } else {
        0
    });
    let mut trace_submitted: HashMap<u64, u64> = HashMap::new();
    let mut trace_dispatched: HashMap<u64, (u64, u64)> = HashMap::new();

    let result: WireResult<()> = (|| {
        let mut events: Vec<ReactorEvent> = Vec::new();
        loop {
            // Admission + dispatch between event batches.
            {
                let mut drain = std::iter::from_fn(|| backlog.pop_front());
                engine.admit(&mut drain, |seq| {
                    arrivals.insert(seq as u64, now_ns());
                });
            }
            // Synthetic deaths noticed at dispatch time (a send failing
            // before the reactor has polled the peer's closed stream).
            let mut deaths: Vec<u64> = Vec::new();
            for proc_id in 0..p {
                let Some(conn_id) = processor_conn[proc_id] else {
                    continue;
                };
                while in_flight[proc_id] < overlap {
                    let Some((seq, query)) = engine.next_for(proc_id) else {
                        break;
                    };
                    let dispatch_trace = trace.enabled().then(|| DispatchTrace {
                        level: trace,
                        dispatched_ns: now_ns(),
                    });
                    if reactor
                        .send(
                            conn_id,
                            &Frame::Dispatch {
                                seq,
                                query,
                                trace: dispatch_trace,
                            },
                        )
                        .is_err()
                    {
                        // The peer died between events; retire the
                        // connection and give the query back — the death
                        // handling below redistributes everything.
                        reactor.close(conn_id);
                        outstanding[proc_id].push((seq, query));
                        deaths.push(conn_id);
                        break;
                    }
                    if let Some(t) = dispatch_trace {
                        // Queue wait ends now; a resubmitted query (its
                        // first dispatchee died) restarts at zero.
                        let queue_ns = t.dispatched_ns.saturating_sub(
                            trace_submitted.remove(&seq).unwrap_or(t.dispatched_ns),
                        );
                        stages.record(Stage::RouterQueue, queue_ns);
                        trace_dispatched.insert(seq, (queue_ns, t.dispatched_ns));
                    }
                    // Region demand: one count per dispatch, against the
                    // anchor's nearest landmark (deterministic integer
                    // tally — sampling on or off never changes it).
                    if let Some(lm) = &landmarks {
                        if let Some(region) = nearest_region(lm, query.anchor()) {
                            region_heat.record_demand(region, 1);
                        }
                    }
                    in_flight[proc_id] += 1;
                    outstanding[proc_id].push((seq, query));
                }
            }

            // Finished? Everything submitted is done and no more will come.
            if submit_done && completed == submitted && backlog.is_empty() && engine.pending() == 0
            {
                break;
            }

            if let Some(o) = obs.as_mut() {
                let now = now_ns();
                o.maybe_sample(now, |r| {
                    let snap = snapshot_with_recovery(
                        &engine,
                        &prefetch_live,
                        &prefetch_retired,
                        &failover_live,
                        &failover_retired,
                        &heat_live,
                        &heat_retired,
                        &region_heat,
                        windows_resubmitted,
                    );
                    fill_router_registry(r, &snap, completed, submitted);
                    if trace.enabled() {
                        r.absorb_stages(&stages);
                    }
                    if let Some(t) = &opts.telemetry {
                        r.absorb_reactor(&t.snapshot());
                    }
                    decayed_partition.observe(now, &snap.partition_heat);
                    decayed_region.observe(now, &snap.region_heat);
                    r.absorb_decayed_heat("partition", &decayed_partition);
                    r.absorb_decayed_heat("region", &decayed_region);
                });
                o.poll_scrape(now);
            }
            events.clear();
            if deaths.is_empty() {
                if obs.is_some() {
                    // Bounded park so the sampler and the scrape endpoint
                    // keep running while the cluster idles between frames.
                    reactor.wait_timeout(&mut events, &|| true, SERVICE_IDLE_WAIT)?;
                } else {
                    reactor.wait(&mut events, &|| false)?;
                }
            }
            for conn_id in deaths {
                events.push(ReactorEvent::Closed(conn_id));
            }
            for event in events.drain(..) {
                match event {
                    ReactorEvent::Opened(_) => {}
                    ReactorEvent::Frame(conn_id, frame) => match frame {
                        Frame::Hello {
                            role: Role::Processor,
                            id,
                        } => {
                            let id = id as usize;
                            if id >= p {
                                return Err(WireError::Protocol(format!(
                                    "processor id {id} out of range (P = {p})"
                                )));
                            }
                            if processor_conn[id].is_some() {
                                return Err(WireError::Protocol(format!(
                                    "processor id {id} connected twice"
                                )));
                            }
                            processor_conn[id] = Some(conn_id);
                            in_flight[id] = 0;
                            // Re-join: a restarted processor re-dialling
                            // with its old id goes back into rotation (a
                            // no-op on the first connect).
                            engine.mark_up(id);
                            ever_connected += 1;
                        }
                        Frame::Hello {
                            role: Role::Client, ..
                        } => client_conn = Some(conn_id),
                        Frame::Submit {
                            seq,
                            query,
                            submitted_ns,
                        } => {
                            if trace.enabled() {
                                // Queue wait starts at the client's own
                                // stamp when it traced the submit, else at
                                // router receipt.
                                trace_submitted.insert(seq, submitted_ns.unwrap_or_else(now_ns));
                            }
                            backlog.push_back((seq as usize, query));
                            submitted += 1;
                        }
                        Frame::SubmitEnd => submit_done = true,
                        Frame::Completion(mut completion) => {
                            let proc_id = completion.processor as usize;
                            // `remove`, not `get`: each seq completes
                            // exactly once, so this bounds the map at the
                            // admission window instead of the whole
                            // workload.
                            completion.arrived_ns = arrivals.remove(&completion.seq).unwrap_or(0);
                            if trace.enabled() {
                                let received_ns = now_ns();
                                if let Some((queue_ns, dispatched_ns)) =
                                    trace_dispatched.remove(&completion.seq)
                                {
                                    let rtt_ns = received_ns.saturating_sub(dispatched_ns);
                                    stages.record(Stage::DispatchRtt, rtt_ns);
                                    if let Some(t) = &completion.trace {
                                        stages.record(Stage::FetchWait, t.fetch_wait_ns);
                                        stages.record(Stage::Compute, t.compute_ns);
                                    }
                                    if trace.spans() {
                                        spans.push(QuerySpan {
                                            seq: completion.seq,
                                            processor: completion.processor,
                                            levels: completion
                                                .trace
                                                .as_ref()
                                                .map_or(0, |t| t.levels),
                                            queue_ns,
                                            rtt_ns,
                                            fetch_wait_ns: completion
                                                .trace
                                                .as_ref()
                                                .map_or(0, |t| t.fetch_wait_ns),
                                            compute_ns: completion
                                                .trace
                                                .as_ref()
                                                .map_or(0, |t| t.compute_ns),
                                            // Router-side estimate: stamp →
                                            // arrival here. The client
                                            // measures the full completion
                                            // stage for the histogram.
                                            completion_ns: received_ns
                                                .saturating_sub(completion.completed_ns),
                                        });
                                    }
                                }
                            }
                            engine.complete(
                                QueryRecord {
                                    seq: completion.seq,
                                    arrived: completion.arrived_ns,
                                    started: completion.started_ns,
                                    completed: completion.completed_ns,
                                    processor: proc_id,
                                },
                                &completion.stats,
                            );
                            completed += 1;
                            if proc_id < p {
                                // Region speculation: the prefetch tally is
                                // cumulative, so this completion's newly
                                // issued speculative fetches are the delta
                                // against the processor's previous report,
                                // attributed to the completing query's
                                // anchor region.
                                if let Some(lm) = &landmarks {
                                    let delta = completion
                                        .prefetch
                                        .issued
                                        .saturating_sub(prefetch_live[proc_id].issued);
                                    if delta > 0 {
                                        if let Some(&(_, query)) = outstanding[proc_id]
                                            .iter()
                                            .find(|&&(s, _)| s == completion.seq)
                                        {
                                            if let Some(region) = nearest_region(lm, query.anchor())
                                            {
                                                region_heat.record_speculative(region, delta);
                                            }
                                        }
                                    }
                                }
                                heat_live[proc_id] = completion.heat.clone();
                                prefetch_live[proc_id] = completion.prefetch;
                                failover_live[proc_id] = completion.failover;
                                in_flight[proc_id] = in_flight[proc_id].saturating_sub(1);
                                // Out-of-order acknowledgement is legal
                                // under overlap; correlate by seq.
                                if let Some(pos) = outstanding[proc_id]
                                    .iter()
                                    .position(|&(s, _)| s == completion.seq)
                                {
                                    outstanding[proc_id].remove(pos);
                                }
                            }
                            if let Some(client) = client_conn {
                                reactor.send(client, &Frame::Completion(completion))?;
                                if opts.snapshot_every > 0
                                    && completed.is_multiple_of(opts.snapshot_every)
                                    && completed < submitted
                                {
                                    let snap = snapshot_with_recovery(
                                        &engine,
                                        &prefetch_live,
                                        &prefetch_retired,
                                        &failover_live,
                                        &failover_retired,
                                        &heat_live,
                                        &heat_retired,
                                        &region_heat,
                                        windows_resubmitted,
                                    );
                                    let snap_trace =
                                        trace_snapshot(trace, &stages, &spans, &opts.telemetry);
                                    reactor.send(
                                        client,
                                        &Frame::Metrics {
                                            snapshot: snap,
                                            trace: snap_trace,
                                        },
                                    )?;
                                }
                            }
                        }
                        Frame::MetricsRequest => {
                            // Any peer may sample the run mid-flight;
                            // answer with the totals accumulated so far (a
                            // requester that died in the meantime is
                            // handled by its own Closed event).
                            let snap = snapshot_with_recovery(
                                &engine,
                                &prefetch_live,
                                &prefetch_retired,
                                &failover_live,
                                &failover_retired,
                                &heat_live,
                                &heat_retired,
                                &region_heat,
                                windows_resubmitted,
                            );
                            let snap_trace =
                                trace_snapshot(trace, &stages, &spans, &opts.telemetry);
                            let _ = reactor.send(
                                conn_id,
                                &Frame::Metrics {
                                    snapshot: snap,
                                    trace: snap_trace,
                                },
                            );
                        }
                        Frame::ObsPush { snapshot } => {
                            // A processor or storage node pushed its sampled
                            // registry; fold it into the cluster-wide scrape.
                            // Tolerated (and dropped) with observability off,
                            // so mismatched configurations degrade softly.
                            if let Some(o) = obs.as_mut() {
                                o.absorb_push(snapshot);
                            }
                        }
                        Frame::Shutdown => {
                            // Any peer may abort the run (the harness uses
                            // this when its client fails before connecting
                            // properly).
                            return Err(WireError::Protocol(format!(
                                "run aborted by conn {conn_id}"
                            )));
                        }
                        other => {
                            return Err(WireError::Protocol(format!(
                                "router got {} from conn {conn_id}",
                                other.kind()
                            )))
                        }
                    },
                    ReactorEvent::Closed(conn_id) => {
                        // A registered peer dropped. Losing the client (the
                        // rest of the submissions and every result) is
                        // always fatal. A processor death is masked: the
                        // engine marks it down (redistributing its queued
                        // work through the strategy) and every outstanding
                        // dispatched query is resubmitted, so the run
                        // continues on the survivors — unless none remain.
                        // A stray dial or a peer that never said hello is
                        // ignorable.
                        if client_conn == Some(conn_id) {
                            return Err(WireError::Closed);
                        }
                        if let Some(proc_id) =
                            processor_conn.iter().position(|&c| c == Some(conn_id))
                        {
                            processor_conn[proc_id] = None;
                            in_flight[proc_id] = 0;
                            // A restarted processor reports a fresh tally;
                            // bank what the dead incarnation speculated.
                            prefetch_retired.merge(&prefetch_live[proc_id]);
                            prefetch_live[proc_id] = grouting_query::PrefetchStats::default();
                            failover_retired.merge(&failover_live[proc_id]);
                            failover_live[proc_id] = FailoverStats::default();
                            heat_retired.merge(&heat_live[proc_id]);
                            heat_live[proc_id] = HeatMap::new();
                            engine.mark_down(proc_id);
                            // A fault event dumps the flight recorder
                            // regardless of the teardown dump flag.
                            if let Some(o) = obs.as_ref() {
                                o.dump(&format!("processor {proc_id} died"));
                            }
                            if !outstanding[proc_id].is_empty() {
                                windows_resubmitted += 1;
                            }
                            for (seq, query) in outstanding[proc_id].drain(..) {
                                engine.resubmit(seq, query);
                            }
                            let unfinished =
                                !submit_done || completed < submitted || engine.pending() > 0;
                            if processor_conn.iter().all(Option::is_none) && unfinished {
                                return Err(WireError::Protocol(format!(
                                    "all {ever_connected} connected processor(s) died mid-run"
                                )));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    })();

    // Teardown: snapshot to the client, shutdown to everyone. Dropping the
    // reactor closes the listener and every connection.
    let snapshot = snapshot_with_recovery(
        &engine,
        &prefetch_live,
        &prefetch_retired,
        &failover_live,
        &failover_retired,
        &heat_live,
        &heat_retired,
        &region_heat,
        windows_resubmitted,
    );
    if let Some(o) = obs.as_ref() {
        o.teardown();
    }
    if let Some(client) = client_conn {
        let _ = reactor.send(
            client,
            &Frame::Metrics {
                snapshot: snapshot.clone(),
                trace: trace_snapshot(trace, &stages, &spans, &opts.telemetry),
            },
        );
        let _ = reactor.send(client, &Frame::Shutdown);
    }
    for conn_id in processor_conn.into_iter().flatten() {
        let _ = reactor.send(conn_id, &Frame::Shutdown);
    }

    result.map(|()| snapshot)
}

/// The trace layer's aggregate for a [`Frame::Metrics`]: `None` at
/// [`TraceLevel::Off`] so the frame stays byte-identical to an untraced
/// deployment.
fn trace_snapshot(
    level: TraceLevel,
    stages: &StageStats,
    spans: &SpanRing,
    telemetry: &Option<Arc<TelemetryCounters>>,
) -> Option<Box<TraceSnapshot>> {
    level.enabled().then(|| {
        Box::new(TraceSnapshot {
            level,
            stages: stages.clone(),
            reactor: telemetry.as_ref().map(|t| t.snapshot()).unwrap_or_default(),
            spans: spans.dump(),
            spans_dropped: spans.dropped(),
        })
    })
}

/// Exponential-decay time constant for the scrape's "recent heat" gauges
/// (~2 s half-life of relevance; cumulative counters sit next to them).
const HEAT_DECAY_TAU_NS: u64 = 2_000_000_000;

/// The landmark region a query anchored at `node` belongs to: the index
/// of the nearest landmark by hop distance, `None` when the node is
/// unreachable from every landmark (or out of range).
fn nearest_region(landmarks: &Landmarks, node: NodeId) -> Option<usize> {
    let idx = node.index();
    let mut best: Option<(u16, usize)> = None;
    for (region, dist) in landmarks.dist.iter().enumerate() {
        let d = *dist.get(idx)?;
        if d == grouting_embed::UNREACHED_U16 {
            continue;
        }
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, region));
        }
    }
    best.map(|(_, region)| region)
}

/// Populates the router's registry from a run snapshot — the single point
/// where engine accounting maps onto exposition series names.
fn fill_router_registry(
    r: &mut grouting_obs::Registry,
    snap: &RunSnapshot,
    completed: u64,
    submitted: u64,
) {
    r.counter("grouting_queries_total", snap.queries);
    r.gauge(
        "grouting_queries_in_flight",
        submitted.saturating_sub(completed) as f64,
    );
    r.counter("grouting_queries_stolen_total", snap.stolen);
    r.counter(
        "grouting_windows_resubmitted_total",
        snap.windows_resubmitted,
    );
    r.absorb_cache(snap.cache_hits, snap.cache_misses, snap.evictions);
    r.absorb_prefetch(
        snap.prefetch_issued,
        snap.prefetch_hits,
        snap.prefetch_wasted_bytes,
    );
    r.absorb_failover(&FailoverStats {
        redials: snap.redials,
        replica_failovers: snap.replica_failovers,
        batches_resubmitted: snap.batches_resubmitted,
    });
    for (id, served) in snap.per_processor.iter().enumerate() {
        let label = id.to_string();
        r.counter_with(
            "grouting_processor_served_total",
            &[("processor", &label)],
            *served,
        );
    }
    r.absorb_heat("partition", &snap.partition_heat);
    r.absorb_heat("region", &snap.region_heat);
}

/// The engine's current snapshot with the speculation and recovery
/// counters filled in: the live per-processor cumulative tallies plus
/// whatever dead processor incarnations banked before they went away,
/// and the router's own count of resubmitted dispatch windows.
#[allow(clippy::too_many_arguments)]
fn snapshot_with_recovery(
    engine: &Engine,
    prefetch_live: &[grouting_query::PrefetchStats],
    prefetch_retired: &grouting_query::PrefetchStats,
    failover_live: &[FailoverStats],
    failover_retired: &FailoverStats,
    heat_live: &[HeatMap],
    heat_retired: &HeatMap,
    region_heat: &HeatMap,
    windows_resubmitted: u64,
) -> RunSnapshot {
    let mut prefetch = *prefetch_retired;
    for stats in prefetch_live {
        prefetch.merge(stats);
    }
    let mut failover = *failover_retired;
    for stats in failover_live {
        failover.merge(stats);
    }
    let mut heat = heat_retired.clone();
    for h in heat_live {
        heat.merge(h);
    }
    let mut snapshot = engine.snapshot();
    snapshot.prefetch_issued = prefetch.issued;
    snapshot.prefetch_hits = prefetch.hits;
    snapshot.prefetch_wasted_bytes = prefetch.wasted_bytes;
    snapshot.redials = failover.redials;
    snapshot.replica_failovers = failover.replica_failovers;
    snapshot.batches_resubmitted = failover.batches_resubmitted;
    snapshot.windows_resubmitted = windows_resubmitted;
    snapshot.partition_heat = heat;
    snapshot.region_heat = region_heat.clone();
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;

    #[test]
    fn oversized_batch_responses_are_chunked_under_the_frame_cap() {
        let transport = InProcTransport::new();
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let mut sender = transport.dial(&listener.addr()).unwrap();
        let mut receiver = listener.accept().unwrap();

        // Five 3 MiB records: 15 MiB total against the 8 MiB soft budget
        // must stream as several frames that concatenate losslessly.
        let payloads: Vec<Option<(u16, Bytes)>> = (0..5u16)
            .map(|i| Some((i, Bytes::from(vec![i as u8; 3 << 20]))))
            .collect();
        let expected = payloads.clone();
        let writer = std::thread::spawn(move || {
            send_batch_response(|f| sender.send(f), 42, payloads).unwrap();
        });

        let mut frames = 0;
        let mut got: Vec<Option<(u16, Bytes)>> = Vec::new();
        while got.len() < expected.len() {
            match receiver.recv().unwrap() {
                Frame::FetchBatchResponse { req_id, payloads } => {
                    assert_eq!(req_id, 42);
                    frames += 1;
                    got.extend(payloads);
                }
                other => panic!("got {}", other.kind()),
            }
        }
        writer.join().unwrap();
        assert!(frames > 1, "15 MiB must not travel as one frame");
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_batch_response_still_sends_one_frame() {
        // The multiplexer treats "entry present" as "response began", so
        // even a zero-node batch must be answered with one (empty) frame.
        let transport = InProcTransport::new();
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let mut sender = transport.dial(&listener.addr()).unwrap();
        let mut receiver = listener.accept().unwrap();
        send_batch_response(|f| sender.send(f), 7, Vec::new()).unwrap();
        match receiver.recv().unwrap() {
            Frame::FetchBatchResponse { req_id, payloads } => {
                assert_eq!(req_id, 7);
                assert!(payloads.is_empty());
            }
            other => panic!("got {}", other.kind()),
        }
    }
}
