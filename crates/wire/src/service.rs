//! Service loops exposing the engine's tiers as wire endpoints.
//!
//! Three loops turn the in-process cluster into independently runnable
//! peers, one per tier of the paper's Figure 2:
//!
//! * [`StorageService`] — wraps a [`StorageTier`] handle and answers
//!   [`Frame::FetchRequest`]s and [`Frame::FetchBatchRequest`]s, one
//!   thread per inbound connection, with an optional [`NetworkModel`]
//!   delay charged per exchange (the `gRouting-E` emulation knob);
//! * [`ProcessorService`] — a query processor: an engine [`Worker`] whose
//!   miss path is a [`RemoteStorageSource`] (scalar: pooled connections,
//!   one round trip per node) or a
//!   [`MultiplexedStorageSource`] (batched: one pipelined frame per
//!   storage server per frontier), driven by ack-based dispatch from the
//!   router;
//! * [`run_router`] — the router node: accepts client and processor
//!   connections, drives the shared [`Engine`] (admission window,
//!   strategy, queues, stealing), stamps arrivals, forwards completions,
//!   masks mid-run processor deaths (mark-down + resubmission of the
//!   in-flight query), answers mid-run [`Frame::MetricsRequest`]s, and
//!   emits the final [`RunSnapshot`].
//!
//! All three speak only [`Frame`]s over [`Transport`] connections, so the
//! same loops run over TCP loopback and the hermetic in-proc fabric.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::unbounded;
use grouting_engine::{Engine, EngineAssets, EngineConfig, Worker};
use grouting_graph::NodeId;
use grouting_metrics::timeline::QueryRecord;
use grouting_metrics::RunSnapshot;
use grouting_partition::Partitioner;
use grouting_query::{BatchSource, RecordSource};
use grouting_storage::{NetworkModel, StorageTier};

use crate::error::{WireError, WireResult};
use crate::flow::{FetchMode, MultiplexedStorageSource};
use crate::frame::{Completion, Frame, Role};
use crate::transport::{ConnectionPool, FrameSink, Listener, Transport};

/// Monotonic nanoseconds since a process-wide epoch, shared by every
/// service so lifecycle timestamps are comparable within one machine.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Handle to a spawned background service (storage or router).
pub struct ServiceHandle {
    addr: String,
    stop: Arc<AtomicBool>,
    transport: Arc<dyn Transport>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServiceHandle {
    /// The address peers dial to reach this service.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the accept loop and joins the service thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock `accept` with one throwaway connection.
        let _ = self.transport.dial(&self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = self.transport.dial(&self.addr);
            let _ = join.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

/// A storage server endpoint serving adjacency fetches over the wire.
pub struct StorageService;

impl StorageService {
    /// Spawns a storage endpoint on `transport`, serving `tier` with an
    /// emulated per-fetch `net` delay ([`NetworkModel::local`] charges
    /// nothing). Each inbound connection gets its own serving thread.
    ///
    /// # Errors
    ///
    /// Fails when the transport cannot bind a listener.
    pub fn spawn(
        transport: Arc<dyn Transport>,
        tier: Arc<StorageTier>,
        net: NetworkModel,
    ) -> WireResult<ServiceHandle> {
        let mut listener = transport.listen(&transport.any_addr())?;
        let addr = listener.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while let Ok(conn) = listener.accept() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let tier = Arc::clone(&tier);
                std::thread::spawn(move || serve_storage_conn(conn, &tier, net));
            }
        });
        Ok(ServiceHandle {
            addr,
            stop,
            transport,
            join: Some(join),
        })
    }
}

fn serve_storage_conn(
    mut conn: crate::transport::Connection,
    tier: &StorageTier,
    net: NetworkModel,
) {
    loop {
        match conn.recv() {
            Ok(Frame::FetchRequest { node }) => {
                let payload = tier.get(node).map(|(server, value)| (server as u16, value));
                if !net.is_free() {
                    let bytes = payload.as_ref().map_or(0, |(_, v)| v.len());
                    spin_for_ns(net.fetch_ns(bytes));
                }
                if conn.send(&Frame::FetchResponse { node, payload }).is_err() {
                    break;
                }
            }
            Ok(Frame::FetchBatchRequest { req_id, nodes }) => {
                let payloads: Vec<Option<(u16, bytes::Bytes)>> = tier
                    .get_many(&nodes)
                    .into_iter()
                    .map(|p| p.map(|(server, value)| (server as u16, value)))
                    .collect();
                if !net.is_free() {
                    // One modelled exchange for the whole batch — exactly
                    // the RTT amortisation the batch path exists for.
                    let bytes: usize = payloads
                        .iter()
                        .map(|p| p.as_ref().map_or(0, |(_, v)| v.len()))
                        .sum();
                    spin_for_ns(net.fetch_ns(bytes));
                }
                if send_batch_response(&mut conn, req_id, payloads).is_err() {
                    break;
                }
            }
            Ok(Frame::Shutdown) | Err(_) => break,
            Ok(_) => {
                // A storage server only understands fetches; answer the
                // confusion explicitly, then drop the peer.
                let _ = conn.send(&Frame::Shutdown);
                break;
            }
        }
    }
}

/// Soft byte budget per [`Frame::FetchBatchResponse`]: a batch whose
/// payloads sum past this is streamed as several frames under the same
/// `req_id` (the multiplexer reassembles by node count), keeping every
/// frame comfortably under [`crate::frame::MAX_FRAME_BYTES`] no matter how
/// large the requested frontier is. A *single* record larger than the
/// frame cap still cannot be shipped — the same limit the scalar path has
/// always had.
pub const BATCH_RESPONSE_SOFT_BYTES: usize = 8 << 20;

/// Per-payload framing overhead assumed by the response chunker (flag +
/// server id + length prefix, rounded up).
const PAYLOAD_OVERHEAD: usize = 8;

fn send_batch_response(
    conn: &mut crate::transport::Connection,
    req_id: u64,
    payloads: Vec<Option<(u16, Bytes)>>,
) -> WireResult<()> {
    let mut rest = payloads;
    loop {
        let mut bytes = 0usize;
        let mut take = 0usize;
        while take < rest.len() {
            let sz = rest[take].as_ref().map_or(0, |(_, v)| v.len()) + PAYLOAD_OVERHEAD;
            // Always ship at least one payload per frame, else an
            // oversized record would loop forever.
            if take > 0 && bytes + sz > BATCH_RESPONSE_SOFT_BYTES {
                break;
            }
            bytes += sz;
            take += 1;
        }
        let tail = rest.split_off(take);
        conn.send(&Frame::FetchBatchResponse {
            req_id,
            payloads: rest,
        })?;
        if tail.is_empty() {
            return Ok(());
        }
        rest = tail;
    }
}

/// Busy-waits `ns` nanoseconds — the emulation is about *relative* cost,
/// and sleeping has far too coarse a floor for microsecond RTTs.
fn spin_for_ns(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

// ---------------------------------------------------------------------------
// Processor
// ---------------------------------------------------------------------------

/// A [`RecordSource`] that fetches adjacency records from remote storage
/// endpoints over pooled framed connections.
///
/// The placement function (the tier's partitioner) is stateless metadata
/// every processor knows — exactly how the paper's processors address
/// RAMCloud servers — so a fetch dials the owning endpoint directly.
pub struct RemoteStorageSource {
    partitioner: Arc<dyn Partitioner>,
    pools: Vec<ConnectionPool>,
}

impl RemoteStorageSource {
    /// A source fetching from `storage_addrs` (index = storage server id)
    /// with `partitioner` as the placement function.
    pub fn new(
        transport: Arc<dyn Transport>,
        storage_addrs: &[String],
        partitioner: Arc<dyn Partitioner>,
    ) -> Self {
        let pools = storage_addrs
            .iter()
            .map(|a| ConnectionPool::new(Arc::clone(&transport), a.clone(), 2))
            .collect();
        Self { partitioner, pools }
    }

    /// Total reconnects across the per-server pools.
    pub fn reconnects(&self) -> u64 {
        self.pools.iter().map(ConnectionPool::reconnects).sum()
    }
}

impl RecordSource for RemoteStorageSource {
    fn fetch_raw(&mut self, node: NodeId) -> Option<(u16, Bytes)> {
        let home = self.partitioner.assign(node) % self.pools.len();
        match self.pools[home].request(&Frame::FetchRequest { node }) {
            Ok(Frame::FetchResponse { node: got, payload }) => {
                assert_eq!(got, node, "storage stream desynced");
                payload
            }
            Ok(other) => panic!("storage sent {} to a fetch", other.kind()),
            Err(e) => panic!("storage fetch failed: {e}"),
        }
    }
}

/// The scalar wire path deliberately keeps the default per-node loop: one
/// blocking round trip per frontier node. [`MultiplexedStorageSource`] is
/// the batched alternative.
impl BatchSource for RemoteStorageSource {}

/// A query processor endpoint: executes dispatched queries against its
/// cache, missing to remote storage.
pub struct ProcessorService;

impl ProcessorService {
    /// Spawns processor `id`: dials the router and the storage endpoints,
    /// then serves ack-driven dispatch until the router says
    /// [`Frame::Shutdown`].
    ///
    /// The worker is built exactly as the in-proc engine builds its own
    /// ([`EngineConfig::build_cache`]), with the miss path swapped for a
    /// wire-backed source — [`RemoteStorageSource`] (one round trip per
    /// node) in [`FetchMode::Scalar`], the pipelined
    /// [`MultiplexedStorageSource`] in [`FetchMode::Batched`]. Both replay
    /// identical cache accounting, which is why wire runs agree with
    /// in-proc runs on every cache statistic in either mode.
    pub fn spawn(
        transport: Arc<dyn Transport>,
        id: usize,
        router_addr: String,
        storage_addrs: Vec<String>,
        partitioner: Arc<dyn Partitioner>,
        config: EngineConfig,
        fetch: FetchMode,
    ) -> std::thread::JoinHandle<WireResult<()>> {
        std::thread::spawn(move || {
            let source: Box<dyn BatchSource + Send> = match fetch {
                FetchMode::Scalar => Box::new(RemoteStorageSource::new(
                    Arc::clone(&transport),
                    &storage_addrs,
                    partitioner,
                )),
                FetchMode::Batched => Box::new(MultiplexedStorageSource::new(
                    Arc::clone(&transport),
                    &storage_addrs,
                    partitioner,
                )),
            };
            let mut worker = Worker::from_parts(id, source, config.build_cache());
            let mut router = transport.dial(&router_addr)?;
            router.send(&Frame::Hello {
                role: Role::Processor,
                id: id as u32,
            })?;
            loop {
                match router.recv() {
                    Ok(Frame::Dispatch { seq, query }) => {
                        let started_ns = now_ns();
                        let (out, _miss_log) = worker.run(&query);
                        let completed_ns = now_ns();
                        router.send(&Frame::Completion(Completion {
                            seq,
                            processor: id as u32,
                            result: out.result,
                            stats: out.stats,
                            arrived_ns: 0,
                            started_ns,
                            completed_ns,
                        }))?;
                    }
                    Ok(Frame::Shutdown) | Err(WireError::Closed) => return Ok(()),
                    Ok(other) => {
                        return Err(WireError::Protocol(format!(
                            "processor {id} got {}",
                            other.kind()
                        )))
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

enum RouterEvent {
    Connected(u64, Box<dyn FrameSink>),
    Frame(u64, WireResult<Frame>),
}

/// Router-loop behaviour knobs beyond the engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterOptions {
    /// Emit a [`Frame::Metrics`] snapshot to the client every this many
    /// completions (`0` = only the final snapshot). Mid-run snapshots feed
    /// live dashboards without waiting for the workload to drain.
    pub snapshot_every: u64,
}

/// Runs the router node over `listener` until the workload completes.
///
/// The router owns the same [`Engine`] the in-proc runtimes drive — the
/// strategy, the per-processor queues, admission windowing, stealing, and
/// completion accounting all run through identical code; only the job and
/// ack channels are replaced by framed connections. Returns the run's
/// totals (also sent to the client as a [`Frame::Metrics`]).
///
/// Protocol: processors connect and announce `Hello{Processor, id}`; one
/// client connects, announces `Hello{Client}`, streams `Submit`s, and ends
/// with `SubmitEnd`. When every submitted query has completed, the router
/// forwards the snapshot and `Shutdown` to the client, shuts processors
/// down, and returns. A [`Frame::MetricsRequest`] from any peer is
/// answered immediately with the *current* snapshot, and
/// [`RouterOptions::snapshot_every`] streams periodic snapshots to the
/// client unprompted.
///
/// Fault masking: a processor that disconnects mid-run is marked down in
/// the routing engine ([`Engine::mark_down`]), its queued work is
/// redistributed through the strategy, and its outstanding dispatched
/// query (if any) is resubmitted under its original sequence number — the
/// run continues on the surviving processors. Losing the client, or the
/// *last* processor, is still fatal.
///
/// # Errors
///
/// Fails on transport errors towards the client, a premature client
/// disconnect, the death of every processor, or protocol violations.
///
/// # Panics
///
/// Panics if `config` requests a smart routing scheme but `assets` lacks
/// the matching preprocessing product (same contract as [`Engine::new`]).
pub fn run_router(
    transport: Arc<dyn Transport>,
    mut listener: Box<dyn Listener>,
    assets: &EngineAssets,
    config: &EngineConfig,
    opts: &RouterOptions,
) -> WireResult<RunSnapshot> {
    let addr = listener.addr();
    let p = config.processors;
    // Router half only: the processors (and their caches) are remote.
    let mut engine = Engine::new_router_only(assets, config);

    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let (event_tx, event_rx) = unbounded::<RouterEvent>();
    let accept_tx = event_tx.clone();
    let acceptor = std::thread::spawn(move || {
        let mut next_conn = 0u64;
        while let Ok(conn) = listener.accept() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let conn_id = next_conn;
            next_conn += 1;
            let (sink, mut stream) = conn.split();
            if accept_tx
                .send(RouterEvent::Connected(conn_id, sink))
                .is_err()
            {
                break;
            }
            let reader_tx = accept_tx.clone();
            std::thread::spawn(move || loop {
                let frame = stream.recv();
                let done = frame.is_err();
                if reader_tx.send(RouterEvent::Frame(conn_id, frame)).is_err() || done {
                    break;
                }
            });
        }
    });
    drop(event_tx);

    // Router state: which connection is which peer.
    let mut sinks: HashMap<u64, Box<dyn FrameSink>> = HashMap::new();
    let mut processor_conn: Vec<Option<u64>> = vec![None; p];
    let mut idle: Vec<bool> = vec![false; p];
    // The one dispatched-but-unacknowledged query per processor, kept so a
    // dying processor's in-flight work can be resubmitted.
    let mut outstanding: Vec<Option<(u64, grouting_query::Query)>> = vec![None; p];
    let mut ever_connected = 0usize;
    let mut client_conn: Option<u64> = None;
    let mut backlog: VecDeque<(usize, grouting_query::Query)> = VecDeque::new();
    let mut arrivals: HashMap<u64, u64> = HashMap::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut submit_done = false;

    let result: WireResult<()> = (|| {
        loop {
            // Admission + dispatch between events.
            {
                let mut drain = std::iter::from_fn(|| backlog.pop_front());
                engine.admit(&mut drain, |seq| {
                    arrivals.insert(seq as u64, now_ns());
                });
            }
            for proc_id in 0..p {
                if !idle[proc_id] {
                    continue;
                }
                let Some(conn_id) = processor_conn[proc_id] else {
                    continue;
                };
                if let Some((seq, query)) = engine.next_for(proc_id) {
                    let sink = sinks.get_mut(&conn_id).expect("registered sink");
                    sink.send(&Frame::Dispatch { seq, query })?;
                    idle[proc_id] = false;
                    outstanding[proc_id] = Some((seq, query));
                }
            }

            // Finished? Everything submitted is done and no more will come.
            if submit_done && completed == submitted && backlog.is_empty() && engine.pending() == 0
            {
                break;
            }

            let Ok(event) = event_rx.recv() else {
                return Err(WireError::Closed);
            };
            match event {
                RouterEvent::Connected(conn_id, sink) => {
                    sinks.insert(conn_id, sink);
                }
                RouterEvent::Frame(conn_id, Ok(frame)) => match frame {
                    Frame::Hello {
                        role: Role::Processor,
                        id,
                    } => {
                        let id = id as usize;
                        if id >= p {
                            return Err(WireError::Protocol(format!(
                                "processor id {id} out of range (P = {p})"
                            )));
                        }
                        processor_conn[id] = Some(conn_id);
                        idle[id] = true;
                        ever_connected += 1;
                    }
                    Frame::Hello {
                        role: Role::Client, ..
                    } => client_conn = Some(conn_id),
                    Frame::Submit { seq, query } => {
                        backlog.push_back((seq as usize, query));
                        submitted += 1;
                    }
                    Frame::SubmitEnd => submit_done = true,
                    Frame::Completion(mut completion) => {
                        let proc_id = completion.processor as usize;
                        // `remove`, not `get`: each seq completes exactly
                        // once, so this bounds the map at the admission
                        // window instead of the whole workload.
                        completion.arrived_ns = arrivals.remove(&completion.seq).unwrap_or(0);
                        engine.complete(
                            QueryRecord {
                                seq: completion.seq,
                                arrived: completion.arrived_ns,
                                started: completion.started_ns,
                                completed: completion.completed_ns,
                                processor: proc_id,
                            },
                            &completion.stats,
                        );
                        completed += 1;
                        if proc_id < p {
                            idle[proc_id] = true;
                            outstanding[proc_id] = None;
                        }
                        if let Some(client) = client_conn {
                            if let Some(sink) = sinks.get_mut(&client) {
                                sink.send(&Frame::Completion(completion))?;
                                if opts.snapshot_every > 0
                                    && completed.is_multiple_of(opts.snapshot_every)
                                    && completed < submitted
                                {
                                    sink.send(&Frame::Metrics(engine.snapshot()))?;
                                }
                            }
                        }
                    }
                    Frame::MetricsRequest => {
                        // Any peer may sample the run mid-flight; answer
                        // with the totals accumulated so far.
                        if let Some(sink) = sinks.get_mut(&conn_id) {
                            sink.send(&Frame::Metrics(engine.snapshot()))?;
                        }
                    }
                    Frame::Shutdown => {
                        // Any peer may abort the run (the harness uses this
                        // when its client fails before connecting properly).
                        return Err(WireError::Protocol(format!(
                            "run aborted by conn {conn_id}"
                        )));
                    }
                    other => {
                        return Err(WireError::Protocol(format!(
                            "router got {} from conn {conn_id}",
                            other.kind()
                        )))
                    }
                },
                RouterEvent::Frame(conn_id, Err(_)) => {
                    // A registered peer dropped. Losing the client (the
                    // rest of the submissions and every result) is always
                    // fatal. A processor death is masked: the engine marks
                    // it down (redistributing its queued work through the
                    // strategy) and its outstanding dispatched query is
                    // resubmitted, so the run continues on the survivors —
                    // unless none remain. A stray dial or a peer that
                    // never said hello is ignorable.
                    sinks.remove(&conn_id);
                    if client_conn == Some(conn_id) {
                        return Err(WireError::Closed);
                    }
                    if let Some(proc_id) = processor_conn.iter().position(|&c| c == Some(conn_id)) {
                        processor_conn[proc_id] = None;
                        idle[proc_id] = false;
                        engine.mark_down(proc_id);
                        if let Some((seq, query)) = outstanding[proc_id].take() {
                            engine.resubmit(seq, query);
                        }
                        let unfinished =
                            !submit_done || completed < submitted || engine.pending() > 0;
                        if processor_conn.iter().all(Option::is_none) && unfinished {
                            return Err(WireError::Protocol(format!(
                                "all {ever_connected} connected processor(s) died mid-run"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    })();

    // Teardown: snapshot to the client, shutdown to everyone, stop accepting.
    let snapshot = engine.snapshot();
    if let Some(client) = client_conn {
        if let Some(sink) = sinks.get_mut(&client) {
            let _ = sink.send(&Frame::Metrics(snapshot.clone()));
            let _ = sink.send(&Frame::Shutdown);
        }
    }
    for conn_id in processor_conn.into_iter().flatten() {
        if let Some(sink) = sinks.get_mut(&conn_id) {
            let _ = sink.send(&Frame::Shutdown);
        }
    }
    stop.store(true, Ordering::SeqCst);
    let _ = transport.dial(&addr);
    let _ = acceptor.join();

    result.map(|()| snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;

    #[test]
    fn oversized_batch_responses_are_chunked_under_the_frame_cap() {
        let transport = InProcTransport::new();
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let mut sender = transport.dial(&listener.addr()).unwrap();
        let mut receiver = listener.accept().unwrap();

        // Five 3 MiB records: 15 MiB total against the 8 MiB soft budget
        // must stream as several frames that concatenate losslessly.
        let payloads: Vec<Option<(u16, Bytes)>> = (0..5u16)
            .map(|i| Some((i, Bytes::from(vec![i as u8; 3 << 20]))))
            .collect();
        let expected = payloads.clone();
        let writer = std::thread::spawn(move || {
            send_batch_response(&mut sender, 42, payloads).unwrap();
        });

        let mut frames = 0;
        let mut got: Vec<Option<(u16, Bytes)>> = Vec::new();
        while got.len() < expected.len() {
            match receiver.recv().unwrap() {
                Frame::FetchBatchResponse { req_id, payloads } => {
                    assert_eq!(req_id, 42);
                    frames += 1;
                    got.extend(payloads);
                }
                other => panic!("got {}", other.kind()),
            }
        }
        writer.join().unwrap();
        assert!(frames > 1, "15 MiB must not travel as one frame");
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_batch_response_still_sends_one_frame() {
        // The multiplexer treats "entry present" as "response began", so
        // even a zero-node batch must be answered with one (empty) frame.
        let transport = InProcTransport::new();
        let mut listener = transport.listen(&transport.any_addr()).unwrap();
        let mut sender = transport.dial(&listener.addr()).unwrap();
        let mut receiver = listener.accept().unwrap();
        send_batch_response(&mut sender, 7, Vec::new()).unwrap();
        match receiver.recv().unwrap() {
            Frame::FetchBatchResponse { req_id, payloads } => {
                assert_eq!(req_id, 7);
                assert!(payloads.is_empty());
            }
            other => panic!("got {}", other.kind()),
        }
    }
}
