//! Minimal hand-written Linux syscall bindings for the epoll backend.
//!
//! The build is offline — no `libc` crate — so the epoll and poll entry
//! points the reactor needs are declared here directly against the C ABI.
//! Everything is gated to Linux by the module declaration in `lib.rs`;
//! other platforms use the portable sweep backend and never reference
//! these symbols.
//!
//! ABI notes worth keeping visible:
//!
//! * `struct epoll_event` is packed on x86-64 (a kernel ABI quirk dating
//!   to the 32/64-bit compat layer) and naturally aligned everywhere
//!   else — hence the `cfg_attr(target_arch = "x86_64", repr(packed))`.
//! * `epoll_wait`'s timeout is **milliseconds**; callers wanting finer
//!   idle control pass 0 (non-blocking) and pace themselves.

use std::io;
use std::os::raw::c_int;
use std::time::Duration;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;

pub const EPOLLIN: u32 = 0x1;
pub const EPOLLRDHUP: u32 = 0x2000;

const POLLOUT: i16 = 0x4;

/// `struct epoll_event`: readiness mask plus the caller's 64-bit token.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// `struct pollfd` for the single-fd write-readiness wait.
#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const AF_INET: c_int = 2;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;

/// `struct sockaddr_in` for the reusable-bind path (IPv4 only — the wire
/// layer's concrete addresses are loopback).
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_int,
        optlen: u32,
    ) -> c_int;
    fn bind(fd: c_int, addr: *const SockAddrIn, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

/// Binds and listens on a concrete IPv4 address with `SO_REUSEADDR` set
/// before the bind — `std::net` offers no hook for socket options, and
/// without the flag a restarted service cannot reclaim its port while
/// connections it accepted there sit in `TIME_WAIT`.
///
/// # Errors
///
/// The raw OS error from whichever syscall refuses.
pub fn tcp_listen_reuseaddr(addr: &std::net::SocketAddrV4) -> io::Result<std::net::TcpListener> {
    use std::os::fd::FromRawFd;
    // SAFETY: plain syscall, no pointers.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Own the fd immediately so every early return below closes it.
    struct OwnedFd(c_int);
    impl Drop for OwnedFd {
        fn drop(&mut self) {
            // SAFETY: an fd this struct owns exclusively.
            let _ = unsafe { close(self.0) };
        }
    }
    let owned = OwnedFd(fd);
    let one: c_int = 1;
    // SAFETY: `one` is a live c_int and its size is passed as optlen.
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            &one,
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let sockaddr = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: addr.port().to_be(),
        sin_addr: u32::from_ne_bytes(addr.ip().octets()),
        sin_zero: [0; 8],
    };
    // SAFETY: `sockaddr` is a valid sockaddr_in for the duration of the
    // call and its exact size is passed.
    let rc = unsafe { bind(fd, &sockaddr, std::mem::size_of::<SockAddrIn>() as u32) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: plain syscall on the bound fd.
    let rc = unsafe { listen(fd, 128) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    std::mem::forget(owned);
    // SAFETY: the fd is a freshly created, bound, listening socket whose
    // ownership transfers to the TcpListener.
    Ok(unsafe { std::net::TcpListener::from_raw_fd(fd) })
}

/// An owned epoll instance (closed on drop).
pub struct EpollFd(c_int);

impl EpollFd {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The raw OS error when the kernel refuses (fd exhaustion).
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the kernel validates the flag.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self(fd))
    }

    /// Starts watching `fd` for read readiness, tagging events with
    /// `token`.
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. `EPERM` for fds epoll cannot watch).
    pub fn add(&self, fd: i32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLRDHUP,
            data: token,
        };
        // SAFETY: `ev` is a valid, live epoll_event for the duration of
        // the call; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.0, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Stops watching `fd`. Best-effort: a missing registration (the peer
    /// already closed the fd) is not an error worth surfacing.
    pub fn del(&self, fd: i32) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add`; DEL ignores the event argument on any
        // kernel newer than 2.6.9 but must still be non-null there.
        let _ = unsafe { epoll_ctl(self.0, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits up to `timeout` for readiness, appending each ready token to
    /// `ready`. A zero timeout polls without blocking. Returns the number
    /// of ready events.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_wait` (`EINTR` is retried internally).
    pub fn wait(&self, ready: &mut Vec<u64>, timeout: Duration) -> io::Result<usize> {
        const MAX_EVENTS: usize = 128;
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
        loop {
            // SAFETY: the buffer outlives the call and its length is
            // passed as maxevents.
            let rc =
                unsafe { epoll_wait(self.0, events.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = rc as usize;
            for ev in &events[..n] {
                ready.push(ev.data);
            }
            return Ok(n);
        }
    }
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        // SAFETY: `self.0` is an fd this struct owns exclusively.
        let _ = unsafe { close(self.0) };
    }
}

/// Blocks until `fd` is writable or `timeout` elapses. Returns whether
/// the fd reported writability (false on timeout).
///
/// # Errors
///
/// The raw OS error from `poll` (`EINTR` is retried internally).
pub fn wait_writable(fd: i32, timeout: Duration) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events: POLLOUT,
        revents: 0,
    };
    let timeout_ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
    loop {
        // SAFETY: one valid pollfd, length 1.
        let rc = unsafe { poll(&mut pfd, 1, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        // Any revents (POLLOUT, or POLLERR/POLLHUP which a write will
        // surface as a proper error) means "try the write now".
        return Ok(rc > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let ep = EpollFd::new().unwrap();
        ep.add(server.as_raw_fd(), 42).unwrap();

        let mut ready = Vec::new();
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut ready, Duration::ZERO).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = ep.wait(&mut ready, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready, vec![42]);

        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Level-triggered: once drained, idle again.
        ready.clear();
        assert_eq!(ep.wait(&mut ready, Duration::ZERO).unwrap(), 0);
        ep.del(server.as_raw_fd());
    }

    #[test]
    fn reuseaddr_listener_rebinds_after_serving() {
        // Find a free concrete port, then bind it with SO_REUSEADDR.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = match probe.local_addr().unwrap() {
            std::net::SocketAddr::V4(v4) => v4,
            other => panic!("unexpected addr family: {other}"),
        };
        drop(probe);
        let listener = tcp_listen_reuseaddr(&addr).unwrap();
        assert_eq!(listener.local_addr().unwrap().port(), addr.port());

        // Serve one connection that the *server* closes first, leaving a
        // TIME_WAIT entry on the port, then rebind immediately — the
        // restart path a plain bind would refuse.
        let client = TcpStream::connect(addr).unwrap();
        let (server_conn, _) = listener.accept().unwrap();
        drop(server_conn);
        drop(listener);
        let mut buf = [0u8; 1];
        let _ = (&client).read(&mut buf); // observe the close
        let again = tcp_listen_reuseaddr(&addr).unwrap();
        assert_eq!(again.local_addr().unwrap().port(), addr.port());
        drop(client);
    }

    #[test]
    fn wait_writable_sees_an_open_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        assert!(wait_writable(client.as_raw_fd(), Duration::from_secs(1)).unwrap());
    }
}
