//! Minimal hand-written Linux syscall bindings for the epoll backend.
//!
//! The build is offline — no `libc` crate — so the epoll and poll entry
//! points the reactor needs are declared here directly against the C ABI.
//! Everything is gated to Linux by the module declaration in `lib.rs`;
//! other platforms use the portable sweep backend and never reference
//! these symbols.
//!
//! ABI notes worth keeping visible:
//!
//! * `struct epoll_event` is packed on x86-64 (a kernel ABI quirk dating
//!   to the 32/64-bit compat layer) and naturally aligned everywhere
//!   else — hence the `cfg_attr(target_arch = "x86_64", repr(packed))`.
//! * `epoll_wait`'s timeout is **milliseconds**; callers wanting finer
//!   idle control pass 0 (non-blocking) and pace themselves.

use std::io;
use std::os::raw::c_int;
use std::time::Duration;

pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;

pub const EPOLLIN: u32 = 0x1;
pub const EPOLLRDHUP: u32 = 0x2000;

const POLLOUT: i16 = 0x4;

/// `struct epoll_event`: readiness mask plus the caller's 64-bit token.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

/// `struct pollfd` for the single-fd write-readiness wait.
#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
}

/// An owned epoll instance (closed on drop).
pub struct EpollFd(c_int);

impl EpollFd {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    ///
    /// The raw OS error when the kernel refuses (fd exhaustion).
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the kernel validates the flag.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self(fd))
    }

    /// Starts watching `fd` for read readiness, tagging events with
    /// `token`.
    ///
    /// # Errors
    ///
    /// The raw OS error (e.g. `EPERM` for fds epoll cannot watch).
    pub fn add(&self, fd: i32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLRDHUP,
            data: token,
        };
        // SAFETY: `ev` is a valid, live epoll_event for the duration of
        // the call; the kernel copies it before returning.
        let rc = unsafe { epoll_ctl(self.0, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Stops watching `fd`. Best-effort: a missing registration (the peer
    /// already closed the fd) is not an error worth surfacing.
    pub fn del(&self, fd: i32) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add`; DEL ignores the event argument on any
        // kernel newer than 2.6.9 but must still be non-null there.
        let _ = unsafe { epoll_ctl(self.0, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits up to `timeout` for readiness, appending each ready token to
    /// `ready`. A zero timeout polls without blocking. Returns the number
    /// of ready events.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_wait` (`EINTR` is retried internally).
    pub fn wait(&self, ready: &mut Vec<u64>, timeout: Duration) -> io::Result<usize> {
        const MAX_EVENTS: usize = 128;
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
        loop {
            // SAFETY: the buffer outlives the call and its length is
            // passed as maxevents.
            let rc =
                unsafe { epoll_wait(self.0, events.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            let n = rc as usize;
            for ev in &events[..n] {
                ready.push(ev.data);
            }
            return Ok(n);
        }
    }
}

impl Drop for EpollFd {
    fn drop(&mut self) {
        // SAFETY: `self.0` is an fd this struct owns exclusively.
        let _ = unsafe { close(self.0) };
    }
}

/// Blocks until `fd` is writable or `timeout` elapses. Returns whether
/// the fd reported writability (false on timeout).
///
/// # Errors
///
/// The raw OS error from `poll` (`EINTR` is retried internally).
pub fn wait_writable(fd: i32, timeout: Duration) -> io::Result<bool> {
    let mut pfd = PollFd {
        fd,
        events: POLLOUT,
        revents: 0,
    };
    let timeout_ms = c_int::try_from(timeout.as_millis()).unwrap_or(c_int::MAX);
    loop {
        // SAFETY: one valid pollfd, length 1.
        let rc = unsafe { poll(&mut pfd, 1, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        // Any revents (POLLOUT, or POLLERR/POLLHUP which a write will
        // surface as a proper error) means "try the write now".
        return Ok(rc > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let ep = EpollFd::new().unwrap();
        ep.add(server.as_raw_fd(), 42).unwrap();

        let mut ready = Vec::new();
        // Nothing written yet: a zero-timeout wait sees nothing.
        assert_eq!(ep.wait(&mut ready, Duration::ZERO).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = ep.wait(&mut ready, Duration::from_secs(5)).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready, vec![42]);

        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Level-triggered: once drained, idle again.
        ready.clear();
        assert_eq!(ep.wait(&mut ready, Duration::ZERO).unwrap(), 0);
        ep.del(server.as_raw_fd());
    }

    #[test]
    fn wait_writable_sees_an_open_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        assert!(wait_writable(client.as_raw_fd(), Duration::from_secs(1)).unwrap());
    }
}
