//! Real RPC for the decoupled cluster: bytes on a wire, not function calls.
//!
//! The paper's architecture is a *network* architecture — stateless query
//! processors talking to a remote storage tier, with a router in front —
//! yet an in-process reproduction can quietly reduce every hop to a method
//! call. This crate makes the hops real:
//!
//! * [`frame`] — the router↔processor↔storage message set (submit,
//!   dispatch, adjacency fetch/response, completion records, metrics
//!   snapshots) and its length-prefixed little-endian binary codec;
//! * [`transport`] — the [`Transport`](transport::Transport) abstraction
//!   with two fabrics: [`TcpTransport`](transport::TcpTransport) (real
//!   `std::net` sockets, framed streams, pooled connections with
//!   reconnect) and [`InProcTransport`](transport::InProcTransport)
//!   (hermetic channels that still move encoded bytes);
//! * [`flow`] — pipelined, frontier-batched adjacency fetching: a
//!   non-blocking connection multiplexer keeping one batch frame per
//!   storage server in flight per BFS hop, correlated by request id,
//!   instead of one blocking round trip per frontier node;
//! * [`reactor`] — the readiness reactor: ONE poll loop per node
//!   multiplexing the listener and every framed connection, replacing the
//!   thread-per-connection control path (O(connections) → O(1) threads);
//! * [`overlap`] — cross-query fetch overlap: up to
//!   [`grouting_engine::EngineConfig::overlap`] dispatched queries in
//!   flight per processor as resumable staged executions, double-buffering
//!   frontiers so one query's batch travels while another computes;
//! * [`service`] — the three tiers as independently runnable endpoints:
//!   storage servers answering fetches (scalar and batched), processors
//!   executing dispatched queries with a remote miss path, and the router
//!   node driving the *same* [`grouting_engine::Engine`] the in-proc
//!   runtimes drive — masking mid-run processor deaths, re-admitting
//!   restarted processors, and answering mid-run metrics requests;
//! * [`cluster`] — a one-machine harness launching router + `P`
//!   processors + `M` storage servers as socket peers and streaming a
//!   workload through them.
//!
//! Because the router runs the identical engine and the processors build
//! the identical caches (only the miss path differs, byte-for-byte), a
//! TCP cluster run at `overlap = 1` agrees with an in-proc run on routing
//! assignments and cache statistics — pinned by
//! `tests/tests/wire_agreement.rs` (which also pins answers and
//! assignments at overlap 4).

pub mod chaos;
pub mod cluster;
pub mod error;
pub mod fault;
pub mod flow;
pub mod frame;
pub mod overlap;
pub mod reactor;
pub mod service;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub mod transport;

pub use chaos::{launch_chaos_cluster, ChaosAction, ChaosScript, ChaosWave};
pub use cluster::{launch_cluster, overlap_from_env, ClusterConfig, ClusterRun, TransportKind};
pub use error::{WireError, WireResult};
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultyTransport};
pub use flow::{BatchMux, FetchMode, MultiplexedStorageSource, PendingBatch};
pub use frame::{Completion, Frame, Role};
pub use grouting_obs::{NodeObs, NodeRole, ObsConfig, Registry, RegistrySnapshot};
pub use overlap::{CompletedQuery, QueryPipeline};
pub use reactor::{Backoff, Poller, PollerKind, Reactor, ReactorEvent, SweepPoller};
pub use service::{
    now_ns, run_router, FailoverCell, ProcessorOptions, ProcessorService, RemoteStorageSource,
    RouterOptions, ServiceHandle, StorageOptions, StorageService,
};
pub use transport::{
    Connection, ConnectionPool, FrameSink, FrameStream, InProcTransport, Listener, RetryPolicy,
    TcpTransport, Transport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_engine::{EngineAssets, EngineConfig};
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_metrics::RunSnapshot;
    use grouting_partition::HashPartitioner;
    use grouting_query::{Query, RecordSource};
    use grouting_route::RoutingKind;
    use grouting_storage::{NetworkModel, StorageTier};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loaded_tier(nodes: u32, servers: usize) -> Arc<StorageTier> {
        let mut b = GraphBuilder::new();
        for i in 0..nodes {
            b.add_edge(n(i), n((i + 1) % nodes));
            b.add_edge(n(i), n((i + 2) % nodes));
        }
        let g = b.build().unwrap();
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn queries(nodes: u32, count: u32) -> Vec<Query> {
        (0..count)
            .map(|i| Query::NeighborAggregation {
                node: n((i * 7) % nodes),
                hops: 2,
                label: None,
            })
            .collect()
    }

    #[test]
    fn storage_service_serves_remote_fetches() {
        let tier = loaded_tier(16, 2);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let handle = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();

        let mut source = RemoteStorageSource::new(
            Arc::clone(&transport),
            &[handle.addr().to_string(), handle.addr().to_string()],
            tier.partitioner(),
        );
        for i in 0..16 {
            let (server, bytes) = source.fetch_raw(n(i)).expect("stored node");
            let (want_server, want_bytes) = tier.get(n(i)).unwrap();
            assert_eq!(server as usize, want_server);
            assert_eq!(&bytes[..], &want_bytes[..]);
        }
        assert!(source.fetch_raw(n(999)).is_none());
        handle.shutdown();
    }

    fn cluster_cfg(transport: TransportKind) -> ClusterConfig {
        let engine = EngineConfig {
            cache_capacity: 4 << 20,
            ..EngineConfig::paper_default(3, RoutingKind::Hash)
        };
        ClusterConfig::new(engine, transport)
    }

    fn end_to_end_over(kind: TransportKind) {
        let tier = loaded_tier(48, 2);
        let assets = EngineAssets::new(tier);
        let q = queries(48, 40);
        let run = launch_cluster(&assets, &q, &cluster_cfg(kind)).unwrap();
        assert_eq!(run.results.len(), q.len());
        assert_eq!(run.timeline.len(), q.len());
        assert_eq!(run.snapshot.queries, q.len() as u64);
        assert!(run.snapshot.cache_misses > 0, "cold caches must miss");
        assert!(run.wall_ns > 0);
        assert!(run.throughput_qps() > 0.0);
        let served: u64 = run.snapshot.per_processor.iter().sum();
        assert_eq!(served, q.len() as u64);
    }

    #[test]
    fn inproc_cluster_end_to_end() {
        end_to_end_over(TransportKind::InProc);
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        end_to_end_over(TransportKind::Tcp);
    }

    #[test]
    fn repeated_hotspot_hits_remote_processor_caches() {
        let tier = loaded_tier(32, 2);
        let assets = EngineAssets::new(tier);
        let q: Vec<Query> = (0..30)
            .map(|i| Query::NeighborAggregation {
                node: n(i % 3),
                hops: 2,
                label: None,
            })
            .collect();
        let run = launch_cluster(&assets, &q, &cluster_cfg(TransportKind::InProc)).unwrap();
        assert!(run.snapshot.cache_hits > 0, "hotspot must hit");
        assert!(run.hit_rate() > 0.3, "hit rate {}", run.hit_rate());
    }

    #[test]
    fn router_errors_instead_of_hanging_when_client_dies_early() {
        let tier = loaded_tier(16, 1);
        let assets = EngineAssets::new(tier);
        let config = EngineConfig::paper_default(1, RoutingKind::Hash);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let router = std::thread::spawn(move || {
            run_router(listener, &assets, &config, &RouterOptions::default())
        });

        // A client that submits work and vanishes before SubmitEnd, with
        // no processors around: the router must fail fast, not park.
        let mut client = transport.dial(&addr).unwrap();
        client
            .send(&Frame::Hello {
                role: Role::Client,
                id: 0,
            })
            .unwrap();
        client
            .send(&Frame::Submit {
                seq: 0,
                query: Query::NeighborAggregation {
                    node: n(1),
                    hops: 1,
                    label: None,
                },
                submitted_ns: None,
            })
            .unwrap();
        drop(client);
        assert!(matches!(
            router.join().unwrap(),
            Err(crate::WireError::Closed)
        ));
    }

    #[test]
    fn batched_source_agrees_with_storage_service() {
        let tier = loaded_tier(64, 3);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let handles: Vec<_> = (0..3)
            .map(|_| {
                StorageService::spawn(
                    Arc::clone(&transport),
                    Arc::clone(&tier),
                    NetworkModel::local(),
                )
                .unwrap()
            })
            .collect();
        let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

        let mut source =
            MultiplexedStorageSource::new(Arc::clone(&transport), &addrs, tier.partitioner());
        // A frontier spanning every server, plus misses, in one batch.
        let nodes: Vec<NodeId> = (0..70).map(n).collect();
        let got = grouting_query::BatchSource::fetch_batch(&mut source, &nodes);
        assert_eq!(got.len(), nodes.len());
        for (&node, payload) in nodes.iter().zip(&got) {
            let want = tier.get(node).map(|(s, b)| (s as u16, b));
            assert_eq!(*payload, want, "node {node}");
        }
        // Scalar fetches ride the same multiplexed connections.
        use grouting_query::RecordSource;
        assert_eq!(
            source.fetch_raw(n(5)),
            tier.get(n(5)).map(|(s, b)| (s as u16, b))
        );
        assert!(source.fetch_raw(n(999)).is_none());
        drop(source);
        for h in handles {
            h.shutdown();
        }
    }

    #[test]
    fn router_masks_processor_death_mid_run() {
        // One flaky processor (serves one query, then vanishes with a
        // second dispatch outstanding) and one healthy one: the router
        // must mark the dead peer down, resubmit its in-flight query, and
        // complete the whole workload on the survivor.
        let tier = loaded_tier(32, 2);
        let assets = EngineAssets::new(Arc::clone(&tier));
        let config = EngineConfig {
            stealing: false,
            ..EngineConfig::paper_default(2, RoutingKind::NextReady)
        };
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let router_assets = assets.clone();
        let router = std::thread::spawn(move || {
            run_router(listener, &router_assets, &config, &RouterOptions::default())
        });

        let storage = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();

        // The flaky processor: hello, execute exactly one dispatch, then
        // die *without* acknowledging the next one.
        let flaky_transport = Arc::clone(&transport);
        let flaky_addr = addr.clone();
        let flaky_tier = Arc::clone(&tier);
        let flaky = std::thread::spawn(move || {
            let mut conn = flaky_transport.dial(&flaky_addr).unwrap();
            conn.send(&Frame::Hello {
                role: Role::Processor,
                id: 0,
            })
            .unwrap();
            match conn.recv().unwrap() {
                Frame::Dispatch { seq, query, .. } => {
                    let mut cache = config.build_cache();
                    let out = grouting_query::Executor::new(&*flaky_tier, &mut cache).run(&query);
                    conn.send(&Frame::Completion(Completion {
                        seq,
                        processor: 0,
                        result: out.result,
                        stats: out.stats,
                        prefetch: grouting_query::PrefetchStats::default(),
                        failover: grouting_metrics::FailoverStats::default(),
                        arrived_ns: 0,
                        started_ns: 1,
                        completed_ns: 2,
                        heat: grouting_metrics::HeatMap::default(),
                        trace: None,
                    }))
                    .unwrap();
                }
                other => panic!("flaky processor got {}", other.kind()),
            }
            // Wait for the next frame (a dispatch), then die with it
            // outstanding by dropping the connection.
            let _ = conn.recv().unwrap();
        });

        // The healthy processor is the real service, batched fetch path.
        let healthy = ProcessorService::spawn(
            Arc::clone(&transport),
            1,
            addr.clone(),
            vec![storage.addr().to_string()],
            tier.partitioner(),
            config,
            FetchMode::Batched,
        );

        // The client streams enough work that the flaky processor is
        // mid-flight when it dies.
        let mut client = transport.dial(&addr).unwrap();
        client
            .send(&Frame::Hello {
                role: Role::Client,
                id: 0,
            })
            .unwrap();
        let q = queries(32, 12);
        for (seq, query) in q.iter().enumerate() {
            client
                .send(&Frame::Submit {
                    seq: seq as u64,
                    query: *query,
                    submitted_ns: None,
                })
                .unwrap();
        }
        client.send(&Frame::SubmitEnd).unwrap();

        let mut completions = 0;
        loop {
            match client.recv() {
                Ok(Frame::Completion(_)) => completions += 1,
                Ok(Frame::Metrics { .. }) => {}
                Ok(Frame::Shutdown) | Err(WireError::Closed) => break,
                Ok(other) => panic!("client got {}", other.kind()),
                Err(e) => panic!("client recv failed: {e}"),
            }
        }
        let snapshot = router.join().unwrap().expect("run completes despite death");
        assert_eq!(completions, q.len(), "every query completed");
        assert_eq!(snapshot.queries, q.len() as u64);
        // The dead processor acknowledged exactly one query; everything
        // else (including its resubmitted in-flight query) went to the
        // survivor.
        assert_eq!(snapshot.per_processor[0], 1);
        assert_eq!(snapshot.per_processor[1], q.len() as u64 - 1);
        // The flaky processor died with a dispatch outstanding, so the
        // router resubmitted exactly one window; no wire-level retries
        // were involved (the storage endpoint never went away).
        assert_eq!(snapshot.windows_resubmitted, 1);
        assert_eq!(snapshot.redials, 0);
        assert_eq!(snapshot.replica_failovers, 0);
        flaky.join().unwrap();
        let _ = healthy.join();
        storage.shutdown();
    }

    #[test]
    fn restarted_processor_rejoins_rotation() {
        // The re-join path (ROADMAP item): a processor dies mid-run, the
        // router masks it, then the processor RESTARTS, re-dials with its
        // old id, and must be marked up and re-enter rotation — serving
        // queries submitted after its return.
        let tier = loaded_tier(32, 1);
        let assets = EngineAssets::new(Arc::clone(&tier));
        let config = EngineConfig {
            stealing: false,
            ..EngineConfig::paper_default(2, RoutingKind::NextReady)
        };
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let router_assets = assets.clone();
        let router = std::thread::spawn(move || {
            run_router(listener, &router_assets, &config, &RouterOptions::default())
        });
        let storage = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();

        // Dials the router as processor `id`, then blocks until the router
        // has processed the hello (a MetricsRequest on the same connection
        // is answered strictly after it).
        let connect_processor = |id: u32| -> crate::transport::Connection {
            let mut conn = transport.dial(&addr).unwrap();
            conn.send(&Frame::Hello {
                role: Role::Processor,
                id,
            })
            .unwrap();
            conn.send(&Frame::MetricsRequest).unwrap();
            match conn.recv().unwrap() {
                Frame::Metrics { .. } => conn,
                other => panic!("processor {id} got {}", other.kind()),
            }
        };
        let serve_one = {
            let tier = Arc::clone(&tier);
            move |conn: &mut crate::transport::Connection,
                  cache: &mut grouting_query::ProcessorCache,
                  id: u32,
                  seq: u64,
                  query: &Query| {
                let out = grouting_query::Executor::new(&*tier, cache).run(query);
                conn.send(&Frame::Completion(Completion {
                    seq,
                    processor: id,
                    result: out.result,
                    stats: out.stats,
                    prefetch: grouting_query::PrefetchStats::default(),
                    failover: grouting_metrics::FailoverStats::default(),
                    arrived_ns: 0,
                    started_ns: 1,
                    completed_ns: 2,
                    heat: grouting_metrics::HeatMap::default(),
                    trace: None,
                }))
                .unwrap();
            }
        };

        // Both processors are router-acknowledged BEFORE any work is
        // submitted, so the dispatch pattern below is deterministic.
        let mut flaky_conn = connect_processor(0);
        let healthy_conn = connect_processor(1);

        // The healthy processor serves everything it is given until
        // shutdown.
        let healthy_serve = serve_one.clone();
        let healthy = std::thread::spawn(move || {
            let mut conn = healthy_conn;
            let mut cache = config.build_cache();
            loop {
                match conn.recv() {
                    Ok(Frame::Dispatch { seq, query, .. }) => {
                        healthy_serve(&mut conn, &mut cache, 1, seq, &query);
                    }
                    Ok(Frame::Shutdown) | Err(WireError::Closed) => return,
                    Ok(other) => panic!("healthy processor got {}", other.kind()),
                    Err(e) => panic!("healthy processor recv failed: {e}"),
                }
            }
        });

        // Lets the restarted processor tell the client its re-join has
        // been acknowledged by the router.
        let (rejoined_tx, rejoined_rx) = std::sync::mpsc::channel::<()>();

        // Processor 0, incarnation 1: serve exactly one dispatch, then die
        // with the second outstanding (overlap ≥ 2 guarantees the router
        // sent two up front). Incarnation 2: re-dial under the SAME id,
        // confirm the router acknowledged the re-join, then serve until
        // Shutdown.
        let flaky_transport = Arc::clone(&transport);
        let flaky_addr = addr.clone();
        let flaky_serve = serve_one.clone();
        let flaky = std::thread::spawn(move || {
            let mut cache = config.build_cache();
            match flaky_conn.recv().unwrap() {
                Frame::Dispatch { seq, query, .. } => {
                    flaky_serve(&mut flaky_conn, &mut cache, 0, seq, &query);
                }
                other => panic!("flaky processor got {}", other.kind()),
            }
            // Wait for the next dispatch, then die with it outstanding.
            let _ = flaky_conn.recv().unwrap();
            drop(flaky_conn);

            // --- Restart: same id, fresh connection, fresh cache. ---
            let mut conn = flaky_transport.dial(&flaky_addr).unwrap();
            conn.send(&Frame::Hello {
                role: Role::Processor,
                id: 0,
            })
            .unwrap();
            conn.send(&Frame::MetricsRequest).unwrap();
            match conn.recv().unwrap() {
                Frame::Metrics { .. } => rejoined_tx.send(()).unwrap(),
                other => panic!("restarted processor got {}", other.kind()),
            }
            let mut cache = config.build_cache();
            let mut served_after_rejoin = 0u64;
            loop {
                match conn.recv() {
                    Ok(Frame::Dispatch { seq, query, .. }) => {
                        flaky_serve(&mut conn, &mut cache, 0, seq, &query);
                        served_after_rejoin += 1;
                    }
                    Ok(Frame::Shutdown) | Err(WireError::Closed) => return served_after_rejoin,
                    Ok(other) => panic!("restarted processor got {}", other.kind()),
                    Err(e) => panic!("restarted processor recv failed: {e}"),
                }
            }
        });

        // Phase 1: submit 4 queries, drain their completions — the flaky
        // processor serves one and dies mid-flight along the way.
        let mut client = transport.dial(&addr).unwrap();
        client
            .send(&Frame::Hello {
                role: Role::Client,
                id: 0,
            })
            .unwrap();
        let q = queries(32, 10);
        for (seq, query) in q.iter().take(4).enumerate() {
            client
                .send(&Frame::Submit {
                    seq: seq as u64,
                    query: *query,
                    submitted_ns: None,
                })
                .unwrap();
        }
        let mut completions = 0;
        while completions < 4 {
            match client.recv().unwrap() {
                Frame::Completion(_) => completions += 1,
                Frame::Metrics { .. } => {}
                other => panic!("client got {}", other.kind()),
            }
        }

        // Phase 2: wait until the restarted processor is back in rotation,
        // then submit the rest of the workload.
        rejoined_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("processor re-join must be acknowledged");
        for (seq, query) in q.iter().enumerate().skip(4) {
            client
                .send(&Frame::Submit {
                    seq: seq as u64,
                    query: *query,
                    submitted_ns: None,
                })
                .unwrap();
        }
        client.send(&Frame::SubmitEnd).unwrap();
        loop {
            match client.recv() {
                Ok(Frame::Completion(_)) => completions += 1,
                Ok(Frame::Metrics { .. }) => {}
                Ok(Frame::Shutdown) | Err(WireError::Closed) => break,
                Ok(other) => panic!("client got {}", other.kind()),
                Err(e) => panic!("client recv failed: {e}"),
            }
        }

        let snapshot = router.join().unwrap().expect("run completes");
        let served_after_rejoin = flaky.join().unwrap();
        assert_eq!(completions, q.len(), "every query completed");
        assert_eq!(snapshot.queries, q.len() as u64);
        assert!(
            served_after_rejoin >= 1,
            "the restarted processor must re-enter rotation"
        );
        assert_eq!(
            snapshot.per_processor[0],
            1 + served_after_rejoin,
            "router accounting: one query before the crash, the rest after re-join"
        );
        let _ = healthy.join();
        storage.shutdown();
    }

    #[test]
    fn metrics_request_is_answered_mid_run() {
        // Any peer may send Frame::MetricsRequest at any point and get the
        // totals accumulated so far, ahead of the final snapshot.
        let tier = loaded_tier(32, 1);
        let assets = EngineAssets::new(Arc::clone(&tier));
        let config = EngineConfig {
            cache_capacity: 4 << 20,
            ..EngineConfig::paper_default(1, RoutingKind::Hash)
        };
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let router_assets = assets.clone();
        let router = std::thread::spawn(move || {
            run_router(listener, &router_assets, &config, &RouterOptions::default())
        });
        let storage = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();
        let processor = ProcessorService::spawn(
            Arc::clone(&transport),
            0,
            addr.clone(),
            vec![storage.addr().to_string()],
            tier.partitioner(),
            config,
            FetchMode::Batched,
        );

        let mut client = transport.dial(&addr).unwrap();
        client
            .send(&Frame::Hello {
                role: Role::Client,
                id: 0,
            })
            .unwrap();
        let q = queries(32, 8);
        for (seq, query) in q.iter().enumerate() {
            client
                .send(&Frame::Submit {
                    seq: seq as u64,
                    query: *query,
                    submitted_ns: None,
                })
                .unwrap();
        }
        client.send(&Frame::SubmitEnd).unwrap();
        // The request reaches the router's event queue ahead of most of
        // the completions, so the reply is a genuinely mid-run snapshot.
        client.send(&Frame::MetricsRequest).unwrap();

        let mut metrics: Vec<RunSnapshot> = Vec::new();
        let mut completions = 0;
        loop {
            match client.recv() {
                Ok(Frame::Completion(_)) => completions += 1,
                Ok(Frame::Metrics { snapshot, .. }) => metrics.push(snapshot),
                Ok(Frame::Shutdown) | Err(WireError::Closed) => break,
                Ok(other) => panic!("client got {}", other.kind()),
                Err(e) => panic!("client recv failed: {e}"),
            }
        }
        assert_eq!(completions, q.len());
        assert!(
            metrics.len() >= 2,
            "on-demand reply plus the final snapshot, got {}",
            metrics.len()
        );
        // The on-demand snapshot precedes the final one and never
        // overcounts it.
        let last = metrics.last().unwrap();
        assert_eq!(last.queries, q.len() as u64);
        assert!(metrics[0].queries <= last.queries);
        router.join().unwrap().unwrap();
        processor.join().unwrap().unwrap();
        storage.shutdown();
    }

    #[test]
    fn periodic_snapshots_stream_to_the_client() {
        // The snapshot_every knob emits unprompted mid-run snapshots; the
        // final snapshot still arrives at shutdown.
        let tier = loaded_tier(32, 1);
        let assets = EngineAssets::new(tier);
        let q = queries(32, 10);
        let engine = EngineConfig {
            cache_capacity: 4 << 20,
            ..EngineConfig::paper_default(2, RoutingKind::Hash)
        };
        let mut config = ClusterConfig::new(engine, TransportKind::InProc);
        config.snapshot_every = 3;
        let run = launch_cluster(&assets, &q, &config).unwrap();
        assert!(
            !run.mid_snapshots.is_empty(),
            "periodic snapshots must be emitted"
        );
        let mut last = 0;
        for s in &run.mid_snapshots {
            assert!(s.queries >= last, "snapshots move forward");
            assert!(s.queries <= q.len() as u64);
            last = s.queries;
        }
        assert_eq!(run.snapshot.queries, q.len() as u64);
    }

    #[test]
    fn transport_kind_env_escape_hatch_parses() {
        // Only exercises the parser (the env var itself belongs to CI).
        assert_eq!(TransportKind::default(), TransportKind::Tcp);
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::InProc.to_string(), "inproc");
    }
}
