//! Real RPC for the decoupled cluster: bytes on a wire, not function calls.
//!
//! The paper's architecture is a *network* architecture — stateless query
//! processors talking to a remote storage tier, with a router in front —
//! yet an in-process reproduction can quietly reduce every hop to a method
//! call. This crate makes the hops real:
//!
//! * [`frame`] — the router↔processor↔storage message set (submit,
//!   dispatch, adjacency fetch/response, completion records, metrics
//!   snapshots) and its length-prefixed little-endian binary codec;
//! * [`transport`] — the [`Transport`](transport::Transport) abstraction
//!   with two fabrics: [`TcpTransport`](transport::TcpTransport) (real
//!   `std::net` sockets, framed streams, pooled connections with
//!   reconnect) and [`InProcTransport`](transport::InProcTransport)
//!   (hermetic channels that still move encoded bytes);
//! * [`service`] — the three tiers as independently runnable endpoints:
//!   storage servers answering fetches, processors executing ack-driven
//!   dispatch with a remote miss path, and the router node driving the
//!   *same* [`grouting_engine::Engine`] the in-proc runtimes drive;
//! * [`cluster`] — a one-machine harness launching router + `P`
//!   processors + `M` storage servers as socket peers and streaming a
//!   workload through them.
//!
//! Because the router runs the identical engine and the processors build
//! the identical caches (only the miss path differs, byte-for-byte), a
//! TCP cluster run agrees with an in-proc run on routing assignments and
//! cache statistics — pinned by `tests/tests/wire_agreement.rs`.

pub mod cluster;
pub mod error;
pub mod frame;
pub mod service;
pub mod transport;

pub use cluster::{launch_cluster, ClusterConfig, ClusterRun, TransportKind};
pub use error::{WireError, WireResult};
pub use frame::{Completion, Frame, Role};
pub use service::{
    now_ns, run_router, ProcessorService, RemoteStorageSource, ServiceHandle, StorageService,
};
pub use transport::{
    Connection, ConnectionPool, FrameSink, FrameStream, InProcTransport, Listener, TcpTransport,
    Transport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_engine::{EngineAssets, EngineConfig};
    use grouting_graph::{GraphBuilder, NodeId};
    use grouting_partition::HashPartitioner;
    use grouting_query::{Query, RecordSource};
    use grouting_route::RoutingKind;
    use grouting_storage::{NetworkModel, StorageTier};
    use std::sync::Arc;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn loaded_tier(nodes: u32, servers: usize) -> Arc<StorageTier> {
        let mut b = GraphBuilder::new();
        for i in 0..nodes {
            b.add_edge(n(i), n((i + 1) % nodes));
            b.add_edge(n(i), n((i + 2) % nodes));
        }
        let g = b.build().unwrap();
        let tier = Arc::new(StorageTier::new(Arc::new(HashPartitioner::new(servers))));
        tier.load_graph(&g).unwrap();
        tier
    }

    fn queries(nodes: u32, count: u32) -> Vec<Query> {
        (0..count)
            .map(|i| Query::NeighborAggregation {
                node: n((i * 7) % nodes),
                hops: 2,
                label: None,
            })
            .collect()
    }

    #[test]
    fn storage_service_serves_remote_fetches() {
        let tier = loaded_tier(16, 2);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let handle = StorageService::spawn(
            Arc::clone(&transport),
            Arc::clone(&tier),
            NetworkModel::local(),
        )
        .unwrap();

        let mut source = RemoteStorageSource::new(
            Arc::clone(&transport),
            &[handle.addr().to_string(), handle.addr().to_string()],
            tier.partitioner(),
        );
        for i in 0..16 {
            let (server, bytes) = source.fetch_raw(n(i)).expect("stored node");
            let (want_server, want_bytes) = tier.get(n(i)).unwrap();
            assert_eq!(server as usize, want_server);
            assert_eq!(&bytes[..], &want_bytes[..]);
        }
        assert!(source.fetch_raw(n(999)).is_none());
        handle.shutdown();
    }

    fn cluster_cfg(transport: TransportKind) -> ClusterConfig {
        let engine = EngineConfig {
            cache_capacity: 4 << 20,
            ..EngineConfig::paper_default(3, RoutingKind::Hash)
        };
        ClusterConfig::new(engine, transport)
    }

    fn end_to_end_over(kind: TransportKind) {
        let tier = loaded_tier(48, 2);
        let assets = EngineAssets::new(tier);
        let q = queries(48, 40);
        let run = launch_cluster(&assets, &q, &cluster_cfg(kind)).unwrap();
        assert_eq!(run.results.len(), q.len());
        assert_eq!(run.timeline.len(), q.len());
        assert_eq!(run.snapshot.queries, q.len() as u64);
        assert!(run.snapshot.cache_misses > 0, "cold caches must miss");
        assert!(run.wall_ns > 0);
        assert!(run.throughput_qps() > 0.0);
        let served: u64 = run.snapshot.per_processor.iter().sum();
        assert_eq!(served, q.len() as u64);
    }

    #[test]
    fn inproc_cluster_end_to_end() {
        end_to_end_over(TransportKind::InProc);
    }

    #[test]
    fn tcp_cluster_end_to_end() {
        end_to_end_over(TransportKind::Tcp);
    }

    #[test]
    fn repeated_hotspot_hits_remote_processor_caches() {
        let tier = loaded_tier(32, 2);
        let assets = EngineAssets::new(tier);
        let q: Vec<Query> = (0..30)
            .map(|i| Query::NeighborAggregation {
                node: n(i % 3),
                hops: 2,
                label: None,
            })
            .collect();
        let run = launch_cluster(&assets, &q, &cluster_cfg(TransportKind::InProc)).unwrap();
        assert!(run.snapshot.cache_hits > 0, "hotspot must hit");
        assert!(run.hit_rate() > 0.3, "hit rate {}", run.hit_rate());
    }

    #[test]
    fn router_errors_instead_of_hanging_when_client_dies_early() {
        let tier = loaded_tier(16, 1);
        let assets = EngineAssets::new(tier);
        let config = EngineConfig::paper_default(1, RoutingKind::Hash);
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let listener = transport.listen(&transport.any_addr()).unwrap();
        let addr = listener.addr();
        let router_transport = Arc::clone(&transport);
        let router =
            std::thread::spawn(move || run_router(router_transport, listener, &assets, &config));

        // A client that submits work and vanishes before SubmitEnd, with
        // no processors around: the router must fail fast, not park.
        let mut client = transport.dial(&addr).unwrap();
        client
            .send(&Frame::Hello {
                role: Role::Client,
                id: 0,
            })
            .unwrap();
        client
            .send(&Frame::Submit {
                seq: 0,
                query: Query::NeighborAggregation {
                    node: n(1),
                    hops: 1,
                    label: None,
                },
            })
            .unwrap();
        drop(client);
        assert!(matches!(
            router.join().unwrap(),
            Err(crate::WireError::Closed)
        ));
    }

    #[test]
    fn transport_kind_env_escape_hatch_parses() {
        // Only exercises the parser (the env var itself belongs to CI).
        assert_eq!(TransportKind::default(), TransportKind::Tcp);
        assert_eq!(TransportKind::Tcp.to_string(), "tcp");
        assert_eq!(TransportKind::InProc.to_string(), "inproc");
    }
}
