//! The per-node observability bundle a service loop drives.

use std::collections::BTreeMap;
use std::net::SocketAddr;

use grouting_metrics::log_warn;

use crate::recorder::FlightRecorder;
use crate::registry::{render_prometheus, Registry, RegistrySnapshot};
use crate::scrape::ScrapeServer;
use crate::NodeRole;

/// Default sampling cadence: matches the router's mid-run metrics
/// cadence, so pushed registries and `Metrics` frames stay in step.
pub const DEFAULT_SAMPLE_EVERY_NS: u64 = 25_000_000;

/// Sampling intervals the flight recorder retains (~3 s at the default
/// cadence).
const FLIGHT_INTERVALS: usize = 128;

/// How often the scrape listener is probed for pending connections.
/// Service loops call [`NodeObs::poll_scrape`] every round, which on a
/// spin-heavy backend would be an `accept` syscall per round; pacing it
/// caps the idle endpoint at a clock comparison per round while adding
/// at most a millisecond to a scraper's wait.
const SCRAPE_POLL_EVERY_NS: u64 = 1_000_000;

/// Observability deployment knobs, normally read from the environment.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// The router's scrape bind address (`GROUTING_METRICS_ADDR`, e.g.
    /// `127.0.0.1:9464`; port 0 picks an ephemeral port). Processors and
    /// storage servers bind the same host on an ephemeral port. `None`
    /// serves no endpoints.
    pub metrics_addr: Option<String>,
    /// Dump every node's flight recorder at teardown
    /// (`GROUTING_OBS_DUMP`); fault events dump regardless.
    pub dump: bool,
    /// Sampling cadence in nanoseconds.
    pub sample_every_ns: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            metrics_addr: None,
            dump: false,
            sample_every_ns: DEFAULT_SAMPLE_EVERY_NS,
        }
    }
}

impl ObsConfig {
    /// Observability off: no sampling, no endpoints, no push frames.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Reads `GROUTING_METRICS_ADDR` and `GROUTING_OBS_DUMP`. Under
    /// `GROUTING_NO_SOCKETS=1` the scrape endpoints stay off (the
    /// sampler and push path still run when the dump flag asks for
    /// them).
    pub fn from_env() -> Self {
        let no_sockets =
            std::env::var("GROUTING_NO_SOCKETS").is_ok_and(|v| v == "1" || v == "true");
        let metrics_addr = match std::env::var("GROUTING_METRICS_ADDR") {
            Ok(addr) if !addr.is_empty() && !no_sockets => Some(addr),
            _ => None,
        };
        let dump = std::env::var("GROUTING_OBS_DUMP").is_ok_and(|v| !v.is_empty() && v != "0");
        Self {
            metrics_addr,
            dump,
            ..Self::default()
        }
    }

    /// Whether any node should run the sampler at all.
    pub fn enabled(&self) -> bool {
        self.metrics_addr.is_some() || self.dump
    }

    /// The bind address for one node's endpoint: the router gets the
    /// configured address (it is the cluster-wide scrape point), every
    /// other node the same host with an ephemeral port.
    fn listen_addr(&self, role: NodeRole) -> Option<String> {
        let configured = self.metrics_addr.as_deref()?;
        match role {
            NodeRole::Router => Some(configured.to_string()),
            _ => {
                let host = configured.rsplit_once(':').map_or("127.0.0.1", |(h, _)| h);
                Some(format!("{host}:0"))
            }
        }
    }
}

/// One node's registry, sampler, flight recorder, and scrape endpoint,
/// polled opportunistically from the node's own service loop.
#[derive(Debug)]
pub struct NodeObs {
    registry: Registry,
    recorder: FlightRecorder,
    scrape: Option<ScrapeServer>,
    sample_every_ns: u64,
    next_sample_ns: u64,
    next_scrape_poll_ns: u64,
    dump_at_teardown: bool,
    latest: Option<RegistrySnapshot>,
    fresh: bool,
    /// Latest pushed snapshot per (role, id) — populated on the router,
    /// rendered into its scrape so one request reads the whole cluster.
    pushed: BTreeMap<(u8, u16), RegistrySnapshot>,
}

impl NodeObs {
    /// Builds the bundle when `cfg` enables observability, `None`
    /// otherwise (the disabled path costs callers one `is_some` check).
    /// A bind failure warns and degrades to sampling without a local
    /// endpoint rather than killing the node.
    pub fn new(role: NodeRole, id: u16, cfg: &ObsConfig) -> Option<Self> {
        if !cfg.enabled() {
            return None;
        }
        let scrape = cfg
            .listen_addr(role)
            .and_then(|addr| match ScrapeServer::bind(&addr) {
                Ok(s) => Some(s),
                Err(e) => {
                    log_warn!(
                        "{} could not bind scrape endpoint {addr}: {e}; serving none",
                        role.node_name(id)
                    );
                    None
                }
            });
        Some(Self {
            registry: Registry::new(role, id),
            recorder: FlightRecorder::new(FLIGHT_INTERVALS),
            scrape,
            sample_every_ns: cfg.sample_every_ns.max(1),
            next_sample_ns: 0,
            next_scrape_poll_ns: 0,
            dump_at_teardown: cfg.dump,
            latest: None,
            fresh: false,
            pushed: BTreeMap::new(),
        })
    }

    /// The `role-id` name of this node.
    pub fn node_name(&self) -> String {
        self.registry.role().node_name(self.registry.id())
    }

    /// Where this node's exposition is served, when it is.
    pub fn scrape_addr(&self) -> Option<SocketAddr> {
        self.scrape.as_ref().map(ScrapeServer::addr)
    }

    /// Samples if the cadence says so: `fill` repopulates the registry
    /// from the node's authoritative stats, the flight recorder diffs
    /// the result, and the snapshot becomes available to [`take_push`].
    /// Returns whether a sample was taken.
    ///
    /// [`take_push`]: NodeObs::take_push
    pub fn maybe_sample(&mut self, now_ns: u64, fill: impl FnOnce(&mut Registry)) -> bool {
        if now_ns < self.next_sample_ns {
            return false;
        }
        self.next_sample_ns = now_ns + self.sample_every_ns;
        self.registry.begin(now_ns);
        fill(&mut self.registry);
        let snap = self.registry.snapshot();
        self.recorder.record(&snap);
        self.latest = Some(snap);
        self.fresh = true;
        true
    }

    /// The newest snapshot, if one hasn't been pushed yet — processors
    /// and storage servers forward it to the router as an `ObsPush`.
    pub fn take_push(&mut self) -> Option<RegistrySnapshot> {
        if !self.fresh {
            return None;
        }
        self.fresh = false;
        self.latest.clone()
    }

    /// Folds a pushed snapshot in (router side), replacing any previous
    /// one from the same node.
    pub fn absorb_push(&mut self, snap: RegistrySnapshot) {
        self.pushed.insert((snap.role.as_u8(), snap.id), snap);
    }

    /// Answers any pending scrapes with this node's series plus every
    /// pushed registry (cluster-wide on the router, local elsewhere).
    /// Paced by [`SCRAPE_POLL_EVERY_NS`], so the per-round cost with no
    /// scraper attached is one comparison, not a syscall.
    pub fn poll_scrape(&mut self, now_ns: u64) {
        if now_ns < self.next_scrape_poll_ns {
            return;
        }
        self.next_scrape_poll_ns = now_ns + SCRAPE_POLL_EVERY_NS;
        let Some(scrape) = self.scrape.as_mut() else {
            return;
        };
        let latest = &self.latest;
        let pushed = &self.pushed;
        scrape.poll(|| {
            let mut snaps: Vec<&RegistrySnapshot> = Vec::with_capacity(1 + pushed.len());
            snaps.extend(latest.iter());
            snaps.extend(pushed.values());
            render_prometheus(&snaps)
        });
    }

    /// Dumps the flight recorder through the logger (fault events call
    /// this directly; teardown calls it when `GROUTING_OBS_DUMP` asked).
    pub fn dump(&self, reason: &str) {
        self.recorder.dump(&self.node_name(), reason);
    }

    /// Dumps at teardown when configured to.
    pub fn teardown(&self) {
        if self.dump_at_teardown {
            self.dump("teardown");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_cfg(dump: bool) -> ObsConfig {
        ObsConfig {
            metrics_addr: None,
            dump,
            sample_every_ns: 1_000,
        }
    }

    #[test]
    fn disabled_config_builds_nothing() {
        assert!(NodeObs::new(NodeRole::Router, 0, &ObsConfig::disabled()).is_none());
        assert!(!ObsConfig::disabled().enabled());
    }

    #[test]
    fn sampler_honours_cadence_and_feeds_push() {
        let mut obs = NodeObs::new(NodeRole::Processor, 1, &obs_cfg(true)).unwrap();
        assert!(obs.maybe_sample(0, |r| r.counter("grouting_queries_total", 1)));
        assert!(
            !obs.maybe_sample(500, |_| panic!("sampled before cadence")),
            "cadence is 1µs"
        );
        assert!(obs.maybe_sample(1_000, |r| r.counter("grouting_queries_total", 2)));
        let push = obs.take_push().expect("fresh sample pushes");
        assert_eq!(push.samples[0].value, 2.0);
        assert!(obs.take_push().is_none(), "one push per sample");
    }

    #[test]
    fn router_renders_pushed_registries() {
        let mut router = NodeObs::new(NodeRole::Router, 0, &obs_cfg(true)).unwrap();
        let mut proc = NodeObs::new(NodeRole::Processor, 3, &obs_cfg(true)).unwrap();
        proc.maybe_sample(10, |r| r.counter("grouting_cache_hits_total", 7));
        router.absorb_push(proc.take_push().unwrap());
        // Re-push from the same node replaces, not appends.
        proc.maybe_sample(2_000, |r| r.counter("grouting_cache_hits_total", 9));
        router.absorb_push(proc.take_push().unwrap());
        assert_eq!(router.pushed.len(), 1);
        assert_eq!(router.pushed.values().next().unwrap().samples[0].value, 9.0);
        router.teardown();
    }

    #[test]
    fn listen_addr_routes_by_role() {
        let cfg = ObsConfig {
            metrics_addr: Some("127.0.0.1:9464".to_string()),
            dump: false,
            sample_every_ns: 1,
        };
        assert_eq!(
            cfg.listen_addr(NodeRole::Router).as_deref(),
            Some("127.0.0.1:9464")
        );
        assert_eq!(
            cfg.listen_addr(NodeRole::Storage).as_deref(),
            Some("127.0.0.1:0")
        );
        assert_eq!(ObsConfig::disabled().listen_addr(NodeRole::Router), None);
    }
}
