//! Cluster observability: one metrics registry, sampled and scrapeable.
//!
//! Every gRouting runtime accumulates statistics in purpose-built structs
//! — `StageStats`, `TelemetryCounters`, `PrefetchStats`, `FailoverStats`,
//! the cache counters, and (new with this layer) the workload
//! [`grouting_metrics::HeatMap`]s. Those structs stay authoritative: they
//! are deterministic, they cross the wire in snapshots, and the agreement
//! tests pin them byte-identical with observability on or off. What they
//! lacked was a *live, uniform* view: nothing could read a node's counters
//! mid-run without knowing every struct's shape.
//!
//! This crate is that view:
//!
//! * [`Registry`] — a named-series sink (counters and gauges, plus
//!   histogram quantiles flattened to gauges). On each sampling tick a
//!   node fills the registry from its authoritative structs through one
//!   absorb API; the registry never feeds back into them.
//! * [`RegistrySnapshot`] — a registry's current series in a compact wire
//!   encoding, pushed by processors and storage servers to the router so
//!   one scrape reads the whole cluster.
//! * [`FlightRecorder`] — a bounded ring of per-interval counter deltas,
//!   dumped through the logger on fault events or at teardown when
//!   `GROUTING_OBS_DUMP` is set: the last seconds of a node's life,
//!   attributable even after it died.
//! * [`ScrapeServer`] — a non-blocking TCP listener serving the
//!   Prometheus-style plain-text exposition ([`render_prometheus`]),
//!   polled from the node's own service loop (`GROUTING_METRICS_ADDR`).
//! * [`NodeObs`] — the per-node bundle gluing the above to a service
//!   loop: cadenced sampling, scrape polling, and push bookkeeping.
//!
//! Observability **observes**; it never steers. With sampling off the
//! hot paths and every frame on the wire are byte-identical.

pub mod node;
pub mod recorder;
pub mod registry;
pub mod scrape;

pub use node::{NodeObs, ObsConfig, DEFAULT_SAMPLE_EVERY_NS};
pub use recorder::{FlightFrame, FlightRecorder};
pub use registry::{render_prometheus, Registry, RegistrySnapshot, Sample, SampleKind};
pub use scrape::ScrapeServer;

/// Which tier a node belongs to — the top-level identity of every
/// registry snapshot and scrape series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    /// The router: dispatch, aggregation, and the cluster-wide scrape
    /// point.
    Router,
    /// A query processor.
    Processor,
    /// A storage server.
    Storage,
}

impl NodeRole {
    /// The lowercase name used in labels and log prefixes.
    pub fn as_str(self) -> &'static str {
        match self {
            NodeRole::Router => "router",
            NodeRole::Processor => "proc",
            NodeRole::Storage => "storage",
        }
    }

    /// Wire tag for this role.
    pub fn as_u8(self) -> u8 {
        match self {
            NodeRole::Router => 0,
            NodeRole::Processor => 1,
            NodeRole::Storage => 2,
        }
    }

    /// Decodes a wire tag.
    ///
    /// # Errors
    ///
    /// Returns an error message on an unknown tag.
    pub fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(NodeRole::Router),
            1 => Ok(NodeRole::Processor),
            2 => Ok(NodeRole::Storage),
            other => Err(format!("unknown node role tag {other}")),
        }
    }

    /// The `role-id` spelling used as the `node` label and log role
    /// (`router` stays bare: there is one).
    pub fn node_name(self, id: u16) -> String {
        match self {
            NodeRole::Router => "router".to_string(),
            _ => format!("{}-{id}", self.as_str()),
        }
    }
}

impl std::fmt::Display for NodeRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_tags_round_trip() {
        for role in [NodeRole::Router, NodeRole::Processor, NodeRole::Storage] {
            assert_eq!(NodeRole::from_u8(role.as_u8()).unwrap(), role);
        }
        assert!(NodeRole::from_u8(7).is_err());
    }

    #[test]
    fn node_names_are_attributable() {
        assert_eq!(NodeRole::Router.node_name(0), "router");
        assert_eq!(NodeRole::Processor.node_name(3), "proc-3");
        assert_eq!(NodeRole::Storage.node_name(1), "storage-1");
    }
}
