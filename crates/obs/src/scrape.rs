//! The scrape endpoint: a non-blocking TCP listener serving the
//! plain-text exposition.
//!
//! Deliberately not a general HTTP server: every connection gets one
//! `200 OK` with the current exposition and is closed, whatever it asked
//! for. The listener is polled from the node's own service loop — no
//! extra thread, no reactor registration — so a node that is busy
//! serving queries answers scrapes between poll rounds, and an idle node
//! answers them on its idle-wait cadence.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use grouting_metrics::{log_debug, log_warn};

/// How long one scrape connection may hold the service loop. Scrapers
/// that feed slower than this get a truncated response rather than a
/// stalled cluster.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_millis(100);

/// A bound, non-blocking exposition listener.
#[derive(Debug)]
pub struct ScrapeServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl ScrapeServer {
    /// Binds `addr` (`host:port`; port 0 picks an ephemeral port) and
    /// switches the listener to non-blocking accepts.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Self { listener, addr })
    }

    /// The actual bound address (resolves a `:0` request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts and answers every pending scrape. `render` is called once
    /// per poll that found at least one connection, so an idle endpoint
    /// costs one failed `accept` and no rendering.
    pub fn poll(&mut self, render: impl FnOnce() -> String) {
        let mut render = Some(render);
        let mut body: Option<String> = None;
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let text = body.get_or_insert_with(|| render.take().expect("rendered once")());
                    log_debug!("serving scrape to {peer}");
                    Self::serve(stream, text);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) => {
                    log_warn!("scrape accept failed: {e}");
                    return;
                }
            }
        }
    }

    fn serve(mut stream: TcpStream, body: &str) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(SCRAPE_IO_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SCRAPE_IO_TIMEOUT));
        // Drain whatever request line arrived (best-effort; the response
        // is the same for every path).
        let mut req = [0u8; 1024];
        let _ = stream.read(&mut req);
        let header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream
            .write_all(header.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()));
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape_once(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_the_rendered_body_per_connection() {
        let mut server = match ScrapeServer::bind("127.0.0.1:0") {
            Ok(s) => s,
            // Sandboxes without loopback sockets skip this test the same
            // way the wire tests do.
            Err(_) => return,
        };
        assert_ne!(server.addr().port(), 0);

        // No pending connection: render must not run.
        server.poll(|| panic!("rendered without a connection"));

        let addr = server.addr();
        let client = std::thread::spawn(move || scrape_once(addr, "GET /metrics HTTP/1.1\r\n\r\n"));
        // Poll until the connection lands (the client races our accept).
        let mut served = false;
        for _ in 0..200 {
            let mut rendered = false;
            server.poll(|| {
                rendered = true;
                "grouting_up 1\n".to_string()
            });
            if rendered {
                served = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(served, "scrape connection never arrived");
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain"));
        assert!(response.ends_with("grouting_up 1\n"), "{response}");
    }
}
