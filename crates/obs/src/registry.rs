//! The named-series registry and its wire snapshot.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use grouting_metrics::{DecayingHeat, FailoverStats, HeatMap, Histogram};
use grouting_trace::{ReactorStats, Stage, StageStats};

use crate::NodeRole;

/// How a series behaves over time — what a scraper may assume about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonically non-decreasing (rates come from deltas).
    Counter,
    /// A point-in-time level that can move both ways.
    Gauge,
}

impl SampleKind {
    fn as_u8(self) -> u8 {
        match self {
            SampleKind::Counter => 0,
            SampleKind::Gauge => 1,
        }
    }

    fn from_u8(v: u8) -> Result<Self, String> {
        match v {
            0 => Ok(SampleKind::Counter),
            1 => Ok(SampleKind::Gauge),
            other => Err(format!("unknown sample kind tag {other}")),
        }
    }
}

/// One named series value at one sampling instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name (`grouting_*` snake_case, Prometheus-compatible).
    pub name: String,
    /// Label pairs beyond the implicit `node` label.
    pub labels: Vec<(String, String)>,
    /// Counter or gauge.
    pub kind: SampleKind,
    /// The sampled value (counters are integral, stored as `f64` so one
    /// slot fits both kinds).
    pub value: f64,
}

impl Sample {
    /// The `name{k="v",...}` key identifying this series across samples.
    pub fn series_key(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A node's registry: every series the node exposes, refilled from the
/// authoritative stat structs on each sampling tick.
///
/// The registry is a sink, not a store of truth — `begin` clears it, the
/// absorb helpers and `counter`/`gauge` repopulate it, and `snapshot`
/// freezes the result for pushing or scraping. That keeps the hot paths
/// untouched: nothing in the query pipeline ever writes here.
#[derive(Debug, Clone)]
pub struct Registry {
    role: NodeRole,
    id: u16,
    at_ns: u64,
    samples: Vec<Sample>,
}

impl Registry {
    /// An empty registry for one node.
    pub fn new(role: NodeRole, id: u16) -> Self {
        Self {
            role,
            id,
            at_ns: 0,
            samples: Vec::new(),
        }
    }

    /// The node's tier.
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// The node's id within its tier.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Starts a new sampling interval at `now_ns`, clearing all series.
    pub fn begin(&mut self, now_ns: u64) {
        self.at_ns = now_ns;
        self.samples.clear();
    }

    /// Registers a counter series without labels.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counter_with(name, &[], value);
    }

    /// Registers a counter series with labels.
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.push(name, labels, SampleKind::Counter, value as f64);
    }

    /// Registers a gauge series without labels.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauge_with(name, &[], value);
    }

    /// Registers a gauge series with labels.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.push(name, labels, SampleKind::Gauge, value);
    }

    fn push(&mut self, name: &str, labels: &[(&str, &str)], kind: SampleKind, value: f64) {
        self.samples.push(Sample {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
            value,
        });
    }

    /// Absorbs per-stage latency histograms: a count counter plus
    /// `p50/p99/p999` quantile gauges per stage.
    pub fn absorb_stages(&mut self, stages: &StageStats) {
        for stage in Stage::ALL {
            let h = stages.stage(stage);
            self.counter_with(
                "grouting_stage_observations_total",
                &[("stage", stage.name())],
                h.count(),
            );
            self.absorb_quantiles("grouting_stage_latency_ns", &[("stage", stage.name())], h);
        }
    }

    /// Absorbs one histogram as quantile gauges (skipped while empty).
    pub fn absorb_quantiles(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        for (q, v) in [("p50", h.p50()), ("p99", h.p99()), ("p999", h.p999())] {
            if let Some(v) = v {
                let mut labelled: Vec<(&str, &str)> = labels.to_vec();
                labelled.push(("quantile", q));
                self.gauge_with(name, &labelled, v as f64);
            }
        }
    }

    /// Absorbs reactor/connection telemetry totals.
    pub fn absorb_reactor(&mut self, r: &ReactorStats) {
        self.counter("grouting_reactor_busy_ns_total", r.busy_ns);
        self.counter("grouting_reactor_idle_ns_total", r.idle_ns);
        self.counter("grouting_reactor_frames_in_total", r.frames_in);
        self.counter("grouting_reactor_frames_out_total", r.frames_out);
        self.counter("grouting_reactor_bytes_in_total", r.bytes_in);
        self.counter("grouting_reactor_bytes_out_total", r.bytes_out);
        self.counter("grouting_reactor_batches_total", r.batches_submitted);
        self.gauge(
            "grouting_reactor_batch_depth_peak",
            r.batch_depth_peak as f64,
        );
        self.counter("grouting_pool_checkouts_total", r.pool_checkouts);
        self.counter("grouting_pool_reused_total", r.pool_reused);
        self.gauge("grouting_pool_peak_free", r.pool_peak_free as f64);
    }

    /// Absorbs cache demand accounting.
    pub fn absorb_cache(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.counter("grouting_cache_hits_total", hits);
        self.counter("grouting_cache_misses_total", misses);
        self.counter("grouting_cache_evictions_total", evictions);
    }

    /// Absorbs speculative-prefetch accounting.
    pub fn absorb_prefetch(&mut self, issued: u64, hits: u64, wasted_bytes: u64) {
        self.counter("grouting_prefetch_issued_total", issued);
        self.counter("grouting_prefetch_hits_total", hits);
        self.counter("grouting_prefetch_wasted_bytes_total", wasted_bytes);
    }

    /// Absorbs failover/recovery bookkeeping.
    pub fn absorb_failover(&mut self, f: &FailoverStats) {
        self.counter("grouting_failover_redials_total", f.redials);
        self.counter("grouting_failover_replica_total", f.replica_failovers);
        self.counter(
            "grouting_failover_batches_resubmitted_total",
            f.batches_resubmitted,
        );
    }

    /// Absorbs a cumulative heatmap as per-slot demand/speculative
    /// counters; `slot_label` is `"partition"` or `"region"`.
    pub fn absorb_heat(&mut self, slot_label: &str, heat: &HeatMap) {
        for (slot, cell) in heat.cells().iter().enumerate() {
            let slot_s = slot.to_string();
            self.counter_with(
                &format!("grouting_{slot_label}_demand_total"),
                &[(slot_label, &slot_s)],
                cell.demand,
            );
            self.counter_with(
                &format!("grouting_{slot_label}_speculative_total"),
                &[(slot_label, &slot_s)],
                cell.speculative,
            );
        }
    }

    /// Absorbs a decayed heat view as per-slot gauges — the
    /// recency-weighted signal a re-placement policy reads.
    pub fn absorb_decayed_heat(&mut self, slot_label: &str, view: &DecayingHeat) {
        for (slot, (&d, &s)) in view.demand().iter().zip(view.speculative()).enumerate() {
            let slot_s = slot.to_string();
            self.gauge_with(
                &format!("grouting_{slot_label}_heat"),
                &[(slot_label, &slot_s), ("kind", "demand")],
                d,
            );
            self.gauge_with(
                &format!("grouting_{slot_label}_heat"),
                &[(slot_label, &slot_s), ("kind", "speculative")],
                s,
            );
        }
    }

    /// Freezes the current series into a pushable/scrapable snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            role: self.role,
            id: self.id,
            at_ns: self.at_ns,
            samples: self.samples.clone(),
        }
    }
}

/// A registry's series at one instant, in a wire-encodable form — the
/// payload of `ObsPush` frames.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// The node's tier.
    pub role: NodeRole,
    /// The node's id within its tier.
    pub id: u16,
    /// When the sample was taken (node-local monotonic nanoseconds).
    pub at_ns: u64,
    /// The series values.
    pub samples: Vec<Sample>,
}

/// Longest accepted name/label string on decode — an allocation guard,
/// far above anything the registry emits.
const MAX_STR: usize = 4096;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes) -> Result<String, String> {
    if data.remaining() < 2 {
        return Err("string length truncated".to_string());
    }
    let len = data.get_u16_le() as usize;
    if len > MAX_STR {
        return Err(format!("string of {len} bytes exceeds {MAX_STR}"));
    }
    if data.remaining() < len {
        return Err(format!(
            "string needs {len} bytes, have {}",
            data.remaining()
        ));
    }
    let raw = data.slice(0..len).to_vec();
    data.advance(len);
    String::from_utf8(raw).map_err(|_| "string is not UTF-8".to_string())
}

impl RegistrySnapshot {
    /// Encoded size in bytes (matches what `encode_into` appends).
    pub fn encoded_len(&self) -> usize {
        let mut len = 1 + 2 + 8 + 4;
        for s in &self.samples {
            len += 2 + s.name.len() + 1 + 1 + 8;
            for (k, v) in &s.labels {
                len += 2 + k.len() + 2 + v.len();
            }
        }
        len
    }

    /// Appends the little-endian wire layout.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u8(self.role.as_u8());
        buf.put_u16_le(self.id);
        buf.put_u64_le(self.at_ns);
        buf.put_u32_le(self.samples.len() as u32);
        for s in &self.samples {
            put_str(buf, &s.name);
            buf.put_u8(s.kind.as_u8());
            buf.put_u8(s.labels.len() as u8);
            for (k, v) in &s.labels {
                put_str(buf, k);
                put_str(buf, v);
            }
            buf.put_u64_le(s.value.to_bits());
        }
    }

    /// Encodes to a standalone buffer.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Decodes one snapshot from the front of `data`, consuming exactly
    /// its own bytes.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on truncated or invalid
    /// input.
    pub fn decode_prefix(data: &mut Bytes) -> Result<Self, String> {
        if data.remaining() < 1 + 2 + 8 + 4 {
            return Err(format!(
                "registry snapshot header needs 15 bytes, have {}",
                data.remaining()
            ));
        }
        let role = NodeRole::from_u8(data.get_u8())?;
        let id = data.get_u16_le();
        let at_ns = data.get_u64_le();
        let n = data.get_u32_le() as usize;
        // Each sample takes at least 12 bytes (empty name, no labels), so
        // a hostile count cannot force a huge allocation.
        if data.remaining() < n.saturating_mul(12) {
            return Err(format!(
                "registry snapshot claims {n} samples in {} bytes",
                data.remaining()
            ));
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let name = get_str(data)?;
            if !data.has_remaining() {
                return Err("sample kind truncated".to_string());
            }
            let kind = SampleKind::from_u8(data.get_u8())?;
            if !data.has_remaining() {
                return Err("sample label count truncated".to_string());
            }
            let nlabels = data.get_u8() as usize;
            let mut labels = Vec::with_capacity(nlabels);
            for _ in 0..nlabels {
                let k = get_str(data)?;
                let v = get_str(data)?;
                labels.push((k, v));
            }
            if data.remaining() < 8 {
                return Err("sample value truncated".to_string());
            }
            let value = f64::from_bits(data.get_u64_le());
            samples.push(Sample {
                name,
                labels,
                kind,
                value,
            });
        }
        Ok(Self {
            role,
            id,
            at_ns,
            samples,
        })
    }

    /// Decodes from the wire layout, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// See [`RegistrySnapshot::decode_prefix`].
    pub fn decode(mut data: Bytes) -> Result<Self, String> {
        let snapshot = Self::decode_prefix(&mut data)?;
        if data.has_remaining() {
            return Err(format!(
                "{} trailing bytes after registry snapshot",
                data.remaining()
            ));
        }
        Ok(snapshot)
    }
}

/// Renders snapshots as the Prometheus plain-text exposition: every
/// series gets the implicit `node="role-id"` label, `# TYPE` comments
/// are emitted once per metric name, and counters print as integers.
pub fn render_prometheus(snapshots: &[&RegistrySnapshot]) -> String {
    use std::collections::HashSet;
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut typed: HashSet<&str> = HashSet::new();
    for snap in snapshots {
        let node = snap.role.node_name(snap.id);
        for s in &snap.samples {
            if typed.insert(s.name.as_str()) {
                let kind = match s.kind {
                    SampleKind::Counter => "counter",
                    SampleKind::Gauge => "gauge",
                };
                let _ = writeln!(out, "# TYPE {} {kind}", s.name);
            }
            let mut labels = format!("node=\"{node}\"");
            for (k, v) in &s.labels {
                let _ = write!(labels, ",{k}=\"{v}\"");
            }
            match s.kind {
                SampleKind::Counter => {
                    let _ = writeln!(out, "{}{{{labels}}} {}", s.name, s.value as u64);
                }
                SampleKind::Gauge => {
                    let _ = writeln!(out, "{}{{{labels}}} {}", s.name, s.value);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(NodeRole::Processor, 2);
        r.begin(1_000);
        r.absorb_cache(80, 20, 3);
        r.absorb_prefetch(10, 7, 512);
        r.absorb_failover(&FailoverStats {
            redials: 1,
            replica_failovers: 0,
            batches_resubmitted: 2,
        });
        let mut heat = HeatMap::new();
        heat.record_demand(0, 15);
        heat.record_speculative(1, 4);
        r.absorb_heat("partition", &heat);
        r
    }

    #[test]
    fn registry_fills_and_clears() {
        let mut r = sample_registry();
        let snap = r.snapshot();
        assert_eq!(snap.role, NodeRole::Processor);
        assert_eq!(snap.id, 2);
        assert_eq!(snap.at_ns, 1_000);
        assert!(snap.samples.len() >= 9);
        r.begin(2_000);
        assert!(r.snapshot().samples.is_empty(), "begin clears the interval");
    }

    #[test]
    fn absorb_stages_emits_counts_and_quantiles() {
        let mut stages = StageStats::new();
        stages.record(Stage::Compute, 1_000);
        stages.record(Stage::Compute, 2_000);
        let mut r = Registry::new(NodeRole::Router, 0);
        r.begin(0);
        r.absorb_stages(&stages);
        let snap = r.snapshot();
        let compute_count = snap
            .samples
            .iter()
            .find(|s| {
                s.name == "grouting_stage_observations_total"
                    && s.labels.contains(&("stage".into(), "compute".into()))
            })
            .expect("compute count series");
        assert_eq!(compute_count.value, 2.0);
        assert!(snap.samples.iter().any(|s| {
            s.name == "grouting_stage_latency_ns"
                && s.labels.contains(&("quantile".into(), "p50".into()))
        }));
        // Empty stages have no quantiles, only zero counts.
        assert!(!snap.samples.iter().any(|s| s
            .labels
            .contains(&("stage".into(), "router_queue".into()))
            && s.name == "grouting_stage_latency_ns"));
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample_registry().snapshot();
        let bytes = snap.encode();
        assert_eq!(bytes.len(), snap.encoded_len());
        assert_eq!(RegistrySnapshot::decode(bytes).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let bytes = sample_registry().snapshot().encode();
        for cut in 0..bytes.len() {
            assert!(
                RegistrySnapshot::decode(bytes.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
        let mut raw = bytes.to_vec();
        raw.push(0);
        assert!(RegistrySnapshot::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn decode_rejects_hostile_sample_count() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u16_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(u32::MAX);
        assert!(RegistrySnapshot::decode(buf.freeze()).is_err());
    }

    #[test]
    fn prometheus_rendering_is_scrapeable() {
        let proc_snap = sample_registry().snapshot();
        let mut router = Registry::new(NodeRole::Router, 0);
        router.begin(5_000);
        router.counter("grouting_queries_total", 100);
        let router_snap = router.snapshot();
        let text = render_prometheus(&[&router_snap, &proc_snap]);
        assert!(text.contains("# TYPE grouting_queries_total counter"));
        assert!(text.contains("grouting_queries_total{node=\"router\"} 100"));
        assert!(text.contains("grouting_cache_hits_total{node=\"proc-2\"} 80"));
        assert!(
            text.contains("grouting_partition_demand_total{node=\"proc-2\",partition=\"0\"} 15")
        );
        // One TYPE line per metric name, not per series.
        assert_eq!(
            text.matches("# TYPE grouting_partition_demand_total")
                .count(),
            1
        );
    }

    #[test]
    fn series_key_includes_labels() {
        let s = Sample {
            name: "x_total".into(),
            labels: vec![("a".into(), "1".into())],
            kind: SampleKind::Counter,
            value: 0.0,
        };
        assert_eq!(s.series_key(), "x_total{a=\"1\"}");
    }

    proptest::proptest! {
        #[test]
        fn prop_snapshot_round_trips(
            role_tag in 0u8..3,
            id in 0u16..64,
            at_ns in 0u64..1 << 60,
            samples in proptest::collection::vec(
                (proptest::num::u64::ANY, 0usize..4, proptest::bool::ANY, 0.0f64..1e12),
                0..12,
            ),
        ) {
            let snap = RegistrySnapshot {
                role: NodeRole::from_u8(role_tag).unwrap(),
                id,
                at_ns,
                samples: samples
                    .into_iter()
                    .map(|(seed, nlabels, counter, value)| Sample {
                        name: format!("grouting_series_{:x}_total", seed & 0xFFFF),
                        labels: (0..nlabels)
                            .map(|i| (format!("k{i}"), format!("v{:x}", (seed >> (8 * i)) & 0xFF)))
                            .collect(),
                        kind: if counter { SampleKind::Counter } else { SampleKind::Gauge },
                        value,
                    })
                    .collect(),
            };
            let bytes = snap.encode();
            proptest::prop_assert_eq!(bytes.len(), snap.encoded_len());
            proptest::prop_assert_eq!(RegistrySnapshot::decode(bytes).unwrap(), snap);
        }
    }
}
