//! The flight recorder: a bounded ring of per-interval counter deltas.
//!
//! Each sampling tick feeds the node's fresh [`RegistrySnapshot`] in;
//! the recorder diffs counters against the previous tick and retains the
//! interval's non-zero movement. When a node dies, a chaos event fires,
//! or teardown runs with `GROUTING_OBS_DUMP` set, the ring is dumped
//! through the logger — the last seconds of the node's life, without
//! having scraped it in time.

use std::collections::{HashMap, VecDeque};

use grouting_metrics::log_warn;

use crate::registry::{RegistrySnapshot, SampleKind};

/// One sampling interval's counter movement.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightFrame {
    /// When the interval ended (node-local monotonic nanoseconds).
    pub at_ns: u64,
    /// `(series key, delta)` for every counter that moved this interval.
    pub deltas: Vec<(String, f64)>,
}

/// A bounded ring of [`FlightFrame`]s with an overflow counter.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    prev: HashMap<String, f64>,
    frames: VecDeque<FlightFrame>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` intervals (0 keeps none).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            ..Self::default()
        }
    }

    /// Folds one sampling tick in: counters diff against the previous
    /// tick, and the interval is retained when anything moved.
    pub fn record(&mut self, snap: &RegistrySnapshot) {
        let mut deltas = Vec::new();
        for s in &snap.samples {
            if s.kind != SampleKind::Counter {
                continue;
            }
            let key = s.series_key();
            let prev = self.prev.insert(key.clone(), s.value).unwrap_or(0.0);
            let delta = s.value - prev;
            if delta != 0.0 {
                deltas.push((key, delta));
            }
        }
        if self.cap == 0 || deltas.is_empty() {
            return;
        }
        if self.frames.len() == self.cap {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(FlightFrame {
            at_ns: snap.at_ns,
            deltas,
        });
    }

    /// Retained intervals, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &FlightFrame> {
        self.frames.iter()
    }

    /// Intervals retained right now.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Intervals evicted past capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes the retained intervals through the logger, newest last.
    /// `node` attributes the dump, `reason` says what triggered it.
    pub fn dump(&self, node: &str, reason: &str) {
        log_warn!(
            "flight recorder dump for {node} ({reason}): {} intervals retained, {} evicted",
            self.frames.len(),
            self.dropped
        );
        for frame in &self.frames {
            let line: Vec<String> = frame
                .deltas
                .iter()
                .map(|(k, d)| format!("{k} +{d}"))
                .collect();
            log_warn!("  [{:>12} ns] {}", frame.at_ns, line.join(", "));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::NodeRole;

    fn tick(reg: &mut Registry, at_ns: u64, hits: u64, depth: f64) -> RegistrySnapshot {
        reg.begin(at_ns);
        reg.counter("grouting_cache_hits_total", hits);
        reg.gauge("grouting_queue_depth", depth);
        reg.snapshot()
    }

    #[test]
    fn records_counter_deltas_not_gauges() {
        let mut reg = Registry::new(NodeRole::Processor, 0);
        let mut rec = FlightRecorder::new(8);
        rec.record(&tick(&mut reg, 100, 10, 5.0));
        rec.record(&tick(&mut reg, 200, 25, 7.0));
        assert_eq!(rec.len(), 2);
        let frames: Vec<&FlightFrame> = rec.frames().collect();
        assert_eq!(
            frames[0].deltas,
            vec![("grouting_cache_hits_total".to_string(), 10.0)]
        );
        assert_eq!(
            frames[1].deltas,
            vec![("grouting_cache_hits_total".to_string(), 15.0)]
        );
    }

    #[test]
    fn quiet_intervals_are_not_retained() {
        let mut reg = Registry::new(NodeRole::Storage, 1);
        let mut rec = FlightRecorder::new(8);
        rec.record(&tick(&mut reg, 100, 10, 0.0));
        rec.record(&tick(&mut reg, 200, 10, 0.0));
        rec.record(&tick(&mut reg, 300, 12, 0.0));
        assert_eq!(rec.len(), 2, "the flat interval is skipped");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut reg = Registry::new(NodeRole::Router, 0);
        let mut rec = FlightRecorder::new(2);
        for i in 1..=5u64 {
            rec.record(&tick(&mut reg, i * 100, i * 10, 0.0));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert!(!rec.is_empty());
        rec.dump("router", "test");
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut reg = Registry::new(NodeRole::Router, 0);
        let mut rec = FlightRecorder::new(0);
        rec.record(&tick(&mut reg, 100, 10, 0.0));
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
    }
}
