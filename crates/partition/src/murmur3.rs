//! MurmurHash3, implemented from scratch.
//!
//! RAMCloud — the paper's storage tier — hashes keys with MurmurHash3 to
//! pick the owning storage server, and gRouting's hash partitioning uses
//! "RAMCloud's default and inexpensive hash partitioning scheme,
//! MurmurHash3 over graph nodes" (§4.1). Both the 32-bit x86 variant (used
//! for partitioning) and the 128-bit x64 variant (used by the log-structured
//! store's hash index) are provided, matching Austin Appleby's reference
//! output (verified against published test vectors in the tests below).

/// MurmurHash3 x86 32-bit.
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let chunks = data.chunks_exact(4);
    let tail = chunks.remainder();

    for chunk in chunks {
        let mut k1 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let mut k1 = 0u32;
    if !tail.is_empty() {
        for (i, &b) in tail.iter().enumerate() {
            k1 ^= (b as u32) << (8 * i);
        }
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// MurmurHash3 x64 128-bit; returns `(low, high)` halves.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed;
    let mut h2 = seed;
    let chunks = data.chunks_exact(16);
    let tail = chunks.remainder();

    for chunk in chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let mut k1 = 0u64;
    let mut k2 = 0u64;
    for i in (0..tail.len()).rev() {
        let b = tail[i] as u64;
        if i >= 8 {
            k2 ^= b << (8 * (i - 8));
        } else {
            k1 ^= b << (8 * i);
        }
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Hashes a `u32` node id (little-endian bytes) with the 32-bit variant.
#[inline]
pub fn hash_node(id: u32, seed: u32) -> u32 {
    murmur3_x86_32(&id.to_le_bytes(), seed)
}

fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from Appleby's SMHasher / widely published values.
    #[test]
    fn x86_32_reference_vectors() {
        assert_eq!(murmur3_x86_32(b"", 0), 0);
        assert_eq!(murmur3_x86_32(b"", 1), 0x514E28B7);
        assert_eq!(murmur3_x86_32(b"", 0xffffffff), 0x81F16F39);
        assert_eq!(murmur3_x86_32(b"test", 0), 0xba6bd213);
        assert_eq!(murmur3_x86_32(b"Hello, world!", 0), 0xc0363e43);
        assert_eq!(
            murmur3_x86_32(b"The quick brown fox jumps over the lazy dog", 0),
            0x2e4ff723
        );
        assert_eq!(murmur3_x86_32(&[0xff, 0xff, 0xff, 0xff], 0), 0x76293B50);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65, 0x87], 0), 0xF55B516B);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43, 0x65], 0), 0x7E4A8634);
        assert_eq!(murmur3_x86_32(&[0x21, 0x43], 0), 0xA0F7B07A);
        assert_eq!(murmur3_x86_32(&[0x21], 0), 0x72661CF4);
    }

    #[test]
    fn x64_128_reference_vectors() {
        // Published vector: empty input, zero seed hashes to zero.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        // "Hello, world!" with seed 0: canonical digest
        // f1512dd1d2d665df 2c326650a8f3c564 (h1 and h2 printed big-endian).
        let (h1, h2) = murmur3_x64_128(b"Hello, world!", 0);
        assert_eq!(h1, 0xf151_2dd1_d2d6_65df);
        assert_eq!(h2, 0x2c32_6650_a8f3_c564);
    }

    #[test]
    fn x64_128_seed_sensitivity() {
        let a = murmur3_x64_128(b"graph", 0);
        let b = murmur3_x64_128(b"graph", 1);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_node_spreads() {
        // Consecutive ids should land far apart — that is the point of
        // hashing before modulo.
        let h0 = hash_node(0, 0);
        let h1 = hash_node(1, 0);
        let h2 = hash_node(2, 0);
        assert_ne!(h0 % 7, h1 % 7);
        assert_ne!(h0, h2);
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let trials = 256;
        for i in 0..trials {
            let a = hash_node(i, 7);
            let b = hash_node(i ^ 1, 7);
            total += (a ^ b).count_ones();
        }
        let mean = total as f64 / trials as f64;
        assert!((10.0..22.0).contains(&mean), "mean flipped bits {mean}");
    }

    proptest::proptest! {
        #[test]
        fn prop_deterministic(data in proptest::collection::vec(proptest::num::u8::ANY, 0..64), seed: u32) {
            proptest::prop_assert_eq!(
                murmur3_x86_32(&data, seed),
                murmur3_x86_32(&data, seed)
            );
            let a = murmur3_x64_128(&data, seed as u64);
            let b = murmur3_x64_128(&data, seed as u64);
            proptest::prop_assert_eq!(a, b);
        }
    }
}
