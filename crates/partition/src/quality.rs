//! Partition-quality metrics: edge-cut, balance, replication factor.

use grouting_graph::CsrGraph;

use crate::Partitioner;

/// Number of directed edges whose endpoints live on different partitions.
pub fn edge_cut(g: &CsrGraph, p: &dyn Partitioner) -> usize {
    let mut cut = 0usize;
    for v in g.nodes() {
        let pv = p.assign(v);
        for w in g.out_neighbors(v) {
            if p.assign(w) != pv {
                cut += 1;
            }
        }
    }
    cut
}

/// Fraction of edges cut, in `[0, 1]`; zero for an empty graph.
pub fn edge_cut_fraction(g: &CsrGraph, p: &dyn Partitioner) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    edge_cut(g, p) as f64 / g.edge_count() as f64
}

/// Node counts per partition.
pub fn part_sizes(g: &CsrGraph, p: &dyn Partitioner) -> Vec<usize> {
    let mut sizes = vec![0usize; p.parts()];
    for v in g.nodes() {
        sizes[p.assign(v)] += 1;
    }
    sizes
}

/// Balance factor: `max_part_size / ideal_part_size` (1.0 = perfect).
pub fn balance(g: &CsrGraph, p: &dyn Partitioner) -> f64 {
    let sizes = part_sizes(g, p);
    let n = g.node_count();
    if n == 0 {
        return 1.0;
    }
    let ideal = n as f64 / p.parts() as f64;
    sizes.iter().copied().max().unwrap_or(0) as f64 / ideal
}

/// Replication factor of a vertex-cut edge assignment: average number of
/// partitions in which a node is materialised (PowerGraph's quality metric).
///
/// `edge_parts[e]` is the partition of the e-th edge in the graph's
/// canonical out-edge order.
pub fn replication_factor(g: &CsrGraph, edge_parts: &[u32]) -> f64 {
    assert_eq!(edge_parts.len(), g.edge_count(), "one partition per edge");
    let mut replicas: Vec<std::collections::BTreeSet<u32>> =
        vec![std::collections::BTreeSet::new(); g.node_count()];
    let mut e = 0usize;
    for v in g.nodes() {
        for w in g.out_neighbors(v) {
            let p = edge_parts[e];
            replicas[v.index()].insert(p);
            replicas[w.index()].insert(p);
            e += 1;
        }
    }
    let (sum, cnt) = replicas
        .iter()
        .filter(|r| !r.is_empty())
        .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
    if cnt == 0 {
        0.0
    } else {
        sum as f64 / cnt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashPartitioner, TablePartitioner};
    use grouting_graph::{GraphBuilder, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn two_triangles() -> CsrGraph {
        // Triangle 0-1-2 and triangle 3-4-5 joined by one edge 2 -> 3.
        let mut b = GraphBuilder::new();
        for (s, d) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_edge(n(s), n(d));
        }
        b.build().unwrap()
    }

    #[test]
    fn perfect_cut_for_natural_clusters() {
        let g = two_triangles();
        let p = TablePartitioner::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(edge_cut(&g, &p), 1);
        assert!((edge_cut_fraction(&g, &p) - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(balance(&g, &p), 1.0);
    }

    #[test]
    fn bad_cut_for_interleaved() {
        let g = two_triangles();
        let p = TablePartitioner::new(vec![0, 1, 0, 1, 0, 1], 2);
        assert!(edge_cut(&g, &p) >= 5);
    }

    #[test]
    fn hash_partitioner_cut_is_high_on_clustered_graph() {
        let g = two_triangles();
        let hash = HashPartitioner::new(2);
        let ideal = TablePartitioner::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert!(edge_cut(&g, &hash) >= edge_cut(&g, &ideal));
    }

    #[test]
    fn part_sizes_sum_to_n() {
        let g = two_triangles();
        let p = HashPartitioner::new(3);
        let sizes = part_sizes(&g, &p);
        assert_eq!(sizes.iter().sum::<usize>(), 6);
    }

    #[test]
    fn replication_factor_bounds() {
        let g = two_triangles();
        // All edges on one partition: every touched node has 1 replica.
        let rf = replication_factor(&g, &vec![0; g.edge_count()]);
        assert!((rf - 1.0).abs() < 1e-12);
        // Alternate partitions: some nodes get 2 replicas.
        let alternating: Vec<u32> = (0..g.edge_count() as u32).map(|e| e % 2).collect();
        let rf2 = replication_factor(&g, &alternating);
        assert!(rf2 > 1.0 && rf2 <= 2.0);
    }

    #[test]
    #[should_panic(expected = "one partition per edge")]
    fn replication_factor_arity_checked() {
        let g = two_triangles();
        let _ = replication_factor(&g, &[0, 1]);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = GraphBuilder::new().build().unwrap();
        let p = HashPartitioner::new(2);
        assert_eq!(edge_cut(&g, &p), 0);
        assert_eq!(edge_cut_fraction(&g, &p), 0.0);
        assert_eq!(balance(&g, &p), 1.0);
    }
}
