//! Stateless MurmurHash3 modulo partitioner — gRouting's storage placement.

use grouting_graph::NodeId;

use crate::murmur3::hash_node;
use crate::Partitioner;

/// Default hash seed; fixed so every tier agrees on placement.
pub const DEFAULT_SEED: u32 = 0x9747_b28c;

/// Assigns node `u` to partition `murmur3(u) mod P` (paper Eq. 1, with the
/// hash applied first as RAMCloud does).
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    parts: usize,
    seed: u32,
}

impl HashPartitioner {
    /// Creates a partitioner over `parts` partitions with the default seed.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn new(parts: usize) -> Self {
        Self::with_seed(parts, DEFAULT_SEED)
    }

    /// Creates a partitioner with an explicit hash seed.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn with_seed(parts: usize, seed: u32) -> Self {
        assert!(parts > 0, "zero partitions");
        Self { parts, seed }
    }

    /// Plain modulo placement without hashing (the literal Eq. 1 of the
    /// paper); exposed for comparison in tests and benches.
    pub fn modulo_assign(&self, node: NodeId) -> usize {
        node.index() % self.parts
    }
}

impl Partitioner for HashPartitioner {
    fn parts(&self) -> usize {
        self.parts
    }

    fn assign(&self, node: NodeId) -> usize {
        (hash_node(node.raw(), self.seed) as usize) % self.parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_in_range() {
        let p = HashPartitioner::new(7);
        for i in 0..1000u32 {
            assert!(p.assign(NodeId::new(i)) < 7);
        }
    }

    #[test]
    fn assignment_is_stable() {
        let a = HashPartitioner::new(5);
        let b = HashPartitioner::new(5);
        for i in 0..100u32 {
            assert_eq!(a.assign(NodeId::new(i)), b.assign(NodeId::new(i)));
        }
    }

    #[test]
    fn reasonably_balanced() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for i in 0..100_000u32 {
            counts[p.assign(NodeId::new(i))] += 1;
        }
        for &c in &counts {
            assert!((20_000..30_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn modulo_differs_from_hash() {
        let p = HashPartitioner::new(4);
        let differs =
            (0..64u32).any(|i| p.assign(NodeId::new(i)) != p.modulo_assign(NodeId::new(i)));
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn rejects_zero_parts() {
        let _ = HashPartitioner::new(0);
    }

    proptest::proptest! {
        #[test]
        fn prop_in_range(node: u32, parts in 1usize..64) {
            let p = HashPartitioner::new(parts);
            proptest::prop_assert!(p.assign(NodeId::new(node)) < parts);
        }
    }
}
