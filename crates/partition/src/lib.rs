//! Graph partitioning substrates for gRouting and its baselines.
//!
//! gRouting itself deliberately uses the cheapest possible scheme — hash
//! partitioning over node ids with MurmurHash3, exactly what RAMCloud does —
//! because the smart routing layer makes storage placement unimportant
//! (paper §1, §4.2). The *baselines* it is compared against rely on
//! expensive partitioners, so those are built here too:
//!
//! * [`murmur3`] — MurmurHash3 (x86 32-bit and x64 128-bit), from scratch;
//! * [`hash`] — stateless modulo-hash partitioner (gRouting's storage tier);
//! * [`range`] — contiguous range partitioner (control);
//! * [`multilevel`] — METIS-style multilevel edge-cut partitioner
//!   (SEDGE/ParMETIS stand-in): heavy-edge matching coarsening, greedy
//!   growing initial partition, FM boundary refinement;
//! * [`vertexcut`] — PowerGraph's greedy vertex-cut edge placement;
//! * [`streaming`] — linear deterministic greedy (LDG) streaming partitioner;
//! * [`quality`] — edge-cut, balance, and replication-factor metrics.

pub mod hash;
pub mod multilevel;
pub mod murmur3;
pub mod quality;
pub mod range;
pub mod streaming;
pub mod vertexcut;

use grouting_graph::NodeId;

pub use hash::HashPartitioner;
pub use range::RangePartitioner;

/// Maps nodes to storage/compute partitions.
///
/// Implementations must be cheap per call — the storage tier consults this
/// on every fetch — and must return values in `0..parts()`.
pub trait Partitioner: Send + Sync {
    /// Number of partitions.
    fn parts(&self) -> usize;

    /// The partition that owns `node`.
    fn assign(&self, node: NodeId) -> usize;
}

/// A partitioner backed by an explicit node → partition table, produced by
/// the offline partitioners ([`multilevel`], [`streaming`]).
#[derive(Debug, Clone)]
pub struct TablePartitioner {
    table: Vec<u32>,
    parts: usize,
    /// Fallback for nodes beyond the table (e.g. added after partitioning).
    overflow: HashPartitioner,
}

impl TablePartitioner {
    /// Wraps an assignment table.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or any table entry is out of range.
    pub fn new(table: Vec<u32>, parts: usize) -> Self {
        assert!(parts > 0, "zero partitions");
        assert!(
            table.iter().all(|&p| (p as usize) < parts),
            "assignment out of range"
        );
        Self {
            table,
            parts,
            overflow: HashPartitioner::new(parts),
        }
    }

    /// The raw assignment table.
    pub fn table(&self) -> &[u32] {
        &self.table
    }
}

impl Partitioner for TablePartitioner {
    fn parts(&self) -> usize {
        self.parts
    }

    fn assign(&self, node: NodeId) -> usize {
        match self.table.get(node.index()) {
            Some(&p) => p as usize,
            None => self.overflow.assign(node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_partitioner_assigns_and_overflows() {
        let t = TablePartitioner::new(vec![0, 1, 2, 0], 3);
        assert_eq!(t.parts(), 3);
        assert_eq!(t.assign(NodeId::new(1)), 1);
        assert_eq!(t.assign(NodeId::new(3)), 0);
        // Beyond the table: falls back to hash, still in range.
        let p = t.assign(NodeId::new(1000));
        assert!(p < 3);
    }

    #[test]
    #[should_panic(expected = "assignment out of range")]
    fn table_partitioner_validates() {
        let _ = TablePartitioner::new(vec![0, 5], 3);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn table_partitioner_rejects_zero_parts() {
        let _ = TablePartitioner::new(vec![], 0);
    }
}
