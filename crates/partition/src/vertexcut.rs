//! PowerGraph-style greedy vertex-cut partitioner.
//!
//! PowerGraph (the paper's second baseline) partitions *edges* rather than
//! nodes: each edge is placed on one machine and a node is replicated on
//! every machine holding one of its edges. The greedy heuristic from the
//! PowerGraph paper (OSDI'12 §4.2.1) is implemented verbatim:
//!
//! 1. if the replica sets `A(u)` and `A(v)` intersect, place the edge in
//!    the intersection (least loaded);
//! 2. else if both are non-empty, place with the endpoint that has more
//!    unassigned edges remaining (least-loaded of its replicas);
//! 3. else if exactly one is non-empty, place in one of its machines;
//! 4. else place on the least-loaded machine.
//!
//! As in PowerGraph's balanced variant, a load cap overrides rules 1–3:
//! when every candidate machine is already past `(1 + slack) · ideal` the
//! edge spills to the globally least-loaded machine. Without the cap a hub
//! node (rule 3 firing repeatedly) would pin its entire edge set — a large
//! fraction of a power-law graph — onto one machine.

use grouting_graph::{CsrGraph, NodeId};

/// The result of a vertex-cut partitioning.
#[derive(Debug, Clone)]
pub struct VertexCut {
    /// Partition of each edge, in the graph's canonical out-edge order.
    pub edge_parts: Vec<u32>,
    /// Replica sets: for each node, the sorted machines holding a copy.
    pub replicas: Vec<Vec<u32>>,
    /// Number of machines.
    pub parts: usize,
}

impl VertexCut {
    /// The machine that owns the *master* replica of `node` (the first of
    /// its replica set; nodes with no edges get a hashed default).
    pub fn master(&self, node: NodeId) -> usize {
        match self.replicas.get(node.index()).and_then(|r| r.first()) {
            Some(&m) => m as usize,
            None => node.index() % self.parts,
        }
    }

    /// Average number of replicas per non-isolated node.
    pub fn replication_factor(&self) -> f64 {
        let (sum, cnt) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }
}

/// Runs the greedy vertex-cut placement over all edges.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn greedy_vertex_cut(g: &CsrGraph, parts: usize) -> VertexCut {
    assert!(parts > 0, "zero partitions");
    let n = g.node_count();
    let mut replicas: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut load = vec![0u64; parts];
    let mut remaining: Vec<u64> = (0..n)
        .map(|v| g.degree(NodeId::new(v as u32)) as u64)
        .collect();
    let mut edge_parts = Vec::with_capacity(g.edge_count());

    let least_loaded_of = |set: &[u32], load: &[u64]| -> u32 {
        *set.iter()
            .min_by_key(|&&m| load[m as usize])
            .expect("non-empty set")
    };

    const BALANCE_SLACK: f64 = 0.10;
    let mut placed = 0u64;

    for u in g.nodes() {
        for v in g.out_neighbors(u) {
            let (ui, vi) = (u.index(), v.index());
            let au_empty = replicas[ui].is_empty();
            let av_empty = replicas[vi].is_empty();
            let inter: Vec<u32> = replicas[ui]
                .iter()
                .filter(|m| replicas[vi].contains(m))
                .copied()
                .collect();
            let mut target: u32 = if !inter.is_empty() {
                least_loaded_of(&inter, &load)
            } else if !au_empty && !av_empty {
                // Rule 2: follow the endpoint with more remaining edges.
                if remaining[ui] >= remaining[vi] {
                    least_loaded_of(&replicas[ui], &load)
                } else {
                    least_loaded_of(&replicas[vi], &load)
                }
            } else if !au_empty {
                least_loaded_of(&replicas[ui], &load)
            } else if !av_empty {
                least_loaded_of(&replicas[vi], &load)
            } else {
                (0..parts as u32)
                    .min_by_key(|&m| load[m as usize])
                    .expect("parts > 0")
            };

            // Balance cap: spill to the least-loaded machine when the rule
            // choice is already overloaded.
            placed += 1;
            let cap = ((placed as f64 / parts as f64) * (1.0 + BALANCE_SLACK)).ceil() as u64 + 2;
            if load[target as usize] >= cap {
                target = (0..parts as u32)
                    .min_by_key(|&m| load[m as usize])
                    .expect("parts > 0");
            }

            edge_parts.push(target);
            load[target as usize] += 1;
            remaining[ui] = remaining[ui].saturating_sub(1);
            remaining[vi] = remaining[vi].saturating_sub(1);
            if let Err(at) = replicas[ui].binary_search(&target) {
                replicas[ui].insert(at, target);
            }
            if let Err(at) = replicas[vi].binary_search(&target) {
                replicas[vi].insert(at, target);
            }
        }
    }

    VertexCut {
        edge_parts,
        replicas,
        parts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouting_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn star(k: u32) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for i in 1..=k {
            b.add_edge(n(0), n(i));
        }
        b.build().unwrap()
    }

    #[test]
    fn covers_all_edges() {
        let g = star(20);
        let vc = greedy_vertex_cut(&g, 4);
        assert_eq!(vc.edge_parts.len(), 20);
        assert!(vc.edge_parts.iter().all(|&p| (p as usize) < 4));
    }

    #[test]
    fn load_is_balanced_on_star() {
        let g = star(40);
        let vc = greedy_vertex_cut(&g, 4);
        let mut load = [0usize; 4];
        for &p in &vc.edge_parts {
            load[p as usize] += 1;
        }
        // Greedy vertex-cut's whole point: the hub's edges spread across
        // machines (unlike edge-cut where the hub's partition takes all).
        let max = *load.iter().max().unwrap();
        assert!(max <= 15, "load {load:?}");
        let used = load.iter().filter(|&&l| l >= 5).count();
        assert!(used >= 3, "load {load:?}");
    }

    #[test]
    fn hub_is_replicated_leaves_are_not() {
        let g = star(40);
        let vc = greedy_vertex_cut(&g, 4);
        assert!(
            vc.replicas[0].len() > 1,
            "hub replicas {:?}",
            vc.replicas[0]
        );
        for leaf in 1..=40usize {
            assert_eq!(vc.replicas[leaf].len(), 1);
        }
        let rf = vc.replication_factor();
        assert!(rf > 1.0 && rf < 1.2, "rf {rf}");
    }

    #[test]
    fn intersection_rule_keeps_triangles_together() {
        let mut b = GraphBuilder::new();
        b.add_edge(n(0), n(1));
        b.add_edge(n(1), n(2));
        b.add_edge(n(2), n(0));
        let g = b.build().unwrap();
        let vc = greedy_vertex_cut(&g, 4);
        // First edge seeds a machine; the rest should join it via rules 1–3.
        assert!(vc.replication_factor() <= 1.5);
    }

    #[test]
    fn master_defined_for_isolated_nodes() {
        let mut b = GraphBuilder::with_nodes(5);
        b.add_edge(n(0), n(1));
        let g = b.build().unwrap();
        let vc = greedy_vertex_cut(&g, 2);
        assert!(vc.master(n(4)) < 2);
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn rejects_zero_parts() {
        let g = star(3);
        let _ = greedy_vertex_cut(&g, 0);
    }
}
