//! Contiguous-range partitioner.
//!
//! Splits the id space `0..n` into `P` equal ranges. On generators whose id
//! order correlates with topology (e.g. the ring lattice) this is a strong
//! locality baseline; on hashed/shuffled ids it degrades to random — a
//! useful control for partition-quality comparisons.

use grouting_graph::NodeId;

use crate::Partitioner;

/// Range partitioner over a known node-count.
#[derive(Debug, Clone, Copy)]
pub struct RangePartitioner {
    nodes: usize,
    parts: usize,
}

impl RangePartitioner {
    /// Creates a partitioner for `nodes` ids over `parts` partitions.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn new(nodes: usize, parts: usize) -> Self {
        assert!(parts > 0, "zero partitions");
        Self { nodes, parts }
    }
}

impl Partitioner for RangePartitioner {
    fn parts(&self) -> usize {
        self.parts
    }

    fn assign(&self, node: NodeId) -> usize {
        if self.nodes == 0 {
            return node.index() % self.parts;
        }
        let span = self.nodes.div_ceil(self.parts);
        (node.index() / span).min(self.parts - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_evenly() {
        let p = RangePartitioner::new(100, 4);
        assert_eq!(p.assign(NodeId::new(0)), 0);
        assert_eq!(p.assign(NodeId::new(24)), 0);
        assert_eq!(p.assign(NodeId::new(25)), 1);
        assert_eq!(p.assign(NodeId::new(99)), 3);
    }

    #[test]
    fn out_of_range_ids_clamp() {
        let p = RangePartitioner::new(10, 3);
        assert!(p.assign(NodeId::new(500)) < 3);
    }

    #[test]
    fn uneven_division() {
        let p = RangePartitioner::new(10, 3);
        let counts: Vec<usize> = (0..3)
            .map(|k| {
                (0..10u32)
                    .filter(|&i| p.assign(NodeId::new(i)) == k)
                    .count()
            })
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().all(|&c| c >= 2), "{counts:?}");
    }

    #[test]
    fn zero_nodes_degenerates() {
        let p = RangePartitioner::new(0, 2);
        assert!(p.assign(NodeId::new(7)) < 2);
    }
}
