//! Linear Deterministic Greedy (LDG) streaming partitioner.
//!
//! Stanton & Kliot's one-pass heuristic (referenced by the paper as
//! streaming partitioning [30]): nodes arrive in a stream and each is
//! assigned to the partition maximising
//! `|N(v) ∩ P_i| · (1 − |P_i| / C)` where `C` is the per-partition capacity.
//! One pass over the graph, O(n) memory — the cheap middle ground between
//! hash and multilevel partitioning, used in re-partitioning ablations.

use grouting_graph::CsrGraph;

use crate::TablePartitioner;

/// Runs LDG over nodes in id order and returns the assignment.
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn ldg_partition(g: &CsrGraph, parts: usize) -> TablePartitioner {
    assert!(parts > 0, "zero partitions");
    let n = g.node_count();
    let capacity = (n as f64 / parts as f64).ceil().max(1.0);
    let mut assign = vec![u32::MAX; n];
    let mut sizes = vec![0usize; parts];

    for v in g.nodes() {
        let mut neighbor_counts = vec![0u32; parts];
        for w in g.all_neighbors(v) {
            let a = assign.get(w.index()).copied().unwrap_or(u32::MAX);
            if a != u32::MAX {
                neighbor_counts[a as usize] += 1;
            }
        }
        let mut best_part = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for p in 0..parts {
            let penalty = 1.0 - sizes[p] as f64 / capacity;
            let score = neighbor_counts[p] as f64 * penalty.max(0.0)
                // Tie-break toward the emptiest part so isolated prefixes
                // spread instead of piling into partition 0.
                + penalty * 1e-6;
            if score > best_score {
                best_score = score;
                best_part = p;
            }
        }
        assign[v.index()] = best_part as u32;
        sizes[best_part] += 1;
    }
    TablePartitioner::new(assign, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut};
    use crate::HashPartitioner;
    use grouting_graph::{GraphBuilder, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn clique_chain(k: usize, s: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for c in 0..k {
            let base = (c * s) as u32;
            for i in 0..s as u32 {
                for j in (i + 1)..s as u32 {
                    b.add_edge(n(base + i), n(base + j));
                }
            }
            if c + 1 < k {
                b.add_edge(n(base + s as u32 - 1), n(base + s as u32));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn better_than_hash_on_clusters() {
        let g = clique_chain(8, 12);
        let ldg = ldg_partition(&g, 4);
        let hash = HashPartitioner::new(4);
        assert!(edge_cut(&g, &ldg) < edge_cut(&g, &hash));
    }

    #[test]
    fn stays_balanced() {
        let g = clique_chain(8, 12);
        let ldg = ldg_partition(&g, 4);
        assert!(balance(&g, &ldg) <= 1.6, "balance {}", balance(&g, &ldg));
    }

    #[test]
    fn covers_all_nodes() {
        let g = clique_chain(3, 5);
        let ldg = ldg_partition(&g, 2);
        assert_eq!(ldg.table().len(), g.node_count());
        assert!(ldg.table().iter().all(|&p| p < 2));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let ldg = ldg_partition(&g, 3);
        assert!(ldg.table().is_empty());
    }

    #[test]
    #[should_panic(expected = "zero partitions")]
    fn rejects_zero_parts() {
        let g = clique_chain(1, 3);
        let _ = ldg_partition(&g, 0);
    }
}
