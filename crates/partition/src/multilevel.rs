//! METIS-style multilevel edge-cut partitioner.
//!
//! The SEDGE baseline in the paper uses ParMETIS for its "expensive graph
//! partitioning and re-partitioning" (§4.2). This module implements the same
//! three-phase multilevel scheme those tools use:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched node
//!    pairs into weighted coarse nodes until the graph is small;
//! 2. **Initial partitioning** — greedy region growing on the coarsest
//!    graph, seeding each part from a high-degree unassigned node;
//! 3. **Uncoarsening + refinement** — the assignment is projected back level
//!    by level, and greedy boundary Fiduccia–Mattheyses passes move nodes to
//!    reduce the cut while keeping parts within a balance tolerance.
//!
//! The result is a [`TablePartitioner`] with far lower edge-cut than hash
//! partitioning on clustered graphs, which is exactly the advantage the
//! coupled baselines enjoy — and that gRouting's smart routing neutralises.

use grouting_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::TablePartitioner;

/// Tuning knobs for the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelConfig {
    /// Number of parts to produce.
    pub parts: usize,
    /// Allowed imbalance: a part may weigh up to `(1 + eps) * ideal`.
    pub balance_eps: f64,
    /// Stop coarsening when at most this many coarse nodes remain
    /// (0 = pick automatically from `parts`).
    pub coarsen_target: usize,
    /// Greedy refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed for matching/tie-breaking order.
    pub seed: u64,
}

impl MultilevelConfig {
    /// Reasonable defaults for `parts` partitions.
    pub fn new(parts: usize) -> Self {
        Self {
            parts,
            balance_eps: 0.05,
            coarsen_target: 0,
            refine_passes: 6,
            seed: 0x4d45_5449,
        }
    }
}

/// Internal weighted undirected graph used across levels.
#[derive(Debug, Clone)]
struct WorkGraph {
    /// Sorted adjacency with collapsed parallel-edge weights.
    adj: Vec<Vec<(u32, u64)>>,
    node_weight: Vec<u64>,
}

impl WorkGraph {
    fn len(&self) -> usize {
        self.adj.len()
    }

    fn total_weight(&self) -> u64 {
        self.node_weight.iter().sum()
    }

    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for v in g.nodes() {
            for w in g.out_neighbors(v) {
                if v == w {
                    continue;
                }
                adj[v.index()].push((w.raw(), 1));
                adj[w.index()].push((v.raw(), 1));
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(t, _)| t);
            // Collapse parallel edges (u->w plus w->u, duplicates) into one
            // weighted edge.
            let mut out: Vec<(u32, u64)> = Vec::with_capacity(list.len());
            for &(t, w) in list.iter() {
                match out.last_mut() {
                    Some(last) if last.0 == t => last.1 += w,
                    _ => out.push((t, w)),
                }
            }
            *list = out;
        }
        Self {
            adj,
            node_weight: vec![1; n],
        }
    }
}

/// One coarsening level: the coarse graph and the fine→coarse mapping.
struct Level {
    coarse: WorkGraph,
    map: Vec<u32>,
}

fn heavy_edge_matching(g: &WorkGraph, rng: &mut StdRng) -> Level {
    let n = g.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate: Vec<u32> = vec![u32::MAX; n];
    for &v in &order {
        if mate[v as usize] != u32::MAX {
            continue;
        }
        // Pick the unmatched neighbour with the heaviest connecting edge.
        let mut best: Option<(u32, u64)> = None;
        for &(w, wt) in &g.adj[v as usize] {
            if w != v && mate[w as usize] == u32::MAX {
                match best {
                    Some((_, bw)) if bw >= wt => {}
                    _ => best = Some((w, wt)),
                }
            }
        }
        match best {
            Some((w, _)) => {
                mate[v as usize] = w;
                mate[w as usize] = v;
            }
            None => mate[v as usize] = v, // Matched with itself.
        }
    }

    // Assign coarse ids: one per matched pair / singleton.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        if map[v as usize] != u32::MAX {
            continue;
        }
        let m = mate[v as usize];
        map[v as usize] = next;
        if m != v && m != u32::MAX {
            map[m as usize] = next;
        }
        next += 1;
    }

    // Build the coarse graph.
    let cn = next as usize;
    let mut coarse = WorkGraph {
        adj: vec![Vec::new(); cn],
        node_weight: vec![0; cn],
    };
    for (v, &cv) in map.iter().enumerate().take(n) {
        coarse.node_weight[cv as usize] += g.node_weight[v];
    }
    for v in 0..n {
        let cv = map[v];
        for &(w, wt) in &g.adj[v] {
            let cw = map[w as usize];
            if cv != cw {
                coarse.adj[cv as usize].push((cw, wt));
            }
        }
    }
    for list in &mut coarse.adj {
        list.sort_unstable_by_key(|&(t, _)| t);
        let mut out: Vec<(u32, u64)> = Vec::with_capacity(list.len());
        for &(t, w) in list.iter() {
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 += w,
                _ => out.push((t, w)),
            }
        }
        *list = out;
    }
    Level { coarse, map }
}

fn initial_partition(g: &WorkGraph, parts: usize, rng: &mut StdRng) -> Vec<u32> {
    let n = g.len();
    let mut assign = vec![u32::MAX; n];
    if n == 0 {
        return assign;
    }
    let total = g.total_weight().max(1);
    let target = total.div_ceil(parts as u64);

    // Visit seeds in descending degree with random tie-breaks.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.shuffle(rng);
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.adj[v as usize].len()));

    let mut part_weight = vec![0u64; parts];
    let mut seed_cursor = 0usize;
    for p in 0..parts as u32 {
        // Find an unassigned seed.
        while seed_cursor < n && assign[by_degree[seed_cursor] as usize] != u32::MAX {
            seed_cursor += 1;
        }
        if seed_cursor >= n {
            break;
        }
        let seed = by_degree[seed_cursor];
        // BFS-grow the region until the target weight is met.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            if assign[v as usize] != u32::MAX {
                continue;
            }
            if part_weight[p as usize] >= target && p as usize != parts - 1 {
                break;
            }
            assign[v as usize] = p;
            part_weight[p as usize] += g.node_weight[v as usize];
            for &(w, _) in &g.adj[v as usize] {
                if assign[w as usize] == u32::MAX {
                    queue.push_back(w);
                }
            }
        }
    }
    // Any leftovers (disconnected pieces) go to the lightest part.
    for (v, a) in assign.iter_mut().enumerate().take(n) {
        if *a == u32::MAX {
            let p = (0..parts)
                .min_by_key(|&p| part_weight[p])
                .expect("parts > 0");
            *a = p as u32;
            part_weight[p] += g.node_weight[v];
        }
    }
    assign
}

fn refine(g: &WorkGraph, assign: &mut [u32], parts: usize, eps: f64, passes: usize) {
    let n = g.len();
    if n == 0 {
        return;
    }
    let total = g.total_weight().max(1);
    let max_weight = ((total as f64 / parts as f64) * (1.0 + eps)).ceil() as u64;
    let mut part_weight = vec![0u64; parts];
    for v in 0..n {
        part_weight[assign[v] as usize] += g.node_weight[v];
    }

    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let from = assign[v] as usize;
            // Connectivity of v to each part it touches.
            let mut link: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
            for &(w, wt) in &g.adj[v] {
                *link.entry(assign[w as usize] as usize).or_insert(0) += wt;
            }
            let internal = link.get(&from).copied().unwrap_or(0);
            let mut best: Option<(usize, u64)> = None;
            for (&p, &ext) in &link {
                if p == from {
                    continue;
                }
                if part_weight[p] + g.node_weight[v] > max_weight {
                    continue;
                }
                if ext > internal {
                    match best {
                        Some((_, b)) if b >= ext => {}
                        _ => best = Some((p, ext)),
                    }
                }
            }
            if let Some((p, _)) = best {
                part_weight[from] -= g.node_weight[v];
                part_weight[p] += g.node_weight[v];
                assign[v] = p as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Runs the full multilevel pipeline and returns a table partitioner.
///
/// # Panics
///
/// Panics if `config.parts == 0`.
pub fn partition(g: &CsrGraph, config: &MultilevelConfig) -> TablePartitioner {
    assert!(config.parts > 0, "zero partitions");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let parts = config.parts;
    if g.node_count() == 0 {
        return TablePartitioner::new(Vec::new(), parts);
    }
    let target = if config.coarsen_target == 0 {
        (30 * parts).max(128)
    } else {
        config.coarsen_target
    };

    // Phase 1: coarsen.
    let mut levels: Vec<Level> = Vec::new();
    let mut current = WorkGraph::from_csr(g);
    while current.len() > target {
        let level = heavy_edge_matching(&current, &mut rng);
        // Matching stalled (e.g. star graphs where everything is matched to
        // one hub already): stop coarsening.
        if level.coarse.len() as f64 > current.len() as f64 * 0.95 {
            break;
        }
        current = level.coarse.clone();
        levels.push(level);
    }

    // Phase 2: initial partition on the coarsest graph.
    let mut assign = initial_partition(&current, parts, &mut rng);
    refine(
        &current,
        &mut assign,
        parts,
        config.balance_eps,
        config.refine_passes,
    );

    // Phase 3: project back and refine at each finer level.
    for level in levels.iter().rev() {
        let fine_n = level.map.len();
        let mut fine_assign = vec![0u32; fine_n];
        for v in 0..fine_n {
            fine_assign[v] = assign[level.map[v] as usize];
        }
        // Rebuild the fine WorkGraph for refinement. The final (finest)
        // level corresponds to the input graph itself.
        assign = fine_assign;
        let fine_graph = if std::ptr::eq(level, levels.first().expect("nonempty")) {
            WorkGraph::from_csr(g)
        } else {
            // Intermediate levels: reconstruct from the next-coarser level's
            // stored graph. For simplicity we refine only on the finest
            // graph; intermediate projections pass through unchanged.
            continue;
        };
        refine(
            &fine_graph,
            &mut assign,
            parts,
            config.balance_eps,
            config.refine_passes,
        );
    }
    if levels.is_empty() {
        // Graph was small enough to partition directly.
        let fine = WorkGraph::from_csr(g);
        refine(
            &fine,
            &mut assign,
            parts,
            config.balance_eps,
            config.refine_passes,
        );
    }

    TablePartitioner::new(assign, parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{balance, edge_cut, edge_cut_fraction};
    use crate::{HashPartitioner, Partitioner};
    use grouting_graph::{GraphBuilder, NodeId};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// `k` cliques of size `s`, consecutive cliques joined by single edges.
    fn clique_chain(k: usize, s: usize) -> CsrGraph {
        let mut b = GraphBuilder::new();
        for c in 0..k {
            let base = (c * s) as u32;
            for i in 0..s as u32 {
                for j in (i + 1)..s as u32 {
                    b.add_edge(n(base + i), n(base + j));
                }
            }
            if c + 1 < k {
                b.add_edge(n(base + s as u32 - 1), n(base + s as u32));
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn beats_hash_on_clustered_graph() {
        let g = clique_chain(8, 16);
        let ml = partition(&g, &MultilevelConfig::new(4));
        let hash = HashPartitioner::new(4);
        let cut_ml = edge_cut(&g, &ml);
        let cut_hash = edge_cut(&g, &hash);
        assert!(
            (cut_ml as f64) < 0.3 * cut_hash as f64,
            "multilevel {cut_ml} vs hash {cut_hash}"
        );
    }

    #[test]
    fn respects_balance() {
        let g = clique_chain(8, 16);
        let ml = partition(&g, &MultilevelConfig::new(4));
        let bal = balance(&g, &ml);
        assert!(bal <= 1.35, "balance {bal}");
    }

    #[test]
    fn every_node_assigned_in_range() {
        let g = clique_chain(5, 10);
        let ml = partition(&g, &MultilevelConfig::new(3));
        for v in g.nodes() {
            assert!(ml.assign(v) < 3);
        }
        assert_eq!(ml.table().len(), g.node_count());
    }

    #[test]
    fn single_part_puts_everything_together() {
        let g = clique_chain(3, 8);
        let ml = partition(&g, &MultilevelConfig::new(1));
        assert_eq!(edge_cut(&g, &ml), 0);
    }

    #[test]
    fn small_graph_direct_partition() {
        let g = clique_chain(2, 4);
        let ml = partition(&g, &MultilevelConfig::new(2));
        // Cut should be the single bridge.
        assert!(edge_cut_fraction(&g, &ml) < 0.2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let ml = partition(&g, &MultilevelConfig::new(4));
        assert_eq!(ml.parts(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = clique_chain(6, 12);
        let a = partition(&g, &MultilevelConfig::new(3));
        let b = partition(&g, &MultilevelConfig::new(3));
        assert_eq!(a.table(), b.table());
    }

    #[test]
    fn ring_lattice_cut_is_low() {
        // A ring of 256 nodes: optimal 4-way cut is 8 directed edges (2 per
        // boundary in the bi-directed view collapses to 1 each way).
        let mut b = GraphBuilder::new();
        for i in 0..256u32 {
            b.add_edge(n(i), n((i + 1) % 256));
        }
        let g = b.build().unwrap();
        let ml = partition(&g, &MultilevelConfig::new(4));
        let cut = edge_cut(&g, &ml);
        assert!(cut <= 16, "ring cut {cut}");
    }
}
