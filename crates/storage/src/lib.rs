//! The decoupled storage tier.
//!
//! The paper implements its storage tier on RAMCloud (§4.1): a distributed,
//! fully in-memory key-value store with a log-structured design, where each
//! graph node's id is the key and its adjacency record the value, and keys
//! are placed on servers by MurmurHash3. This crate rebuilds that substrate:
//!
//! * [`log`] — a log-structured in-memory store per server: append-only
//!   segments, a hash index, and a cleaner that reclaims dead bytes
//!   (RAMCloud's high-memory-utilisation design);
//! * [`server`] — a storage server wrapping one log store behind a lock;
//! * [`tier`] — the horizontal partitioning of the graph across servers and
//!   the graph-level load/get/update API;
//! * [`net`] — network cost models (Infiniband RDMA, 10 Gbps Ethernet, and
//!   custom) that the simulator charges per fetch.

pub mod log;
pub mod net;
pub mod server;
pub mod tier;

pub use log::LogStore;
pub use net::{NetworkModel, Preset};
pub use server::StorageServer;
pub use tier::StorageTier;

/// Storage-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The key is not present on the owning server.
    NotFound(u64),
    /// A value exceeded the segment size and cannot be stored.
    ValueTooLarge {
        /// Key whose value was oversized.
        key: u64,
        /// Size of the offending value.
        len: usize,
        /// Maximum storable size.
        max: usize,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound(k) => write!(f, "key {k} not found"),
            StorageError::ValueTooLarge { key, len, max } => {
                write!(f, "value for key {key} is {len} bytes (max {max})")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
