//! One storage server: a locked log store plus access statistics.

use bytes::Bytes;
use parking_lot::RwLock;

use crate::log::LogStore;
use crate::Result;

/// A storage server in the tier.
///
/// Thread-safe: the live runtime's processor threads call [`get`] on shared
/// references concurrently. Reads take the read lock; the log store's `get`
/// hands out zero-copy [`Bytes`] slices of sealed segments.
///
/// [`get`]: StorageServer::get
#[derive(Debug)]
pub struct StorageServer {
    id: usize,
    log: RwLock<LogStore>,
    gets: std::sync::atomic::AtomicU64,
    puts: std::sync::atomic::AtomicU64,
}

impl StorageServer {
    /// Creates server `id` with the given segment size.
    pub fn new(id: usize, segment_bytes: usize) -> Self {
        Self {
            id,
            log: RwLock::new(LogStore::new(segment_bytes)),
            gets: std::sync::atomic::AtomicU64::new(0),
            puts: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// This server's id within the tier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Fetches a value.
    pub fn get(&self, key: u64) -> Option<Bytes> {
        self.gets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.log.read().get(key)
    }

    /// Stores a value.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::StorageError::ValueTooLarge`].
    pub fn put(&self, key: u64, value: &[u8]) -> Result<()> {
        self.puts.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.log.write().put(key, value)
    }

    /// Deletes a key, returning whether it existed.
    pub fn delete(&self, key: u64) -> bool {
        self.log.write().delete(key)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.log.read().len()
    }

    /// Whether the server stores nothing.
    pub fn is_empty(&self) -> bool {
        self.log.read().is_empty()
    }

    /// Live bytes referenced by the index.
    pub fn live_bytes(&self) -> usize {
        self.log.read().live_bytes()
    }

    /// Total get operations served.
    pub fn gets_served(&self) -> u64 {
        self.gets.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total put operations applied.
    pub fn puts_applied(&self) -> u64 {
        self.puts.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::DEFAULT_SEGMENT_BYTES;

    #[test]
    fn basic_ops_and_stats() {
        let s = StorageServer::new(3, DEFAULT_SEGMENT_BYTES);
        assert_eq!(s.id(), 3);
        s.put(1, b"abc").unwrap();
        assert_eq!(s.get(1).unwrap().as_ref(), b"abc");
        assert_eq!(s.get(2), None);
        assert_eq!(s.gets_served(), 2);
        assert_eq!(s.puts_applied(), 1);
        assert!(s.delete(1));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_reads() {
        use std::sync::Arc;
        let s = Arc::new(StorageServer::new(0, DEFAULT_SEGMENT_BYTES));
        for i in 0..100u64 {
            s.put(i, &i.to_le_bytes()).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    assert_eq!(s.get(i).unwrap().as_ref(), &i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.gets_served(), 400);
    }
}
